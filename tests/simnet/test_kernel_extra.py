"""Additional kernel coverage: interrupts on events, nested processes,
self-kill, timeout helper, reentrancy guard."""

import pytest

from repro.errors import SimError
from repro.simnet.events import Event, Timeout
from repro.simnet.kernel import Interrupt, SimKernel


def test_interrupt_while_waiting_on_event():
    kernel = SimKernel()
    gate = Event("never")
    outcome = []

    def body():
        try:
            yield gate
        except Interrupt as interrupt:
            outcome.append(interrupt.cause)

    process = kernel.spawn(body())
    kernel.schedule(10.0, process.interrupt, "stop waiting")
    kernel.run()
    assert outcome == ["stop waiting"]
    # The event never fired; late firing must not resurrect the process.
    gate.succeed("late")
    assert not process.alive


def test_self_kill_from_inside_body():
    kernel = SimKernel()
    progressed = []
    holder = {}

    def body():
        while True:
            yield Timeout(10.0)
            progressed.append(kernel.now)
            if len(progressed) == 3:
                holder["process"].kill()  # a process tearing itself down

    holder["process"] = kernel.spawn(body())
    kernel.run(until=200.0)
    assert progressed == [10.0, 20.0, 30.0]
    assert not holder["process"].alive
    assert holder["process"].fired


def test_kernel_timeout_helper():
    kernel = SimKernel()
    seen = []

    def body():
        value = yield kernel.timeout(5.0, value="v")
        seen.append(value)

    kernel.spawn(body())
    kernel.run()
    assert seen == ["v"]


def test_reentrant_run_rejected():
    kernel = SimKernel()

    def recurse():
        kernel.run()

    kernel.schedule(1.0, recurse)
    with pytest.raises(SimError, match="reentrant"):
        kernel.run()


def test_process_spawning_processes():
    kernel = SimKernel()
    order = []

    def grandchild():
        yield Timeout(1.0)
        order.append("grandchild")
        return 3

    def child():
        result = yield kernel.spawn(grandchild())
        order.append(("child", result))
        return result * 2

    def parent():
        result = yield kernel.spawn(child())
        order.append(("parent", result))

    kernel.spawn(parent())
    kernel.run()
    assert order == ["grandchild", ("child", 3), ("parent", 6)]


def test_interrupt_cancels_pending_wait():
    """After an interrupt is handled, the old timeout firing must not
    double-resume the process."""
    kernel = SimKernel()
    resumed = []

    def body():
        try:
            yield Timeout(100.0)
            resumed.append("timeout")
        except Interrupt:
            resumed.append("interrupt")
            yield Timeout(50.0)
            resumed.append("after")

    process = kernel.spawn(body())
    kernel.schedule(10.0, process.interrupt, None)
    kernel.run(until=1_000.0)
    assert resumed == ["interrupt", "after"]


def test_interrupt_dead_process_is_noop():
    kernel = SimKernel()

    def body():
        yield Timeout(1.0)

    process = kernel.spawn(body())
    kernel.run()
    process.interrupt("too late")  # must not raise
    kernel.run()
    assert not process.alive
