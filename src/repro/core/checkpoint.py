"""Checkpoints: capture, serialization, storage.

The client FTIM captures "the address space (or the selected subset) and
the stack" plus thread contexts (§2.2.2).  A :class:`Checkpoint` is the
captured image; :class:`CheckpointStore` is the engine-side store — every
engine keeps its application's latest checkpoints both locally (for fast
local restart) and mirrored from the peer (for failover).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import CheckpointError
from repro.nt.memory import _estimate_size


#: Interning pool for canonical image bytes, keyed by content.  Replay
#: verification and checkpoint mirroring serialize the *same* logical
#: image many times (capture → restore → capture cycles on stable
#: state); interning makes every repeat share one canonical ``bytes``
#: object, so equality checks short-circuit on identity and N identical
#: images cost one buffer instead of N.  Bounded: the pool is cleared
#: when it exceeds ``_INTERN_POOL_MAX`` distinct images (simple and
#: O(1) amortized; an LRU would buy nothing for the steady-state case
#: of a handful of live images).
_INTERN_POOL_MAX = 512
_intern_pool: Dict[bytes, bytes] = {}


def canonical_image_bytes(image: Dict[str, Dict[str, Any]]) -> bytes:
    """Serialize a checkpoint image to interned bytes, *preserving* dict order.

    Deliberately NOT ``sort_keys=True``: capture paths promise to emit
    regions and variables in a stable (name-sorted) order, and the
    replay round-trip check compares these bytes to prove it.  Sorting
    here would mask exactly the reorder bugs the check exists to catch.
    """
    raw = json.dumps(image, default=repr, separators=(",", ":")).encode("utf-8")
    interned = _intern_pool.get(raw)
    if interned is not None:
        return interned
    if len(_intern_pool) >= _INTERN_POOL_MAX:
        _intern_pool.clear()
    _intern_pool[raw] = raw
    return raw


@dataclass(frozen=True)
class Checkpoint:
    """One captured application state image."""

    app_name: str
    sequence: int
    captured_at: float
    #: Memory walkthrough: region name -> {variable -> value}.
    image: Dict[str, Dict[str, Any]]
    #: Thread register contexts: thread name -> context dict.
    thread_contexts: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: True when produced by ``OFTTSelSave`` designation (subset capture).
    selective: bool = False
    #: True when this is an incremental delta against the previous one.
    incremental: bool = False

    def size_bytes(self) -> int:
        """Estimated payload size (drives transfer-cost modelling)."""
        total = 64
        for region in self.image.values():
            total += 16 + _estimate_size(region)
        total += 32 * len(self.thread_contexts)
        return total

    def as_wire(self) -> dict:
        """Marshalable form for the engine-to-engine transfer."""
        return {
            "app_name": self.app_name,
            "sequence": self.sequence,
            "captured_at": self.captured_at,
            "image": self.image,
            "thread_contexts": self.thread_contexts,
            "selective": self.selective,
            "incremental": self.incremental,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "Checkpoint":
        """Inverse of :meth:`as_wire`."""
        return cls(
            app_name=data["app_name"],
            sequence=data["sequence"],
            captured_at=data["captured_at"],
            image=data["image"],
            thread_contexts=data["thread_contexts"],
            selective=data["selective"],
            incremental=data["incremental"],
        )

    def merged_onto(self, base: Optional["Checkpoint"]) -> "Checkpoint":
        """Resolve an incremental checkpoint against *base*.

        Full checkpoints return themselves.  An incremental checkpoint
        overlays its regions/variables on the base image.
        """
        if not self.incremental:
            return self
        if base is None:
            raise CheckpointError(f"incremental checkpoint {self.sequence} for {self.app_name} has no base")
        merged_image: Dict[str, Dict[str, Any]] = {k: dict(v) for k, v in base.image.items()}
        for region, variables in self.image.items():
            merged_image.setdefault(region, {}).update(variables)
        # Re-sort by region name: FTIM captures list regions in name
        # order, but the overlay above appends delta-only regions at the
        # end, so without this a merged image would serialize differently
        # from the full capture it is equivalent to.
        merged_image = {region: merged_image[region] for region in sorted(merged_image)}
        merged_contexts = dict(base.thread_contexts)
        merged_contexts.update(self.thread_contexts)
        return Checkpoint(
            app_name=self.app_name,
            sequence=self.sequence,
            captured_at=self.captured_at,
            image=merged_image,
            thread_contexts=merged_contexts,
            selective=self.selective,
            incremental=False,
        )

    def __repr__(self) -> str:
        kind = "selective" if self.selective else "full"
        if self.incremental:
            kind += "+incremental"
        return f"Checkpoint({self.app_name} #{self.sequence}, {kind}, ~{self.size_bytes()}B)"


class CheckpointStore:
    """Bounded per-application checkpoint history.

    Incremental checkpoints are resolved against the stored latest at
    insertion time, so :meth:`latest` always returns a restorable full
    image.  Sequence numbers must be monotone per application; stale
    arrivals (switchover races, duplicated transfers) are rejected.
    """

    def __init__(self, history: int = 8) -> None:
        if history < 1:
            raise CheckpointError("history must be at least 1")
        self.history = history
        self._by_app: Dict[str, List[Checkpoint]] = {}
        self.stored_count = 0
        self.rejected_count = 0

    def store(self, checkpoint: Checkpoint) -> bool:
        """Insert a checkpoint.  Returns False for stale sequences."""
        chain = self._by_app.setdefault(checkpoint.app_name, [])
        if chain and checkpoint.sequence <= chain[-1].sequence:
            self.rejected_count += 1
            return False
        resolved = checkpoint.merged_onto(chain[-1] if chain else None)
        chain.append(resolved)
        if len(chain) > self.history:
            del chain[: len(chain) - self.history]
        self.stored_count += 1
        return True

    def latest(self, app_name: str) -> Optional[Checkpoint]:
        """Most recent full checkpoint for *app_name* (None if none)."""
        chain = self._by_app.get(app_name)
        return chain[-1] if chain else None

    def latest_sequence(self, app_name: str) -> int:
        """Highest stored sequence (0 when empty)."""
        latest = self.latest(app_name)
        return latest.sequence if latest is not None else 0

    def all_for(self, app_name: str) -> List[Checkpoint]:
        """The retained history, oldest first."""
        return list(self._by_app.get(app_name, []))

    def clear(self, app_name: Optional[str] = None) -> None:
        """Drop one app's chain, or everything."""
        if app_name is None:
            self._by_app.clear()
        else:
            self._by_app.pop(app_name, None)

    def __repr__(self) -> str:
        summary = {app: len(chain) for app, chain in sorted(self._by_app.items())}
        return f"CheckpointStore({summary})"
