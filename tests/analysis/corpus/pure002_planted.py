"""Planted PURE002: the task is a lambda, which spawn workers cannot
pickle by reference."""

from repro.perf.executor import parallel_map


def main(values):
    return parallel_map(lambda v: v * 2, values)  # expect: PURE002
