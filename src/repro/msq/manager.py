"""Per-node queue manager with store-and-forward transport.

The manager is the MSMQ service: it owns the node's queues, accepts sends
addressed to ``node/queue``, and reliably forwards messages to remote
managers — storing them in an outgoing journal and retrying until the
destination acknowledges receipt.  Duplicate deliveries (retry races) are
suppressed by message-id at the receiving queue.

Crash semantics: the manager's state is "on disk" — it survives OS crashes
and reboots of its node (persistent messages included); express messages
are purged on :meth:`on_crash`.  While the node is down the service does
not answer, so senders keep retrying, which is precisely the mechanism the
Diverter leans on during a switchover.

Retry cadence: each outgoing message backs off exponentially —
``min(retry_interval * backoff**(attempts-1), max_retry_interval)`` plus
uniform seeded jitter — so a sustained partition does not hammer the wire
at a fixed rate.  ``backoff_factor=1.0`` with zero jitter reproduces the
original fixed cadence.  Jitter draws come from the sim RNG (the network
stream by default) and only happen when jitter is enabled, keeping seed
replay intact either way.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import MsqError, QueueNotFound
from repro.msq.queue import MsmqQueue, QueueMessage
from repro.simnet.kernel import SimKernel
from repro.simnet.network import Message, NetNode, Network

MSQ_PORT = "msq.transport"

#: Name of the per-node dead-letter queue (always present).
DEAD_LETTER_QUEUE = "system$deadletter"


@dataclass
class _OutgoingEntry:
    """A message awaiting acknowledgement from its destination node."""

    message: QueueMessage
    dest_node: str
    dest_queue: str
    attempts: int
    next_retry_at: float
    expires_at: float


class QueueManager:
    """The MSMQ service for one node."""

    def __init__(
        self,
        kernel: SimKernel,
        network: Network,
        node: NetNode,
        retry_interval: float = 250.0,
        message_ttl: float = 60_000.0,
        backoff_factor: float = 1.0,
        max_retry_interval: Optional[float] = None,
        retry_jitter: float = 0.0,
        rng=None,
    ) -> None:
        if backoff_factor < 1.0:
            raise MsqError(f"backoff_factor must be at least 1.0, got {backoff_factor}")
        if retry_jitter < 0.0:
            raise MsqError(f"retry_jitter must be non-negative, got {retry_jitter}")
        self.kernel = kernel
        self.network = network
        self.node = node
        self.retry_interval = retry_interval
        self.backoff_factor = backoff_factor
        self.max_retry_interval = max_retry_interval if max_retry_interval is not None else retry_interval
        if self.max_retry_interval < retry_interval:
            raise MsqError("max_retry_interval must be at least retry_interval")
        self.retry_jitter = retry_jitter
        self.rng = rng if rng is not None else network.rng
        self.message_ttl = message_ttl
        self.queues: Dict[str, MsmqQueue] = {}
        self.outgoing: Dict[str, _OutgoingEntry] = {}
        # Message ids must be unique per sending node even across a node
        # reinstall (receivers dedup on seen ids), so the id carries the
        # manager's creation epoch: a replacement manager — necessarily
        # created at a later sim time — can never reuse a predecessor's
        # ids.  An instance counter alone would restart at 1 and collide;
        # the old class-level counter avoided that but leaked across
        # scenarios, so identical-seed runs produced different ids.
        self._msg_epoch = int(kernel.now)
        self._msg_counter = itertools.count(1)
        self.service_up = True
        self.stats = {"sent": 0, "delivered_local": 0, "acked": 0, "retries": 0, "dead_lettered": 0}
        self.create_queue(DEAD_LETTER_QUEUE)
        # Bound once so identity comparisons against the node's handler
        # table work (each ``self._on_message`` access builds a new object).
        self._bound_handler = self._on_message
        node.bind(MSQ_PORT, self._bound_handler)
        self._retry_timer = kernel.schedule(self.retry_interval, self._retry_pass)

    def stop(self) -> None:
        """Retire this manager: release the retry timer immediately.

        A replaced manager (node reinstall) self-retires on its next
        retry pass anyway; calling ``stop`` releases the timer without
        waiting out the interval.  Queues and journals stay readable.
        """
        if self._retry_timer is not None:
            self.kernel.cancel(self._retry_timer)
            self._retry_timer = None

    # -- queue management -------------------------------------------------------

    def create_queue(self, name: str, journal: bool = False) -> MsmqQueue:
        """Create a queue (idempotent: returns the existing one)."""
        if name not in self.queues:
            self.queues[name] = MsmqQueue(name, self.node.name, journal=journal)
        return self.queues[name]

    def open_queue(self, name: str) -> MsmqQueue:
        """Open an existing queue or raise :class:`QueueNotFound`."""
        if name not in self.queues:
            raise QueueNotFound(f"{self.node.name} has no queue {name}")
        return self.queues[name]

    def delete_queue(self, name: str) -> None:
        """Remove a queue; the dead-letter queue cannot be deleted."""
        if name == DEAD_LETTER_QUEUE:
            raise MsqError("cannot delete the dead-letter queue")
        if name not in self.queues:
            raise QueueNotFound(f"{self.node.name} has no queue {name}")
        del self.queues[name]

    # -- sending ----------------------------------------------------------------

    def send(
        self,
        dest_node: str,
        dest_queue: str,
        body: Any,
        persistent: bool = True,
        label: str = "",
        ttl: Optional[float] = None,
    ) -> str:
        """Send *body* to ``dest_node/dest_queue``; returns the message id.

        Local sends enqueue immediately.  Remote sends go through
        store-and-forward: the message is kept in the outgoing store and
        retried until acknowledged or its TTL expires (then dead-lettered).
        """
        if not self.service_up:
            raise MsqError(f"queue manager on {self.node.name} is down")
        message_id = f"{self.node.name}-{self._msg_epoch}.{next(self._msg_counter)}"
        message = QueueMessage(
            message_id=message_id,
            sender=self.node.name,
            body=body,
            persistent=persistent,
            sent_at=self.kernel.now,
            label=label,
        )
        self.stats["sent"] += 1
        if dest_node == self.node.name:
            self.open_queue(dest_queue).enqueue(message, self.kernel.now)
            self.stats["delivered_local"] += 1
            return message_id
        entry = _OutgoingEntry(
            message=message,
            dest_node=dest_node,
            dest_queue=dest_queue,
            attempts=0,
            next_retry_at=self.kernel.now,
            expires_at=self.kernel.now + (ttl if ttl is not None else self.message_ttl),
        )
        self.outgoing[message_id] = entry
        self._transmit(entry)
        return message_id

    def redirect_pending(self, old_node: str, new_node: str) -> int:
        """Point unacknowledged messages at a different node.

        Used by the Diverter on switchover: anything still in flight to the
        failed primary is re-targeted at the new one.  Returns how many
        messages were redirected.
        """
        count = 0
        # Insertion order of `outgoing` IS send order — redirects and
        # retries deliberately walk messages oldest-first (FIFO), and the
        # dict is only ever appended to in send() and popped on ack, so
        # that order is stable across runs.
        for entry in self.outgoing.values():
            if entry.dest_node == old_node:
                entry.dest_node = new_node
                entry.next_retry_at = self.kernel.now
                count += 1
        if count:
            self._retry_pass_soon()
        return count

    def _transmit(self, entry: _OutgoingEntry) -> None:
        entry.attempts += 1
        if entry.attempts > 1:
            self.stats["retries"] += 1
        packet = {
            "kind": "deliver",
            "queue": entry.dest_queue,
            "message": {
                "message_id": entry.message.message_id,
                "sender": entry.message.sender,
                "body": entry.message.body,
                "persistent": entry.message.persistent,
                "sent_at": entry.message.sent_at,
                "label": entry.message.label,
            },
        }
        self.network.send(self.node.name, entry.dest_node, MSQ_PORT, packet, size=128)
        entry.next_retry_at = self.kernel.now + self._retry_delay(entry.attempts)

    def _retry_delay(self, attempts: int) -> float:
        """Backoff delay before the next retry of a message on attempt *attempts*."""
        delay = self.retry_interval
        if self.backoff_factor > 1.0:
            delay = min(delay * self.backoff_factor ** (attempts - 1), self.max_retry_interval)
        if self.retry_jitter > 0.0:
            delay += self.rng.uniform(0.0, self.retry_jitter)
        return delay

    # -- receive path ---------------------------------------------------------------

    def _on_message(self, message: Message) -> None:
        if not self.service_up:
            return
        payload = message.payload
        kind = payload.get("kind")
        if kind == "deliver":
            self._on_deliver(message)
        elif kind == "ack":
            self._on_ack(payload)

    def _on_deliver(self, message: Message) -> None:
        payload = message.payload
        queue_name = payload["queue"]
        data = payload["message"]
        queue = self.queues.get(queue_name)
        if queue is None:
            # Unknown queue: negative-ack so the sender dead-letters fast.
            self.network.send(
                self.node.name,
                message.source,
                MSQ_PORT,
                {"kind": "ack", "message_id": data["message_id"], "ok": False, "reason": "no-queue"},
                size=64,
            )
            return
        incoming = QueueMessage(
            message_id=data["message_id"],
            sender=data["sender"],
            body=data["body"],
            persistent=data["persistent"],
            sent_at=data["sent_at"],
            label=data["label"],
        )
        incoming.delivery_count += 1
        queue.enqueue(incoming, self.kernel.now)  # duplicate ids dropped inside
        self.network.send(
            self.node.name,
            message.source,
            MSQ_PORT,
            {"kind": "ack", "message_id": data["message_id"], "ok": True, "reason": ""},
            size=64,
        )

    def _on_ack(self, payload: Dict[str, Any]) -> None:
        message_id = payload["message_id"]
        entry = self.outgoing.pop(message_id, None)
        if entry is None:
            return
        if payload["ok"]:
            self.stats["acked"] += 1
        else:
            self._dead_letter(entry, reason=payload.get("reason", "nack"))

    # -- retry engine -----------------------------------------------------------------

    # Same-tick with _retry_pass_once is benign: _transmit advances
    # next_retry_at, so whichever pass runs second skips the entry.
    # The shared stats counters bumped via _transmit/_dead_letter are
    # += increments, which commute across same-tick retry passes.
    def _retry_pass(self) -> None:  # oftt-lint: ok[race-write-read,ip-race-write-write]
        current_handler = self.node.handler_for(MSQ_PORT)
        if current_handler is not None and current_handler is not self._bound_handler:
            # A newer queue manager replaced us (node reinstall): retire.
            return
        if self.service_up and self.node.powered:
            now = self.kernel.now
            expired: List[str] = []
            for message_id, entry in self.outgoing.items():
                if now >= entry.expires_at:
                    expired.append(message_id)
                elif now >= entry.next_retry_at:
                    self._transmit(entry)
            for message_id in expired:
                entry = self.outgoing.pop(message_id)
                self._dead_letter(entry, reason="ttl-expired")
        self._retry_timer = self.kernel.schedule(self.retry_interval, self._retry_pass)

    def _retry_pass_soon(self) -> None:
        self.kernel.schedule(0.0, self._retry_pass_once)

    def _retry_pass_once(self) -> None:
        now = self.kernel.now
        for entry in list(self.outgoing.values()):
            if now >= entry.next_retry_at:
                self._transmit(entry)

    def _dead_letter(self, entry: _OutgoingEntry, reason: str) -> None:
        self.stats["dead_lettered"] += 1
        dead = QueueMessage(
            message_id=f"dlq:{entry.message.message_id}",
            sender=entry.message.sender,
            body={"reason": reason, "dest": f"{entry.dest_node}/{entry.dest_queue}", "body": entry.message.body},
            persistent=True,
            sent_at=entry.message.sent_at,
            label=f"dead:{entry.message.label}",
        )
        self.queues[DEAD_LETTER_QUEUE].enqueue(dead, self.kernel.now)

    # -- crash hooks --------------------------------------------------------------------

    def attach_to_system(self, system) -> None:
        """Wire OS lifecycle events to MSMQ crash semantics.

        On power-off/bluescreen the service pauses and express messages
        are purged; on reboot the service (persistent state intact)
        resumes.  Hooks retire themselves once this manager has been
        replaced by a newer one on the same node (node reinstall).
        """

        def is_current() -> bool:
            handler = self.node.handler_for(MSQ_PORT)
            return handler is None or handler is self._bound_handler

        def crashed(_system) -> None:
            if is_current():
                self.on_crash()

        def booted(_system) -> None:
            if is_current():
                self.on_recover()

        system.on_crash.append(crashed)
        system.on_boot.append(booted)

    def on_crash(self) -> None:
        """Model an OS crash: express messages are lost; service pauses."""
        self.service_up = False
        for queue in self.queues.values():
            queue.purge_express()

    def on_recover(self) -> None:
        """Service restart after reboot: persistent state is back."""
        self.service_up = True
        if self.node.handler_for(MSQ_PORT) is None:
            self.node.bind(MSQ_PORT, self._bound_handler)

    def pending_count(self) -> int:
        """Unacknowledged outgoing messages."""
        return len(self.outgoing)

    def __repr__(self) -> str:
        return f"QueueManager({self.node.name}, queues={sorted(self.queues)}, pending={len(self.outgoing)})"
