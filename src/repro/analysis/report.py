"""Finding reporters: human text and machine JSON.

The JSON schema (``repro.analysis/v1``) is a stability contract — CI
tooling and the self-tests key on it.  Extend it by adding keys, never by
renaming or removing them.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.findings import Finding, Severity

JSON_SCHEMA = "repro.analysis/v1"


def severity_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    """``{"error": n, "warning": n, "info": n}`` (always all three keys)."""
    counts = {str(severity): 0 for severity in sorted(Severity, reverse=True)}
    for finding in findings:
        counts[str(finding.severity)] += 1
    return counts


def render_text(findings: Sequence[Finding], files_scanned: int, passes: Sequence[str]) -> str:
    """One line per finding plus a summary trailer."""
    lines = [finding.render() for finding in findings]
    counts = severity_counts(findings)
    summary = (
        f"{len(findings)} finding(s) "
        f"({counts['error']} error, {counts['warning']} warning, {counts['info']} info) "
        f"in {files_scanned} file(s); passes: {', '.join(passes)}"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_scanned: int, passes: Sequence[str]) -> str:
    """Stable JSON document (sorted keys, newline-terminated)."""
    document = {
        "schema": JSON_SCHEMA,
        "passes": list(passes),
        "files": files_scanned,
        "counts": severity_counts(findings),
        "findings": [finding.as_json() for finding in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
