"""Regression for the fingerprint/as_wire memoization (the diff hot spot).

The caches exist to make replay diffing cheap; they must never change
what a diff computes.  Each test builds a genuinely divergent pair of
traces twice — once diffed cold, once with every per-record cache warmed
first — and requires the identical divergence either way.
"""

from __future__ import annotations

from repro.replay.canonical import canonicalize_trace
from repro.replay.diff import first_divergence
from repro.replay.runner import run_twice_and_diff
from repro.simnet.trace import TraceLog


def divergent_pair():
    """Two traces that agree for 8 records, then split."""
    first, second = TraceLog(), TraceLog()
    for log in (first, second):
        for i in range(8):
            log.emit("app", "calltrack", "tick", index=i)
    first.emit("app", "calltrack", "commit", value=1)
    second.emit("app", "calltrack", "abort", value=2)
    return first, second


def warm(log: TraceLog) -> None:
    for record in log.records:
        record.as_wire()
        record.fingerprint()
    log.fingerprint()


def test_warmed_caches_compute_the_same_divergence():
    cold_a, cold_b = divergent_pair()
    cold = first_divergence(canonicalize_trace(cold_a), canonicalize_trace(cold_b))

    warm_a, warm_b = divergent_pair()
    warm(warm_a)
    warm(warm_b)
    warmed = first_divergence(canonicalize_trace(warm_a), canonicalize_trace(warm_b))

    assert cold is not None and warmed is not None
    assert warmed.as_wire() == cold.as_wire()
    assert warmed.index == cold.index == 8


def test_warmed_caches_compute_the_same_replay_result():
    calls = []

    def flaky_factory(seed: int) -> TraceLog:
        # Deliberately non-deterministic factory: the second run differs.
        calls.append(seed)
        log = TraceLog()
        log.emit("app", "a", "start", run=len(calls) if len(calls) > 1 else 1)
        return log

    cold_result = run_twice_and_diff(flaky_factory, seed=0, subject="cache-check")

    calls.clear()

    def warming_factory(seed: int) -> TraceLog:
        log = flaky_factory(seed)
        warm(log)
        return log

    warm_result = run_twice_and_diff(warming_factory, seed=0, subject="cache-check")

    assert not cold_result.ok and not warm_result.ok
    assert warm_result.as_wire() == cold_result.as_wire()


def test_fingerprint_identical_for_identical_traces_cold_and_warm():
    a, _ = divergent_pair()
    b, _ = divergent_pair()
    warm(a)  # only one side warmed: caches must not leak into the hash
    assert a.fingerprint() == b.fingerprint()
