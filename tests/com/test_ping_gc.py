"""Unit tests for the DCOM ping (distributed GC) machinery and the OPC
group collection built on it."""

from repro.com.runtime import ComRuntime
from repro.opc.client import OpcClient
from repro.opc.group import OpcGroup
from repro.opc.server import OpcServer

from tests.conftest import make_world
from tests.com.test_dcom import Calc


def make_env():
    world = make_world()
    server_sys = world.add_machine("server")
    client_sys = world.add_machine("client")
    return world, ComRuntime(server_sys, world.network), ComRuntime(client_sys, world.network)


def ping(world, exporter, objref):
    outcome = {}

    def check():
        result = yield exporter.check_liveness(objref)
        outcome["result"] = result

    world.kernel.spawn(check())
    world.run_for(2_000.0)
    return outcome["result"]


def test_ping_alive_export():
    world, server_rt, client_rt = make_env()
    objref = server_rt.export(Calc(), label="calc")
    result = ping(world, client_rt.exporter, objref)
    assert result.ok and result.value is True


def test_ping_revoked_export_reports_dead():
    world, server_rt, client_rt = make_env()
    objref = server_rt.export(Calc())
    server_rt.exporter.revoke(objref)
    result = ping(world, client_rt.exporter, objref)
    assert result.ok and result.value is False


def test_ping_dead_process_reports_dead():
    world, server_rt, client_rt = make_env()
    host = world.systems["server"].create_process("host")
    host.create_thread("main", dynamic=False)
    host.start()
    objref = server_rt.export(Calc(), process=host)
    host.kill()
    result = ping(world, client_rt.exporter, objref)
    assert result.ok and result.value is False


def test_ping_dead_node_times_out_as_failure():
    world, server_rt, client_rt = make_env()
    objref = server_rt.export(Calc())
    world.systems["server"].power_off()
    result = ping(world, client_rt.exporter, objref)
    assert not result.ok


def test_group_gc_after_client_process_death():
    world, server_rt, client_rt = make_env()
    server = OpcServer(server_rt, "OPC.G.1")
    server.namespace.define_simple("a", 0.0)
    server_ref = server_rt.export(server)

    client_process = world.systems["client"].create_process("opc-client")
    client_process.create_thread("main", dynamic=False)
    client_process.start()
    client = OpcClient(client_rt, "c", process=client_process)
    received = []

    def use():
        yield from client.connect_remote(server_ref)
        group = yield from client.add_group("g", update_rate=50.0)
        yield from group.add_items(["a"])
        group.set_callback(lambda name, batch: received.append(batch))

    world.kernel.spawn(use())
    world.run_for(2_000.0)
    assert "g" in server.groups
    server.update_item("a", 1.0)
    world.run_for(500.0)
    assert received  # subscription worked

    client_process.kill()
    world.run_for(OpcGroup.PING_PERIOD * (OpcGroup.PING_STRIKES + 2))
    assert "g" not in server.groups  # collected


def test_group_not_collected_while_client_lives():
    world, server_rt, client_rt = make_env()
    server = OpcServer(server_rt, "OPC.G.1")
    server.namespace.define_simple("a", 0.0)
    server_ref = server_rt.export(server)
    client_process = world.systems["client"].create_process("opc-client")
    client_process.create_thread("main", dynamic=False)
    client_process.start()
    client = OpcClient(client_rt, "c", process=client_process)

    def use():
        yield from client.connect_remote(server_ref)
        group = yield from client.add_group("g", update_rate=50.0)
        yield from group.add_items(["a"])
        group.set_callback(lambda name, batch: None)

    world.kernel.spawn(use())
    world.run_for(OpcGroup.PING_PERIOD * 5)
    assert "g" in server.groups


def test_local_sink_groups_never_pinged():
    world, server_rt, _client_rt = make_env()
    server = OpcServer(server_rt, "OPC.G.1")
    server.namespace.define_simple("a", 0.0)
    group = server.AddGroup("g")
    group.AddItems(["a"])
    group.SetDataCallback(lambda name, batch: None)
    world.run_for(OpcGroup.PING_PERIOD * 4)
    assert not group.collected
    assert "g" in server.groups
