"""The simulated Windows NT machine.

One :class:`NTSystem` sits on each network node and owns the process
table, the registry, perfmon, and — critically for the reproduction — the
crash modes demonstrated in §4 of the paper:

* :meth:`power_off` — demo (a), node failure: the machine vanishes from
  the network entirely.
* :meth:`bluescreen` — demo (b), NT crash: every process dies and the
  machine stops responding, but power is on; it can be rebooted.
* application/middleware failures — demos (c) and (d) — are process-level
  (:meth:`NTProcess.kill`) and injected by :mod:`repro.faults`.

§3.2 of the paper blames "the lack of determinism in Windows NT start-up"
for false shutdowns during role negotiation; :meth:`boot` therefore takes
a randomized delay drawn from the node's RNG stream so the startup
experiments can reproduce that behaviour.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from repro.errors import NTError
from repro.nt.kernel32 import Kernel32
from repro.nt.perfmon import PerfMon
from repro.nt.process import NTProcess, ProcessState
from repro.nt.registry import NTRegistry
from repro.simnet.kernel import SimKernel
from repro.simnet.network import NetNode
from repro.simnet.random import RngStreams
from repro.simnet.trace import TraceLog


class SystemState(enum.Enum):
    """Machine lifecycle."""

    OFF = "off"
    BOOTING = "booting"
    UP = "up"
    BLUESCREEN = "bluescreen"


class NTSystem:
    """A simulated NT machine bound to a network node."""

    def __init__(
        self,
        kernel: SimKernel,
        node: NetNode,
        rng: Optional[RngStreams] = None,
        trace: Optional[TraceLog] = None,
        boot_time: float = 200.0,
        boot_jitter: float = 150.0,
    ) -> None:
        self.kernel = kernel
        self.node = node
        self.rng = (rng or RngStreams(0)).stream(f"nt:{node.name}")
        self.trace = trace if trace is not None else TraceLog(clock=lambda: kernel.now)
        self.boot_time = boot_time
        self.boot_jitter = boot_jitter
        #: Relative speed of this machine's clock (1.0 = nominal).  A
        #: value above 1.0 stretches the periods of OFTT timers driven
        #: from this machine — the observable effect of clock skew/drift
        #: between pair nodes (heartbeats and reports arrive late
        #: relative to the peer's timeouts).  Faults set this via
        #: :class:`repro.faults.faultlib.ClockSkew`.
        self.clock_scale = 1.0
        self.state = SystemState.OFF
        self.registry = NTRegistry()
        self.perfmon = PerfMon(self)
        self.processes: Dict[str, NTProcess] = {}
        # Per-machine pid allocation: a class-level counter would leak
        # state across scenarios in one Python process, so two runs of
        # the same seed would trace different pids (replay divergence).
        self._next_pid = 1000
        self.boot_count = 0
        self.booted_at: Optional[float] = None
        self.on_boot: List[Callable[["NTSystem"], None]] = []
        #: Invoked when the machine dies (power-off or bluescreen) so
        #: node-level services (e.g. the MSMQ manager) can apply their
        #: crash semantics (express-message purge, service pause).
        self.on_crash: List[Callable[["NTSystem"], None]] = []

    # -- lifecycle -----------------------------------------------------------

    def boot(self, extra_delay: float = 0.0) -> float:
        """Start the machine; returns the time at which it will be UP.

        The actual boot duration is ``boot_time + U(0, boot_jitter) +
        extra_delay`` — the jitter is the paper's §3.2 start-up
        non-determinism.
        """
        if self.state in (SystemState.BOOTING, SystemState.UP):
            raise NTError(f"{self.node.name} already {self.state.value}")
        self.state = SystemState.BOOTING
        self.node.powered = True
        duration = self.boot_time + self.rng.uniform(0.0, self.boot_jitter) + extra_delay
        self.trace.emit("nt", self.node.name, "booting", eta=self.kernel.now + duration)
        self.kernel.schedule(duration, self._finish_boot)
        return self.kernel.now + duration

    def boot_immediately(self) -> None:
        """Bring the machine UP with no delay (test convenience)."""
        if self.state in (SystemState.BOOTING, SystemState.UP):
            raise NTError(f"{self.node.name} already {self.state.value}")
        self.state = SystemState.BOOTING
        self.node.powered = True
        self._finish_boot()

    def _finish_boot(self) -> None:
        if self.state is not SystemState.BOOTING:
            return  # powered off while booting
        self.state = SystemState.UP
        self.boot_count += 1
        self.booted_at = self.kernel.now
        self.trace.emit("nt", self.node.name, "boot-complete", count=self.boot_count)
        for callback in list(self.on_boot):  # callbacks may deregister themselves
            callback(self)

    def power_off(self) -> None:
        """Demo (a): node failure.  Kills everything and leaves the net."""
        self._kill_all_processes(reason="power-off")
        self.state = SystemState.OFF
        self.node.powered = False
        self.booted_at = None
        self.trace.emit("nt", self.node.name, "power-off")
        self._notify_crash()

    def bluescreen(self) -> None:
        """Demo (b): NT crash.  Processes die; machine stops responding."""
        if self.state is not SystemState.UP:
            raise NTError(f"bluescreen on machine in state {self.state.value}")
        self._kill_all_processes(reason="bluescreen")
        self.state = SystemState.BLUESCREEN
        # A bluescreened machine holds the link but services nothing; we
        # also stop the NIC answering so in-flight frames are dropped.
        self.node.powered = False
        self.booted_at = None
        self.trace.emit("nt", self.node.name, "bluescreen")
        self._notify_crash()

    def reboot(self, extra_delay: float = 0.0) -> float:
        """Power-cycle (valid from OFF or BLUESCREEN)."""
        if self.state in (SystemState.BOOTING, SystemState.UP):
            raise NTError(f"reboot of machine in state {self.state.value}")
        self.state = SystemState.OFF
        return self.boot(extra_delay=extra_delay)

    def _notify_crash(self) -> None:
        for callback in list(self.on_crash):
            callback(self)

    def _kill_all_processes(self, reason: str) -> None:
        for process in list(self.processes.values()):
            if process.alive or process.state is ProcessState.CREATED:
                process.kill(code=-2)
        self.trace.emit("nt", self.node.name, "all-processes-killed", reason=reason)

    # -- process table ----------------------------------------------------------

    def allocate_pid(self) -> int:
        """Next process id on this machine (stride 4, NT-style)."""
        self._next_pid += 4
        return self._next_pid

    def create_process(self, name: str) -> NTProcess:
        """Create a process (machine must be UP; names must be unique among
        live processes — a dead same-named process is replaced)."""
        if self.state is not SystemState.UP:
            raise NTError(f"create_process while {self.node.name} is {self.state.value}")
        existing = self.processes.get(name)
        if existing is not None and existing.alive:
            raise NTError(f"process {name} already running on {self.node.name}")
        process = NTProcess(self, name)
        self.processes[name] = process
        return process

    def find_process(self, name: str) -> Optional[NTProcess]:
        """The process registered under *name*, if any (live or dead)."""
        return self.processes.get(name)

    def live_processes(self) -> List[NTProcess]:
        """All processes currently alive, sorted by name."""
        return sorted(
            (process for process in self.processes.values() if process.alive),
            key=lambda process: process.name,
        )

    def kernel32_for(self, process: NTProcess) -> Kernel32:
        """Bind the Win32 API surface to *process*."""
        return Kernel32(process)

    def uptime(self) -> float:
        """Milliseconds since boot finished (0 when not UP)."""
        if self.state is not SystemState.UP or self.booted_at is None:
            return 0.0
        return self.kernel.now - self.booted_at

    @property
    def is_up(self) -> bool:
        """Whether the machine is fully booted."""
        return self.state is SystemState.UP

    def __repr__(self) -> str:
        return f"NTSystem({self.node.name}, {self.state.value}, processes={len(self.processes)})"
