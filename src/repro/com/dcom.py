"""DCOM remoting: object exporting, proxies, and ORPC over the network.

Each node runs one ORPC service (:class:`DcomExporter`, standing in for
RPCSS).  Exporting a :class:`~repro.com.object.ComObject` yields an
:class:`~repro.com.marshal.ObjRef`; any node can build a :class:`Proxy`
from it and invoke interface methods across the simulated network.

Failure semantics (deliberately faithful to the paper's §3.3 complaint
that DCOM's "RPC service does not behave well in the presence of
failures"):

* Target **node dead / partitioned** — no response at all; the caller
  waits out the full ``rpc_timeout`` (default 2000 ms, DCOM-like) before
  seeing ``RPC_E_TIMEOUT``.  This is why OFTT needs its own fast
  heartbeat-based failure detection.
* Target **process dead but node alive** — the service answers quickly
  with ``RPC_E_DISCONNECTED``.
* Unknown object / method — immediate ``E_NOINTERFACE``-style failure.
* Server method raised — the exception is marshaled back as ``E_FAIL``
  with the message preserved.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.com.hresult import (
    E_FAIL,
    E_NOINTERFACE,
    RPC_E_DISCONNECTED,
    RPC_E_TIMEOUT,
    S_OK,
    hresult_name,
)
from repro.com.marshal import ObjRef, estimate_wire_size, marshal_value, unmarshal_value
from repro.com.object import ComObject
from repro.errors import RpcError
from repro.nt.process import NTProcess
from repro.simnet.events import Event
from repro.simnet.kernel import SimKernel
from repro.simnet.network import Message, NetNode, Network

ORPC_PORT = "dcom.orpc"


@dataclass
class RpcResult:
    """Outcome of a remote call."""

    ok: bool
    value: Any = None
    hresult: int = S_OK
    detail: str = ""

    def unwrap(self) -> Any:
        """Return the value or raise :class:`RpcError`."""
        if not self.ok:
            raise RpcError(self.hresult, self.detail or hresult_name(self.hresult))
        return self.value

    def __repr__(self) -> str:
        if self.ok:
            return f"RpcResult(ok, {self.value!r})"
        return f"RpcResult({hresult_name(self.hresult)}, {self.detail})"


class _Export:
    """Book-keeping for one exported object."""

    __slots__ = ("obj", "label", "process")

    def __init__(self, obj: ComObject, label: str, process: Optional[NTProcess]) -> None:
        self.obj = obj
        self.label = label
        self.process = process


class DcomExporter:
    """The per-node ORPC service (RPCSS stand-in)."""

    def __init__(self, kernel: SimKernel, network: Network, node: NetNode, rpc_timeout: float = 2000.0) -> None:
        self.kernel = kernel
        self.network = network
        self.node = node
        self.rpc_timeout = rpc_timeout
        # oids and call ids are seeded from the exporter's creation time:
        # a replacement exporter (node reinstall rebinds the ORPC port)
        # must never mint an oid that aliases an ObjRef still held by a
        # remote client, nor accept a stale in-flight reply as one of its
        # own calls.  Class-level counters also guaranteed that, but they
        # leaked across scenarios in one Python process, so two runs of
        # the same seed exported different oids.  call_id 0 stays
        # reserved for oneway calls (no reply expected).
        epoch_base = int(kernel.now) * 1_000_000
        self._oid_counter = itertools.count(epoch_base + 1)
        self._call_counter = itertools.count(epoch_base + 1)
        self.exports: Dict[int, _Export] = {}
        self._pending: Dict[int, Tuple[Event, Any]] = {}  # call_id -> (event, timer)
        self.calls_served = 0
        self.activation_handler: Optional[Callable[[str], ObjRef]] = None
        node.bind(ORPC_PORT, self._on_message)

    def close(self) -> None:
        """Release every in-flight call's timeout timer (node teardown).

        Pending events are left unfired — a closed exporter answers
        nobody — but their timers leave the kernel immediately instead
        of draining at the RPC timeout.
        """
        for call_id in sorted(self._pending):
            _done, timer = self._pending[call_id]
            self.kernel.cancel(timer)
        self._pending.clear()

    # -- export side -----------------------------------------------------------

    def export(self, obj: ComObject, label: str = "", process: Optional[NTProcess] = None) -> ObjRef:
        """Make *obj* remotely callable; returns its :class:`ObjRef`.

        Passing *process* ties the export's availability to that process:
        callers get ``RPC_E_DISCONNECTED`` once it dies.
        """
        oid = next(self._oid_counter)
        self.exports[oid] = _Export(obj, label, process)
        iids = tuple(decl.iid for decl in obj.interfaces())
        return ObjRef(node=self.node.name, oid=oid, iids=iids, label=label or type(obj).__name__)

    def revoke(self, objref: ObjRef) -> None:
        """Withdraw an export (subsequent calls get disconnected)."""
        self.exports.pop(objref.oid, None)

    # -- client side ---------------------------------------------------------

    def proxy_for(self, objref: ObjRef) -> "Proxy":
        """Build a proxy through which this node can call *objref*."""
        return Proxy(self, objref)

    def invoke(self, objref: ObjRef, method: str, args: Tuple[Any, ...], timeout: Optional[float] = None) -> Event:
        """Start a remote call; returns an :class:`Event` firing RpcResult."""
        call_id = next(self._call_counter)
        done = Event(name=f"rpc:{objref.label}.{method}:{call_id}")
        request = {
            "kind": "request",
            "call_id": call_id,
            "reply_to": self.node.name,
            "oid": objref.oid,
            "method": method,
            "args": marshal_value(list(args)),
        }
        timer = self.kernel.schedule(
            timeout if timeout is not None else self.rpc_timeout, self._on_timeout, call_id
        )
        self._pending[call_id] = (done, timer)
        size = 64 + estimate_wire_size(request["args"])
        sent = self.network.send(self.node.name, objref.node, ORPC_PORT, request, size=size)
        if not sent:
            # No route at all: DCOM still burns the timeout figuring it out;
            # we keep the timer armed rather than failing fast on purpose.
            pass
        return done

    def invoke_oneway(self, objref: ObjRef, method: str, args: Tuple[Any, ...]) -> bool:
        """Fire-and-forget call (used for data-change callbacks)."""
        request = {
            "kind": "request",
            "call_id": 0,
            "reply_to": "",
            "oid": objref.oid,
            "method": method,
            "args": marshal_value(list(args)),
        }
        size = 64 + estimate_wire_size(request["args"])
        return self.network.send(self.node.name, objref.node, ORPC_PORT, request, size=size)

    def check_liveness(self, objref: ObjRef, timeout: float = 500.0) -> Event:
        """DCOM-style ping: is the exported object still served?

        Fires an :class:`RpcResult` whose value is True/False; an
        unanswered ping (dead node, partition) resolves to a *failed*
        result after *timeout*.  This is the distributed-GC ping
        machinery real DCOM runs to collect references to dead clients.
        """
        call_id = next(self._call_counter)
        done = Event(name=f"ping:{objref.label}:{call_id}")
        timer = self.kernel.schedule(timeout, self._on_timeout, call_id)
        self._pending[call_id] = (done, timer)
        self.network.send(
            self.node.name,
            objref.node,
            ORPC_PORT,
            {"kind": "ping", "call_id": call_id, "reply_to": self.node.name, "oid": objref.oid},
            size=48,
        )
        return done

    def activate(self, node_name: str, progid: str, timeout: Optional[float] = None) -> Event:
        """Remote activation: ask *node_name* to create class *progid*.

        Fires an RpcResult whose value is the new object's ObjRef.
        """
        call_id = next(self._call_counter)
        done = Event(name=f"activate:{progid}@{node_name}")
        request = {
            "kind": "activate",
            "call_id": call_id,
            "reply_to": self.node.name,
            "progid": progid,
        }
        timer = self.kernel.schedule(
            timeout if timeout is not None else self.rpc_timeout, self._on_timeout, call_id
        )
        self._pending[call_id] = (done, timer)
        self.network.send(self.node.name, node_name, ORPC_PORT, request, size=96)
        return done

    # -- wire handling --------------------------------------------------------

    # Reply-vs-timeout at the same tick is arbitrated by the _pending.pop
    # handshake: whichever handler runs first claims the call exactly
    # once and the loser sees None.  Either outcome is a valid protocol
    # result, so the interprocedural write-write (via _handle_reply) is
    # the designed behaviour.
    def _on_message(self, message: Message) -> None:  # oftt-lint: ok[ip-race-write-write]
        payload = message.payload
        kind = payload.get("kind")
        if kind == "request":
            self._serve_request(message)
        elif kind == "activate":
            self._serve_activation(message)
        elif kind == "ping":
            self._serve_ping(message)
        elif kind == "reply":
            self._handle_reply(payload)

    def _serve_request(self, message: Message) -> None:
        payload = message.payload
        oid = payload["oid"]
        method = payload["method"]
        args = unmarshal_value(payload["args"])
        export = self.exports.get(oid)
        if export is None:
            self._reply(message, RpcResult(False, hresult=RPC_E_DISCONNECTED, detail=f"no object {oid}"))
            return
        if export.process is not None and not export.process.alive:
            self._reply(message, RpcResult(False, hresult=RPC_E_DISCONNECTED, detail="server process dead"))
            return
        decl = export.obj.find_interface(method)
        if decl is None:
            self._reply(
                message,
                RpcResult(False, hresult=E_NOINTERFACE, detail=f"{export.label} has no method {method}"),
            )
            return
        try:
            value = getattr(export.obj, method)(*args)
            self.calls_served += 1
            result = RpcResult(True, value=marshal_value(value))
        except Exception as exc:  # noqa: BLE001 - marshaled back to caller
            result = RpcResult(False, hresult=getattr(exc, "hresult", E_FAIL), detail=str(exc))
        self._reply(message, result)

    def _serve_ping(self, message: Message) -> None:
        export = self.exports.get(message.payload["oid"])
        alive = export is not None and (export.process is None or export.process.alive)
        self._reply(message, RpcResult(True, value=alive))

    def _serve_activation(self, message: Message) -> None:
        progid = message.payload["progid"]
        if self.activation_handler is None:
            self._reply(message, RpcResult(False, hresult=E_FAIL, detail="no activation handler"))
            return
        try:
            objref = self.activation_handler(progid)
            self._reply(message, RpcResult(True, value=objref))
        except Exception as exc:  # noqa: BLE001 - marshaled back to caller
            self._reply(message, RpcResult(False, hresult=getattr(exc, "hresult", E_FAIL), detail=str(exc)))

    def _reply(self, request_message: Message, result: RpcResult) -> None:
        call_id = request_message.payload["call_id"]
        reply_to = request_message.payload["reply_to"]
        if not reply_to or call_id == 0:
            return  # one-way call
        reply = {
            "kind": "reply",
            "call_id": call_id,
            "ok": result.ok,
            "value": result.value,
            "hresult": result.hresult,
            "detail": result.detail,
        }
        size = 48 + estimate_wire_size(result.value)
        self.network.send(self.node.name, reply_to, ORPC_PORT, reply, size=size)

    def _handle_reply(self, payload: Dict[str, Any]) -> None:
        call_id = payload["call_id"]
        pending = self._pending.pop(call_id, None)
        if pending is None:
            return  # reply arrived after timeout; drop it
        done, timer = pending
        self.kernel.cancel(timer)
        done.succeed(
            RpcResult(
                ok=payload["ok"],
                value=payload["value"],
                hresult=payload["hresult"],
                detail=payload["detail"],
            )
        )

    def _on_timeout(self, call_id: int) -> None:
        pending = self._pending.pop(call_id, None)
        if pending is None:
            return
        done, _timer = pending
        done.succeed(RpcResult(False, hresult=RPC_E_TIMEOUT, detail="RPC timed out"))

    def __repr__(self) -> str:
        return f"DcomExporter({self.node.name}, exports={len(self.exports)}, pending={len(self._pending)})"


class Proxy:
    """Client-side stand-in for a remote object.

    ``proxy.call("Method", args...)`` returns a waitable Event carrying an
    :class:`RpcResult`; generator processes ``yield`` it.  Attribute sugar
    (``proxy.Method(args...)``) does the same.
    """

    def __init__(self, exporter: DcomExporter, objref: ObjRef) -> None:
        self._exporter = exporter
        self.objref = objref

    def call(self, method: str, *args: Any, timeout: Optional[float] = None) -> Event:
        """Start a two-way remote call."""
        return self._exporter.invoke(self.objref, method, args, timeout=timeout)

    def call_oneway(self, method: str, *args: Any) -> bool:
        """Start a one-way (no reply) remote call."""
        return self._exporter.invoke_oneway(self.objref, method, args)

    def __getattr__(self, method: str) -> Callable[..., Event]:
        if method.startswith("_"):
            raise AttributeError(method)

        def _remote(*args: Any, **kwargs: Any) -> Event:
            return self.call(method, *args, **kwargs)

        return _remote

    def __repr__(self) -> str:
        return f"Proxy({self.objref})"
