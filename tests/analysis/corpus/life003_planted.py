"""Planted LIFE003: process created and stored, class has no teardown."""


class AppHost:
    def __init__(self, system):
        self.system = system
        self.process = None
        self.launches = 0

    def launch(self):
        self.process = self.system.create_process("app")  # expect: LIFE003
        self.launches += 1
        return self.process
