"""Findings, severities, and the rule registry.

Every check the toolkit can emit is registered up front as a
:class:`Rule` with a stable id (``DET001``), a human slug
(``wall-clock``) used in suppression comments, a default severity and a
one-line rationale.  Passes emit :class:`Finding` instances referencing a
registered rule; the reporters and the suppression machinery only ever
see these two types, so the rule catalogue in ``ANALYSIS.md`` can be
regenerated mechanically (``python -m repro.analysis --list-rules``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ReproError


class AnalysisError(ReproError):
    """Misuse of the analysis toolkit (bad path, unknown rule/pass)."""


class Severity(enum.IntEnum):
    """Finding severities; ordering supports ``>=`` gate comparisons."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """One registered check."""

    rule_id: str  # e.g. "DET001"
    slug: str  # e.g. "wall-clock"; used in suppression comments
    severity: Severity
    pass_name: str  # "det" | "com" | "race" | "gen"
    summary: str  # one-line rationale, shown by --list-rules


@dataclass(frozen=True)
class Finding:
    """One reported violation, anchored to ``path:line:col``."""

    rule: Rule
    path: str
    line: int
    col: int
    message: str

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule.rule_id)

    def render(self) -> str:
        """Canonical single-line text form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} {self.rule.rule_id}[{self.rule.slug}] {self.message}"
        )

    def as_json(self) -> Dict[str, object]:
        """Stable wire form (schema asserted by the self-tests)."""
        return {
            "rule": self.rule.rule_id,
            "slug": self.rule.slug,
            "severity": str(self.severity),
            "pass": self.rule.pass_name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


_REGISTRY: Dict[str, Rule] = {}
_BY_SLUG: Dict[str, Rule] = {}


def rule(rule_id: str, slug: str, severity: Severity, pass_name: str, summary: str) -> Rule:
    """Register (or fetch the identical re-registration of) a rule."""
    existing = _REGISTRY.get(rule_id)
    candidate = Rule(rule_id, slug, severity, pass_name, summary)
    if existing is not None:
        if existing != candidate:
            raise AnalysisError(f"conflicting registration for {rule_id}")
        return existing
    if slug in _BY_SLUG:
        raise AnalysisError(f"slug {slug!r} already used by {_BY_SLUG[slug].rule_id}")
    _REGISTRY[rule_id] = candidate
    _BY_SLUG[slug] = candidate
    return candidate


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def lookup(token: str) -> Rule:
    """Resolve a rule by id (``DET001``) or slug (``wall-clock``)."""
    found = _REGISTRY.get(token) or _BY_SLUG.get(token)
    if found is None:
        raise AnalysisError(f"unknown rule {token!r}")
    return found


def is_known(token: str) -> bool:
    """Whether *token* names a registered rule id or slug."""
    return token in _REGISTRY or token in _BY_SLUG


#: Parse failures are reported through the same Finding pipeline.
SYNTAX_RULE = rule(
    "GEN001",
    "syntax-error",
    Severity.ERROR,
    "gen",
    "File could not be parsed; no pass can vouch for it.",
)
