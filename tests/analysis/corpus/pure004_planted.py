"""Planted PURE004: the task mutates its argument in place.

Workers mutate pickled copies, so the caller-visible effect depends on
the worker count.
"""

from repro.perf.executor import parallel_map


def consume(batch):
    batch.append("done")
    return len(batch)


def main(batches):
    return parallel_map(consume, batches)  # expect: PURE004
