"""Scenario builders for the paper's configurations.

* :func:`build_demo` — Figure 3 + Table 1: three PCs on an Ethernet; a
  primary/backup pair running the Call Track application (with OFTT
  engine + client FTIM), and a test/interface PC running the OFTT System
  Monitor, the Telephone System Simulator and the Calling History
  generator.
* :func:`build_remote_monitoring` — Figure 1(a): PLC + fieldbus devices,
  an industrial PC exposing them through an OPC server, and a redundant
  monitor/control PC pair running an OFTT-protected SCADA client.
* :func:`build_integrated` — Figure 1(b): the pair itself hosts both the
  OPC server app (device interface, server FTIM) and the monitoring
  client app (client FTIM).

Every scenario owns its kernel/network/trace, is deterministic for a
given seed, and exposes the attribute set
:mod:`repro.faults` expects (``systems``, ``network``, ``partitions``,
``pair``, ``fieldbuses``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.calltrack import CallTrackApp
from repro.apps.history import CallingHistoryGenerator
from repro.apps.opcserver import OpcServerApp
from repro.apps.scada import AlarmRule, ScadaMonitorApp
from repro.core.cluster import OfttPair
from repro.core.config import OfttConfig, replace_config
from repro.core.diverter import DiverterClient, inbox_queue_name
from repro.core.drsite import DRSite, DR_QUEUE
from repro.core.monitor import SystemMonitor
from repro.devices.device import Actuator, Sensor
from repro.devices.fieldbus import Fieldbus
from repro.devices.plc import PLC, PlcOpcBridge
from repro.devices.signals import RandomWalk, Sine
from repro.devices.telephone import TelephoneSystem
from repro.msq.manager import QueueManager
from repro.nt.system import NTSystem
from repro.opc.server import OpcServer
from repro.com.runtime import ComRuntime
from repro.simnet.kernel import SimKernel
from repro.simnet.network import Network
from repro.simnet.partitions import PartitionController
from repro.simnet.random import RngStreams
from repro.simnet.trace import TraceLog

#: Node names used by the Figure 3 demo configuration.
DEMO_NODES = ("node1", "node2")
TEST_PC = "test-pc"


class _BaseScenario:
    """Common plumbing: kernel, RNG, trace, network, NT machines."""

    def __init__(self, seed: int, dual_lan: bool) -> None:
        self.seed = seed
        self.kernel = SimKernel()
        self.rngs = RngStreams(seed)
        self.trace = TraceLog(clock=lambda: self.kernel.now)
        self.network = Network(self.kernel, self.rngs, self.trace)
        self.partitions = PartitionController(self.network)
        self.systems: Dict[str, NTSystem] = {}
        self.fieldbuses: Dict[str, Fieldbus] = {}
        self.pair: Optional[OfttPair] = None
        self.lans = ["lan0", "lan1"] if dual_lan else ["lan0"]
        for lan in self.lans:
            self.network.add_link(lan, latency=0.5, jitter=0.1)

    def _add_machine(self, name: str, lans: Optional[List[str]] = None) -> NTSystem:
        self.network.add_node(name)
        for lan in lans if lans is not None else self.lans:
            self.network.attach(name, lan)
        system = NTSystem(self.kernel, self.network.nodes[name], self.rngs, self.trace)
        self.systems[name] = system
        return system

    def run(self, until: float) -> float:
        """Advance simulated time to *until*."""
        return self.kernel.run(until=until)

    def run_for(self, duration: float) -> float:
        """Advance simulated time by *duration*."""
        return self.kernel.run(until=self.kernel.now + duration)


class DemoScenario(_BaseScenario):
    """Figure 3 / Table 1: the Call Track demonstration testbed."""

    def __init__(
        self,
        seed: int = 0,
        config: Optional[OfttConfig] = None,
        dual_lan: bool = True,
        lines: int = 5,
        callers: int = 10,
        mean_idle: float = 8_000.0,
        mean_call: float = 4_000.0,
        save_on_end: bool = True,
    ) -> None:
        super().__init__(seed, dual_lan)
        self.config = config or OfttConfig()

        for name in DEMO_NODES:
            self._add_machine(name).boot_immediately()
        # The test PC needs only one network path in the paper's figure.
        self._add_machine(TEST_PC, lans=[self.lans[0]]).boot_immediately()

        # The redundant pair runs the Call Track application.
        self.pair = OfttPair(
            network=self.network,
            systems={name: self.systems[name] for name in DEMO_NODES},
            config=self.config,
            app_factory=lambda: CallTrackApp(unit="calltrack", lines=lines, save_on_end=save_on_end),
            unit="calltrack",
            monitor_nodes=[TEST_PC],
            subscriber_nodes=[TEST_PC],
            trace=self.trace,
        )

        # Test/interface PC: monitor + telephone simulator + history.
        test_node = self.network.nodes[TEST_PC]
        self.monitor = SystemMonitor(self.kernel, test_node)
        self.test_qmgr = QueueManager(self.kernel, self.network, test_node)
        self.test_qmgr.attach_to_system(self.systems[TEST_PC])
        self.diverter_client = DiverterClient(
            node=test_node,
            qmgr=self.test_qmgr,
            unit="calltrack",
            pair_nodes=list(DEMO_NODES),
            trace=self.trace,
        )
        self.telephone = TelephoneSystem(
            self.kernel,
            self.rngs.stream("telephone"),
            lines=lines,
            callers=callers,
            mean_idle=mean_idle,
            mean_call=mean_call,
        )
        self.history = CallingHistoryGenerator(self.telephone)
        # Kept as an attribute so experiments can swap the transport
        # (e.g. X4's naive sender) without disturbing the history recorder.
        self.forward_listener = lambda event: self.diverter_client.send(event.as_wire(), label=event.kind)
        self.telephone.add_listener(self.forward_listener)

    def start(self, settle: bool = True) -> None:
        """Start the pair and the workload."""
        self.pair.start()
        if settle:
            self.pair.settle()
        self.telephone.start()

    def primary_app(self) -> Optional[CallTrackApp]:
        """The Call Track copy currently executing (None during failover)."""
        primary = self.pair.primary_node()
        return self.pair.apps[primary] if primary is not None else None


class RemoteMonitoringScenario(_BaseScenario):
    """Figure 1(a): control with remote monitoring."""

    INDUSTRIAL_PC = "industrial-pc"
    PAIR_NODES = ("monitor1", "monitor2")

    def __init__(
        self,
        seed: int = 0,
        config: Optional[OfttConfig] = None,
        dual_lan: bool = True,
        scan_period: float = 50.0,
        update_rate: float = 200.0,
    ) -> None:
        super().__init__(seed, dual_lan)
        self.config = config or OfttConfig()

        # Plant floor: fieldbus, devices, PLC.
        bus = Fieldbus("devicenet0")
        bus.attach(Sensor("temp", Sine(offset=60.0, amplitude=25.0, period=20_000.0), noise=0.3))
        bus.attach(Sensor("pressure", RandomWalk(start=5.0, step=0.05, mean=5.0, minimum=0.0)))
        bus.attach(Sensor("flow", RandomWalk(start=120.0, step=1.0, mean=120.0, minimum=0.0)))
        bus.attach(Actuator("cooling_pump"))
        self.fieldbuses[bus.name] = bus
        self.plc = PLC(self.kernel, "plc1", bus, self.rngs.stream("plc"), scan_period=scan_period)
        self.plc.map_output("cooling_pump")

        def interlock(inputs, outputs, _time) -> None:
            outputs["cooling_pump"] = 1.0 if inputs.get("temp", 0.0) > 75.0 else 0.0

        self.plc.add_logic(interlock)

        # Industrial PC: hosts the (unprotected) OPC server for the PLC.
        industrial = self._add_machine(self.INDUSTRIAL_PC)
        industrial.boot_immediately()
        self.industrial_runtime = ComRuntime(industrial, self.network)
        self.opc_server = OpcServer(self.industrial_runtime, "OPC.Plant.1")
        self.bridge = PlcOpcBridge(self.kernel, self.plc, self.opc_server, poll_period=update_rate / 2.0)
        self.server_ref = self.industrial_runtime.export(self.opc_server, label="OPC.Plant.1")

        # Monitor/control PC pair with the protected SCADA client.
        for name in self.PAIR_NODES:
            self._add_machine(name).boot_immediately()
        items = ["plc1.temp", "plc1.pressure", "plc1.flow", "plc1.cooling_pump"]
        alarms = [AlarmRule("plc1.temp", high_limit=80.0, control_write=("plc1.cooling_pump", 1.0))]
        self.pair = OfttPair(
            network=self.network,
            systems={name: self.systems[name] for name in self.PAIR_NODES},
            config=self.config,
            app_factory=lambda: ScadaMonitorApp(
                server_ref=self.server_ref, items=items, alarms=alarms, update_rate=update_rate
            ),
            unit="scada",
            trace=self.trace,
        )

    def start(self, settle: bool = True) -> None:
        """Start plant, server and the protected pair."""
        self.plc.start()
        self.bridge.start()
        self.pair.start()
        if settle:
            self.pair.settle()

    def primary_app(self) -> Optional[ScadaMonitorApp]:
        """The SCADA copy currently executing."""
        primary = self.pair.primary_node()
        return self.pair.apps[primary] if primary is not None else None


class IntegratedScenario(_BaseScenario):
    """Figure 1(b): integrated monitoring and control.

    The pair nodes host *both* the OPC server app (device interface,
    stateless server FTIM) and the monitoring client app (client FTIM) —
    the full Figure 2 software architecture on one pair.
    """

    PAIR_NODES = ("mc1", "mc2")

    def __init__(
        self,
        seed: int = 0,
        config: Optional[OfttConfig] = None,
        dual_lan: bool = True,
        scan_period: float = 50.0,
    ) -> None:
        super().__init__(seed, dual_lan)
        self.config = config or OfttConfig()

        bus = Fieldbus("fieldbus0")
        bus.attach(Sensor("level", RandomWalk(start=50.0, step=0.5, mean=50.0, minimum=0.0, maximum=100.0)))
        bus.attach(Sensor("temp", Sine(offset=40.0, amplitude=15.0, period=15_000.0)))
        bus.attach(Actuator("inlet_valve"))
        self.fieldbuses[bus.name] = bus
        self.plc = PLC(self.kernel, "plc1", bus, self.rngs.stream("plc"), scan_period=scan_period)
        self.plc.map_output("inlet_valve")

        def level_control(inputs, outputs, _time) -> None:
            outputs["inlet_valve"] = 1.0 if inputs.get("level", 50.0) < 45.0 else 0.0

        self.plc.add_logic(level_control)

        for name in self.PAIR_NODES:
            self._add_machine(name).boot_immediately()

        def make_apps():
            server_app = OpcServerApp(self.plc, server_name="OPC.Integrated.1")
            client_app = ScadaMonitorApp(
                server_ref=None,  # wired on export below (local server)
                items=["plc1.level", "plc1.temp", "plc1.inlet_valve"],
                alarms=[AlarmRule("plc1.level", high_limit=70.0)],
            )
            # The client connects to whatever ObjRef the co-located server
            # app exports on each (re)launch.
            server_app.on_export.append(lambda ref: setattr(client_app, "server_ref", ref))
            return [server_app, client_app]

        self.pair = OfttPair(
            network=self.network,
            systems={name: self.systems[name] for name in self.PAIR_NODES},
            config=self.config,
            app_factory=make_apps,
            unit="integrated",
            trace=self.trace,
        )

    def start(self, settle: bool = True) -> None:
        """Start plant and pair."""
        self.plc.start()
        self.pair.start()
        if settle:
            self.pair.settle()


class PairEnvScenario(_BaseScenario):
    """A minimal two-node environment hosting an arbitrary app pair.

    The lightest thing that still satisfies the :mod:`repro.faults`
    environment contract — used by benchmark experiments and by the
    replay checker's checkpoint round-trip subjects.
    """

    NODES = ("alpha", "beta")

    def __init__(
        self,
        seed: int = 0,
        config: Optional[OfttConfig] = None,
        app_factory=None,
        unit: str = "bench",
        dual_lan: bool = False,
    ) -> None:
        super().__init__(seed, dual_lan)
        self.config = config or OfttConfig()
        for name in self.NODES:
            self._add_machine(name).boot_immediately()
        self.pair = OfttPair(
            network=self.network,
            systems={name: self.systems[name] for name in self.NODES},
            config=self.config,
            app_factory=app_factory,
            unit=unit,
            trace=self.trace,
        )

    def start(self, settle: bool = True) -> None:
        """Start the pair."""
        self.pair.start()
        if settle:
            self.pair.settle()

    def primary_app(self):
        """The app copy currently executing (None during failover)."""
        primary = self.pair.primary_node()
        return self.pair.apps[primary] if primary is not None else None


class ChaosScenario(_BaseScenario):
    """The randomized-campaign testbed used by :mod:`repro.chaos`.

    A pair (``alpha``/``beta``) runs the synthetic stateful application
    (hot counters + checkpoints) while an external ``client`` node feeds
    a steady diverter workload — so every chaos run exercises role
    negotiation, checkpointing, MSMQ store-and-forward and the diverter
    redirect path at once, and the invariant monitors have live signals
    (checkpoint hooks, queue conservation counters) to watch.

    The replication strategy comes from ``config.replication_strategy``
    (or the ``strategy`` shortcut).  Non-default strategies make the
    workload *message-driven* — the app consumes the diverter inbox and
    folds ``applied``/``last_n`` into checkpointed state — and
    ``log-replay-dr`` additionally wires a fourth ``dr-site`` node
    (checkpoint mirror target + sender-side message log + the
    :class:`~repro.core.drsite.DRSite` watcher).  The default
    cold-passive testbed is structurally unchanged.
    """

    PAIR_NODES = ("alpha", "beta")
    CLIENT = "client"
    DR_NODE = "dr-site"
    APP_NAME = "synthetic"

    def __init__(
        self,
        seed: int = 0,
        config: Optional[OfttConfig] = None,
        dual_lan: bool = False,
        workload_period: float = 200.0,
        checkpoint_period: float = 500.0,
        strategy: Optional[str] = None,
        message_driven: Optional[bool] = None,
        adaptive: Optional[bool] = None,
    ) -> None:
        super().__init__(seed, dual_lan)
        self.config = config or OfttConfig()
        if strategy is not None and strategy != self.config.replication_strategy:
            self.config = replace_config(self.config, replication_strategy=strategy)
        if adaptive is not None and adaptive != self.config.adaptive_policy:
            self.config = replace_config(self.config, adaptive_policy=adaptive)
        if self.config.replication_strategy == "log-replay-dr" and not self.config.dr_node:
            self.config = replace_config(self.config, dr_node=self.DR_NODE)
        self.strategy_name = self.config.replication_strategy
        self.message_driven = (
            message_driven if message_driven is not None else self.strategy_name != "cold-passive"
        )
        self.workload_period = workload_period
        self.workload_sent = 0
        self._workload_on = False
        self._workload_timer: Optional[int] = None

        from repro.apps.synthetic import SyntheticStateApp

        for name in self.PAIR_NODES:
            self._add_machine(name).boot_immediately()
        self._add_machine(self.CLIENT).boot_immediately()

        inbox = inbox_queue_name("chaos") if self.message_driven else None
        self.pair = OfttPair(
            network=self.network,
            systems={name: self.systems[name] for name in self.PAIR_NODES},
            config=self.config,
            app_factory=lambda: SyntheticStateApp(
                cold_kb=4,
                hot_vars=4,
                tick_period=100.0,
                checkpoint_period=checkpoint_period,
                inbox_queue=inbox,
            ),
            unit="chaos",
            subscriber_nodes=[self.CLIENT],
            trace=self.trace,
        )

        self.dr_site: Optional[DRSite] = None
        mirror = None
        if self.strategy_name == "log-replay-dr":
            dr_system = self._add_machine(self.config.dr_node)
            dr_system.boot_immediately()
            self.dr_qmgr = QueueManager(self.kernel, self.network, self.network.nodes[self.config.dr_node])
            self.dr_qmgr.attach_to_system(dr_system)
            self.dr_site = DRSite(
                kernel=self.kernel,
                system=dr_system,
                qmgr=self.dr_qmgr,
                config=self.config,
                trace=self.trace,
                app_name=self.APP_NAME,
                apply_message=SyntheticStateApp.apply_message,
            )
            mirror = (self.config.dr_node, DR_QUEUE)

        client_node = self.network.nodes[self.CLIENT]
        self.client_qmgr = QueueManager(self.kernel, self.network, client_node)
        self.client_qmgr.attach_to_system(self.systems[self.CLIENT])
        self.diverter_client = DiverterClient(
            node=client_node,
            qmgr=self.client_qmgr,
            unit="chaos",
            pair_nodes=list(self.PAIR_NODES),
            trace=self.trace,
            mirror=mirror,
        )

    def start(self, settle: bool = True) -> None:
        """Start the pair and the client workload."""
        self.pair.start()
        if settle:
            self.pair.settle()
        self._workload_on = True
        self._workload_tick()

    def stop_workload(self) -> None:
        """Stop generating client traffic (drain phase of a run)."""
        self._workload_on = False
        if self._workload_timer is not None:
            self.kernel.cancel(self._workload_timer)
            self._workload_timer = None

    def _workload_tick(self) -> None:
        if not self._workload_on:
            return
        self.workload_sent += 1
        self.diverter_client.send({"op": "tick", "n": self.workload_sent}, label="workload")
        self._workload_timer = self.kernel.schedule(self.workload_period, self._workload_tick)


def build_chaos(seed: int = 0, config: Optional[OfttConfig] = None, **kwargs) -> ChaosScenario:
    """Construct (without starting) the chaos-campaign testbed."""
    return ChaosScenario(seed=seed, config=config, **kwargs)


def build_pair_env(seed: int = 0, config: Optional[OfttConfig] = None, app_factory=None, **kwargs) -> PairEnvScenario:
    """Construct (without starting) a minimal two-node pair environment."""
    return PairEnvScenario(seed=seed, config=config, app_factory=app_factory, **kwargs)


def build_demo(seed: int = 0, config: Optional[OfttConfig] = None, **kwargs) -> DemoScenario:
    """Construct (without starting) the Figure 3 demo scenario."""
    return DemoScenario(seed=seed, config=config, **kwargs)


def build_remote_monitoring(seed: int = 0, config: Optional[OfttConfig] = None, **kwargs) -> RemoteMonitoringScenario:
    """Construct (without starting) the Figure 1(a) scenario."""
    return RemoteMonitoringScenario(seed=seed, config=config, **kwargs)


def build_integrated(seed: int = 0, config: Optional[OfttConfig] = None, **kwargs) -> IntegratedScenario:
    """Construct (without starting) the Figure 1(b) scenario."""
    return IntegratedScenario(seed=seed, config=config, **kwargs)
