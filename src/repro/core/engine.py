"""The OFTT Engine.

"The OFTT engine is the core of the OFTT toolkit and controls all aspects
of fault tolerance": role management, failure detection, recovery
management, and status reporting (§2.2.1).  It "is implemented as a
client-side COM server and runs as a separate process started by the
application" — here it owns an :class:`~repro.nt.process.NTProcess` of
its own, so the §4 demo (d) *middleware failure* is simply killing that
process.

Inter-engine protocol (port ``oftt.engine``): heartbeats carrying role
and incarnation, role announcements, checkpoint transfer + ack, and the
takeover handshake used for deliberate switchovers (``OFTTDistress``,
recovery-rule escalation).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Union

from repro.com.interfaces import declare_interface
from repro.com.object import ComObject
from repro.core.appdriver import NodeContext, OfttApplication
from repro.core.checkpoint import Checkpoint, CheckpointStore
from repro.core.config import OfttConfig, RecoveryAction, RecoveryRule
from repro.core.heartbeat import HeartbeatMonitor
from repro.core.policy import AdaptivePolicy
from repro.core.recovery import RecoveryManager
from repro.core.roles import Role, RoleNegotiator
from repro.core.status import ComponentKind, ComponentStatus, StatusReport
from repro.core.strategy import PEER, create_strategy
from repro.core.watchdog import WatchdogTimer
from repro.errors import OfttError, WatchdogError
from repro.nt.process import NTProcess

ENGINE_PORT = "oftt.engine"
STATUS_PORT = "oftt.status"
DIVERTER_PORT = "oftt.diverter"

IENGINE = declare_interface(
    "IOFTTEngine",
    ("GetRole", "GetStatusTable", "RequestSwitchover", "GetCheckpointInfo"),
)


class _Component:
    """Engine-side record of one monitored component."""

    __slots__ = ("name", "kind", "process", "status", "exit_hook")

    def __init__(self, name: str, kind: ComponentKind, process: NTProcess) -> None:
        self.name = name
        self.kind = kind
        self.process = process
        self.status = ComponentStatus.RUNNING
        #: Exit hook appended to process.on_exit, kept so unregistering
        #: the component can remove it again.
        self.exit_hook = None


class OfttEngine(ComObject):
    """One node's OFTT engine."""

    IMPLEMENTS = (IENGINE,)

    def __init__(
        self,
        context: NodeContext,
        peer_node: str,
        application: Union[OfttApplication, List[OfttApplication], None] = None,
        monitor_nodes: Optional[List[str]] = None,
        subscriber_nodes: Optional[List[str]] = None,
        preferred_primary: str = "",
    ) -> None:
        super().__init__()
        self.context = context
        self.config = context.config
        self.kernel = context.kernel
        self.trace = context.trace
        self.node_name = context.node_name
        self.peer_node = peer_node
        if application is None:
            app_list: List[OfttApplication] = []
        elif isinstance(application, OfttApplication):
            app_list = [application]
        else:
            app_list = list(application)
        #: Managed applications by component name (launched when primary).
        self.applications: Dict[str, OfttApplication] = {app.name: app for app in app_list}
        self.monitor_nodes = list(monitor_nodes or [])
        self.subscriber_nodes = list(subscriber_nodes or [])
        context.engine = self

        # The engine's own OS process ("runs as a separate process").
        self.process = context.system.create_process("oftt-engine")
        self.process.bind_port(ENGINE_PORT, self._on_engine_message)
        self.process.on_exit.append(self._on_process_exit)
        self.process.start()

        self.negotiator = RoleNegotiator(
            kernel=self.kernel,
            node_name=self.node_name,
            peer_name=peer_node,
            config=self.config,
            send=self._send_to_peer,
            on_decided=self._on_role_decided,
            on_shutdown=self._on_startup_shutdown,
            on_demoted=self._on_demoted,
            preferred_primary=preferred_primary,
            trace=self.trace,
        )
        self.monitor = HeartbeatMonitor(
            self.kernel,
            self.config.heartbeat_period,
            self._on_heartbeat_failure,
            miss_threshold=self.config.heartbeat_miss_threshold,
        )
        self.recovery = RecoveryManager(self.kernel, self.config)
        #: Replication strategy: owns checkpoint policy, the replication
        #: stream and role-change reactions (see repro.core.strategy).
        self.strategy = create_strategy(self.config.replication_strategy)
        self.strategy.attach(self)
        self.strategy_name = self.config.replication_strategy
        self.strategy_switch_count = 0
        #: Observation hooks: callbacks (engine, old_name, new_name, reason)
        #: fired after a runtime strategy switch (flapping monitor).
        self.on_strategy_switch: List = []
        #: Deployment-provided ladder stage 3: reinstall this node's
        #: middleware stack (set by OfttPair; None = fall back to
        #: switchover).  Only the adaptive policy ever asks for it.
        self.reinstall_hook = None
        #: Adaptive policy layer — absent (None) unless opted in, so the
        #: default configuration's behaviour is byte-identical.
        self.policy: Optional[AdaptivePolicy] = (
            AdaptivePolicy(self) if self.config.adaptive_policy else None
        )
        #: Checkpoints of the *local* application (for local restart).
        self.local_store = CheckpointStore(self.config.checkpoint_history)
        #: Checkpoints mirrored from the *peer's* application (for failover).
        self.peer_store = CheckpointStore(self.config.checkpoint_history)
        self.components: Dict[str, _Component] = {}
        self.watchdogs: Dict[str, WatchdogTimer] = {}
        # Per-engine takeover ids: a class-level counter would carry over
        # between scenarios in one Python process, so the takeover_id in
        # the switchover-initiated trace would differ run-to-run.  The id
        # only disambiguates this engine's pending handoff, so restarting
        # from 1 per instance is safe.
        self._takeover_ids = itertools.count(1)
        self.acked_sequence = 0
        self.peer_present = False
        self.degraded = False
        self.stopped = False
        self.switchover_count = 0
        self.local_restart_count = 0
        self._pending_takeover: Optional[int] = None
        self._dual_backup_streak = 0
        #: Wire size of every checkpoint submitted (pre-merge, so
        #: incremental deltas report their actual transfer cost).
        self.checkpoint_sizes: List[int] = []
        #: Waiters for peer acknowledgement of a sequence (durable saves).
        self._ack_waiters: List = []  # (sequence, Event) pairs
        #: Handles of the heartbeat/status report loops, cancelled on
        #: process exit so a dead engine leaves nothing in the kernel.
        self._hb_timer: Optional[int] = None
        self._report_timer: Optional[int] = None
        self._stats = {"heartbeats_rx": 0, "checkpoints_tx": 0, "checkpoints_rx": 0, "acks_rx": 0}
        #: Observation hooks for invariant monitors and fault triggers
        #: (repro.chaos): fired after a local checkpoint is submitted /
        #: after a peer checkpoint is stored.  Callbacks must not mutate
        #: engine state.
        self.on_checkpoint_submit: List = []  # callbacks (engine, Checkpoint)
        self.on_checkpoint_stored: List = []  # callbacks (engine, Checkpoint)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Begin operation: watch the peer, negotiate roles, report."""
        self.monitor.watch(PEER, self.config.peer_heartbeat_timeout)
        self.monitor.start()
        self._peer_heartbeat_loop()
        self._status_report_loop()
        if self.policy is not None:
            self.policy.start()
        self.negotiator.begin()
        self.trace.emit("engine", self.node_name, "engine-started")

    @property
    def alive(self) -> bool:
        """Whether the engine process is still running."""
        return not self.stopped and self.process.alive

    @property
    def role(self) -> Role:
        """Current role of this node."""
        return self.negotiator.role

    @property
    def application(self) -> Optional[OfttApplication]:
        """The first managed application (convenience for single-app pairs)."""
        for app in self.applications.values():
            return app
        return None

    def _on_process_exit(self, _process: NTProcess) -> None:
        # §4 demo (d): middleware failure.  Everything engine-driven stops.
        self.stopped = True
        if self._hb_timer is not None:
            self.kernel.cancel(self._hb_timer)
            self._hb_timer = None
        if self._report_timer is not None:
            self.kernel.cancel(self._report_timer)
            self._report_timer = None
        self.monitor.stop()
        self.monitor.clear()
        if self.policy is not None:
            self.policy.stop()
        # Sorted so teardown side effects (timer cancels, traces) fire in
        # a name-stable order regardless of watchdog creation history.
        for name in sorted(self.watchdogs):
            watchdog = self.watchdogs[name]
            if not watchdog.deleted:
                watchdog.delete()
        self.trace.emit("engine", self.node_name, "engine-dead")

    def shutdown(self) -> None:
        """Orderly engine shutdown (stops the apps too)."""
        self._stop_all_applications()
        if self.process.alive:
            self.process.exit(0)

    def _stop_all_applications(self) -> None:
        # Registration order is the fan-out contract here: applications
        # is only ever built once in __init__ from the caller's list, so
        # iteration order is deterministic across runs and restores.
        for app in self.applications.values():
            if app.running:
                record = self.components.get(app.name)
                if record is not None:
                    record.status = ComponentStatus.STOPPED
                self.monitor.pause(app.name)
                app.stop()

    # -- component registration (called by FTIMs) ------------------------------------

    def register_component(
        self,
        name: str,
        kind: ComponentKind,
        process: NTProcess,
        rule: Optional[RecoveryRule] = None,
    ) -> None:
        """Start monitoring a component linked with an FTIM."""
        if not self.alive:
            raise OfttError(f"engine on {self.node_name} is not running")
        record = _Component(name, kind, process)
        self.components[name] = record
        self.monitor.watch(name, self.config.heartbeat_timeout)
        if rule is not None:
            self.recovery.set_rule(name, rule)
        if self.config.use_exit_hooks:
            record.exit_hook = lambda _p, n=name: self._on_component_exit(n)
            process.on_exit.append(record.exit_hook)
        self.trace.emit("engine", self.node_name, "component-registered", target=name, kind=kind.value)

    def unregister_component(self, name: str) -> None:
        """Stop monitoring a component and release everything watching it.

        The inverse of :meth:`register_component`: removes the heartbeat
        watch, forgets recovery history, and unhooks the process-exit
        callback so a later exit of the (now unmanaged) process does not
        trigger recovery.  Idempotent; unknown names are a no-op.
        """
        record = self.components.pop(name, None)
        if record is None:
            return
        self.monitor.unwatch(name)
        self.recovery.clear(name)
        if record.exit_hook is not None and record.exit_hook in record.process.on_exit:
            record.process.on_exit.remove(record.exit_hook)
        record.exit_hook = None
        self.trace.emit("engine", self.node_name, "component-unregistered", target=name)

    def heartbeat_from(self, name: str) -> None:
        """Receive a local component heartbeat (direct same-node call)."""
        if not self.alive:
            return
        self._stats["heartbeats_rx"] += 1
        self.monitor.beat(name)

    def set_recovery_rule(self, component: str, rule: RecoveryRule) -> None:
        """Dynamic recovery-rule change (§2.2.1 run-time option).

        The rule lands in the shared deployment config (see
        :meth:`RecoveryManager.set_rule`), so the engine, its recovery
        manager and every other holder of the config stay in agreement.
        """
        self.recovery.set_rule(component, rule)

    # -- watchdog management (OFTTWatchdog*) ---------------------------------------------

    def watchdog_create(self, name: str, owner: str) -> WatchdogTimer:
        """Create a reliable watchdog owned by component *owner*."""
        if name in self.watchdogs and not self.watchdogs[name].deleted:
            raise WatchdogError(f"watchdog {name} already exists")
        watchdog = WatchdogTimer(self.kernel, name, owner, self._on_watchdog_expired)
        self.watchdogs[name] = watchdog
        return watchdog

    def _on_watchdog_expired(self, watchdog: WatchdogTimer) -> None:
        if not self.alive:
            return
        self.trace.emit("engine", self.node_name, "watchdog-expired", watchdog=watchdog.name, owner=watchdog.owner)
        self._handle_component_failure(watchdog.owner, f"watchdog {watchdog.name} expired")

    # -- checkpoints ----------------------------------------------------------------------

    def submit_checkpoint(self, checkpoint: Checkpoint) -> None:
        """FTIM hands over a fresh checkpoint: keep locally, mirror to peer."""
        if not self.alive:
            return
        self.checkpoint_sizes.append(checkpoint.size_bytes())
        self.local_store.store(checkpoint)
        self._stats["checkpoints_tx"] += 1
        self.strategy.replicate(checkpoint)
        for callback in list(self.on_checkpoint_submit):
            callback(self, checkpoint)

    def latest_local_image(self, app_name: str) -> Optional[Dict[str, Any]]:
        """Image for a local restart (None if never checkpointed)."""
        checkpoint = self.local_store.latest(app_name)
        return checkpoint.image if checkpoint is not None else None

    def latest_peer_image(self, app_name: str) -> Optional[Dict[str, Any]]:
        """Image for a failover takeover (None if never received)."""
        checkpoint = self.peer_store.latest(app_name)
        return checkpoint.image if checkpoint is not None else None

    # -- failure handling ----------------------------------------------------------------

    def _on_heartbeat_failure(self, component: str, silence: float) -> None:
        if not self.alive:
            return
        if component == PEER:
            self._on_peer_lost(silence)
        else:
            self.trace.emit(
                "engine", self.node_name, "heartbeat-timeout", target=component, silence=round(silence, 3)
            )
            self._handle_component_failure(component, f"heartbeat silence {silence:.0f}ms")

    def _on_component_exit(self, component: str) -> None:
        if not self.alive:
            return
        record = self.components.get(component)
        if record is not None and record.status in (ComponentStatus.RECOVERING, ComponentStatus.STOPPED):
            return  # deliberate stop or restart in progress
        self.trace.emit("engine", self.node_name, "component-exit", target=component)
        self._handle_component_failure(component, "process exit")

    def _handle_component_failure(self, component: str, reason: str) -> None:
        record = self.components.get(component)
        if record is None:
            return
        if record.status in (ComponentStatus.FAILED, ComponentStatus.RECOVERING, ComponentStatus.STOPPED):
            return  # already being handled
        record.status = ComponentStatus.FAILED
        self._report_now(component)
        if self.policy is not None:
            decision = self.policy.decide(component, reason)
        else:
            decision = self.recovery.on_failure(component, reason)
        self.trace.emit(
            "engine",
            self.node_name,
            "recovery-decision",
            target=component,
            action=decision.action.value,
            reason=decision.reason,
        )
        if decision.action is RecoveryAction.LOCAL_RESTART:
            record.status = ComponentStatus.RECOVERING
            self.monitor.pause(component)
            self.kernel.schedule(decision.delay, self._local_restart, component)
        elif decision.action is RecoveryAction.FAILOVER:
            self.strategy.on_failover_escalation(component, decision)
        elif decision.action is RecoveryAction.REINSTALL:
            self._initiate_reinstall(component, decision.reason)
        else:
            self._report_now(component)

    def _local_restart(self, component: str) -> None:
        app = self.applications.get(component)
        if not self.alive or app is None:
            return
        if self.role is not Role.PRIMARY:
            return  # role changed while the restart was queued
        self.local_restart_count += 1
        image = self.latest_local_image(component)
        self.trace.emit(
            "engine", self.node_name, "local-restart", target=component, with_checkpoint=image is not None
        )
        app.stop()
        app.launch(image)
        record = self.components.get(component)
        if record is not None:
            record.status = ComponentStatus.RUNNING
        self.monitor.resume(component)
        self._report_now(component)

    # -- switchover (deliberate handoff) ----------------------------------------------------

    def request_switchover(self, reason: str) -> None:
        """OFTTDistress entry point: hand control to the peer if possible."""
        if not self.alive:
            return
        if self.role is not Role.PRIMARY:
            raise OfttError(f"{self.node_name}: switchover requested while {self.role.value}")
        self._initiate_switchover(reason)

    def _initiate_switchover(self, reason: str) -> None:
        if self.role is not Role.PRIMARY:
            return
        if not self.peer_present:
            # "if application on the peer node is functional" — it is not;
            # the best we can do is keep trying locally.
            self.trace.emit("engine", self.node_name, "switchover-impossible", reason=reason)
            for app in self.applications.values():
                if not app.running:
                    self.kernel.schedule(self.config.default_rule.restart_delay, self._forced_local_restart, app.name)
            return
        self.switchover_count += 1
        takeover_id = next(self._takeover_ids)
        self._pending_takeover = takeover_id
        self.trace.emit("engine", self.node_name, "switchover-initiated", reason=reason, takeover_id=takeover_id)
        # Stop the local copies FIRST (single-primary safety), then hand off.
        self._stop_all_applications()
        self.negotiator.demote()
        self._send_to_peer({"kind": "takeover", "takeover_id": takeover_id, "reason": reason})
        # If the peer never acks, our peer-loss detection will promote us
        # right back — the self-healing loop closes itself.

    # Same-tick with _local_restart is benign: both guard on app.running,
    # so the loser of the seq tiebreak is a no-op.
    def _forced_local_restart(self, component: str) -> None:  # oftt-lint: ok[race-write-write]
        app = self.applications.get(component)
        if not self.alive or app is None or self.role is not Role.PRIMARY:
            return
        if app.running:
            return
        self.local_restart_count += 1
        app.launch(self.latest_local_image(component))
        record = self.components.get(component)
        if record is not None:
            record.status = ComponentStatus.RUNNING
        self.monitor.resume(component)

    # -- reinstall (escalation ladder stage 3) -------------------------------------------------

    def _initiate_reinstall(self, component: str, reason: str) -> None:
        """Last rung of the adaptive ladder: rebuild this node's stack.

        Reached only when local restarts are exhausted *and* a
        switchover already failed for want of a peer — at that point the
        middleware itself is the remaining suspect (the paper's manual
        remedy: reinstall OFTT on the node).  The deployment wires
        :attr:`reinstall_hook`; without one we degrade to the switchover
        path, which retries local restarts when the peer is absent.
        """
        self.trace.emit("engine", self.node_name, "reinstall-initiated", target=component, reason=reason)
        if self.reinstall_hook is None:
            self._initiate_switchover(reason)
            return
        # Deferred one event: the hook tears this engine down, which
        # must not happen inside our own failure-handling frame.
        self.kernel.schedule(0.0, self.reinstall_hook)

    # -- runtime strategy switching ------------------------------------------------------------

    def switch_strategy(self, name: str, reason: str) -> None:
        """Move the live pair onto replication strategy *name*.

        Safe-handoff protocol, all inside one simulator event so no
        checkpoint or engine message can interleave with a half-switched
        state: (1) quiesce — nothing is in flight once we are here;
        (2) atomic swap of the strategy object; (3) re-base every
        checkpointing FTIM via ``force_full_capture`` so no post-switch
        delta references a base the peer merged under the old rules;
        (4) resume — the FTIMs' next periodic capture uses the new
        policy.  The backup follows the primary's choice via the
        ``strategy`` field on heartbeats.
        """
        if not self.alive or name == self.strategy_name:
            return
        old_name = self.strategy_name
        new_strategy = create_strategy(name)
        new_strategy.attach(self)
        self.strategy = new_strategy
        self.strategy_name = name
        self.strategy_switch_count += 1
        for app in self.applications.values():
            ftim = getattr(getattr(app, "api", None), "ftim", None)
            if ftim is not None and ftim.takes_checkpoints:
                ftim.apply_checkpoint_policy(new_strategy)
        self.trace.emit(
            "engine", self.node_name, "strategy-switched", strategy=name, previous=old_name, reason=reason
        )
        for callback in list(self.on_strategy_switch):
            callback(self, old_name, name, reason)

    # -- peer handling -----------------------------------------------------------------------

    def _on_peer_lost(self, silence: float) -> None:
        self.peer_present = False
        self.trace.emit("engine", self.node_name, "peer-lost", silence=round(silence, 3), role=self.role.value)
        self.strategy.on_peer_lost(silence)

    def _promote(self, reason: str) -> None:
        self.negotiator.promote()
        self.trace.emit("engine", self.node_name, "takeover", reason=reason)
        self._start_application_as_primary()
        self._broadcast_role_change()

    def _start_application_as_primary(self) -> None:
        if not self.alive:
            # Negotiator timers (startup wait/retry) outlive the engine
            # process; a decision landing after death must not launch.
            return
        # Same registration-order contract as _stop_all_applications:
        # launch order matters for trace comparison, and __init__ fixed it.
        for name, app in self.applications.items():
            if app.running:
                continue
            # A predecessor engine's copy may have orphaned a process with
            # this name (a hung app never fail-stops itself because its
            # FTIM thread is suspended too).  The service restart reaps it
            # before launching ours, like the NT service manager would.
            stale = self.context.system.find_process(name)
            if stale is not None and stale.alive and (app.process is None or stale is not app.process):
                self.trace.emit("engine", self.node_name, "stale-process-reaped", target=name)
                stale.kill(code=-4)
            image = self.latest_peer_image(name)
            if image is None:
                # Maybe we were primary before and have local history.
                image = self.latest_local_image(name)
            app.launch(image)
            record = self.components.get(name)
            if record is not None:
                record.status = ComponentStatus.RUNNING
            self.monitor.resume(name)
            self.recovery.clear(name)

    def _on_role_decided(self, role: Role) -> None:
        if not self.alive:
            return
        if role is Role.PRIMARY:
            self._start_application_as_primary()
        self._broadcast_role_change()
        self._report_now("oftt-engine")

    def _on_startup_shutdown(self) -> None:
        # The original §3.2 behaviour: give up and power down the stack.
        self.trace.emit("engine", self.node_name, "startup-giving-up")
        self.shutdown()

    def _on_demoted(self) -> None:
        # Lost a dual-primary resolution: stop our copies immediately.
        self._stop_all_applications()
        self._broadcast_role_change()

    # -- wire protocol ------------------------------------------------------------------------

    def _send_to_peer(self, payload: Dict[str, Any]) -> None:
        if not self.process.alive:
            return
        self.context.system.node.send(self.peer_node, ENGINE_PORT, payload, size=128)

    def scaled(self, period: float) -> float:
        """*period* as measured by this machine's (possibly skewed) clock.

        Periodic engine timers go through this so a ``ClockSkew`` fault
        on the host stretches heartbeat/report cadence the way a drifting
        hardware clock would.  Re-read every iteration, so skew injected
        mid-run takes effect on the next tick.
        """
        return period * self.context.system.clock_scale

    def _peer_heartbeat_loop(self) -> None:
        if not self.alive:
            return
        payload = {
            "kind": "hb",
            "node": self.node_name,
            "role": self.role.value,
            "incarnation": self.negotiator.incarnation,
        }
        if self.policy is not None:
            # Lets the backup follow a runtime strategy switch.  Only
            # added with the policy on, keeping default wire bytes (and
            # thus traces) identical to the static build.
            payload["strategy"] = self.strategy_name
        self._send_to_peer(payload)
        self.strategy.on_heartbeat_tick()
        self._hb_timer = self.kernel.schedule(
            self.scaled(self.config.peer_heartbeat_period), self._peer_heartbeat_loop
        )

    def _on_engine_message(self, message) -> None:
        if not self.alive:
            return
        payload = message.payload
        kind = payload.get("kind")
        if kind == "hb":
            self._on_peer_heartbeat(payload)
        elif kind == "role-announce":
            self.negotiator.on_peer_announce(payload)
        elif kind == "ckpt":
            self._on_checkpoint(payload)
        elif kind == "ckpt-ack":
            self._on_checkpoint_ack(payload)
        elif kind == "ckpt-resync":
            self.strategy.on_resync_request(payload)
        elif kind == "takeover":
            self._on_takeover_request(payload)

    def _on_peer_heartbeat(self, payload: Dict[str, Any]) -> None:
        was_present = self.peer_present
        self.peer_present = True
        self.monitor.beat(PEER)
        if self.degraded:
            self.degraded = False
            self.trace.emit("engine", self.node_name, "peer-returned")
        peer_role = Role(payload["role"])
        if not was_present or peer_role is Role.PRIMARY:
            # Role-carrying heartbeats double as announcements.
            self.negotiator.on_peer_announce(payload)
        peer_strategy = payload.get("strategy")
        if (
            self.policy is not None
            and peer_strategy
            and peer_role is Role.PRIMARY
            and self.role is not Role.PRIMARY
            and peer_strategy != self.strategy_name
        ):
            self.switch_strategy(peer_strategy, "follow primary")
        self._check_dual_backup(peer_role)

    def _check_dual_backup(self, peer_role: Role) -> None:
        # A lost takeover message (or crossed demotions) can leave both
        # nodes BACKUP with nobody running the application.  If the
        # condition persists across several peer heartbeats, the
        # deterministic tie-break winner promotes itself.
        if self.role is Role.BACKUP and peer_role is Role.BACKUP and self.negotiator.decided_at is not None:
            self._dual_backup_streak += 1
            if self._dual_backup_streak >= 3 and self.negotiator._wins_tiebreak():
                self._dual_backup_streak = 0
                self.trace.emit("engine", self.node_name, "dual-backup-resolved")
                self._promote("dual-backup resolution")
        else:
            self._dual_backup_streak = 0

    def _on_checkpoint(self, payload: Dict[str, Any]) -> None:
        self.strategy.on_peer_checkpoint(payload)

    def _on_checkpoint_ack(self, payload: Dict[str, Any]) -> None:
        self._stats["acks_rx"] += 1
        self.acked_sequence = max(self.acked_sequence, payload["sequence"])
        still_waiting = []
        for sequence, event in self._ack_waiters:
            if sequence <= self.acked_sequence:
                if not event.fired:
                    event.succeed(True)
            else:
                still_waiting.append((sequence, event))
        self._ack_waiters = still_waiting

    def ack_event_for(self, sequence: int, timeout: Optional[float] = None):
        """A waitable that fires True once the peer acks *sequence*.

        Fires False after *timeout* (default: the configured checkpoint
        ack timeout) — e.g. when no backup is present.  Used by the
        durable-save API so applications can make state changes
        *provably* replicated before proceeding.
        """
        from repro.simnet.events import Event

        event = Event(name=f"ckpt-ack:{sequence}")
        if sequence <= self.acked_sequence:
            event.succeed(True)
            return event
        self._ack_waiters.append((sequence, event))
        deadline = timeout if timeout is not None else self.config.checkpoint_ack_timeout

        def give_up() -> None:
            if not event.fired:
                self._ack_waiters = [(s, e) for s, e in self._ack_waiters if e is not event]
                event.succeed(False)

        self.kernel.schedule(deadline, give_up)
        return event

    def _on_takeover_request(self, payload: Dict[str, Any]) -> None:
        self.trace.emit("engine", self.node_name, "takeover-request", reason=payload.get("reason", ""))
        self.strategy.on_takeover_request(payload)

    # -- status reporting ------------------------------------------------------------------------

    def _status_report_loop(self) -> None:
        if not self.alive:
            return
        for report in self.status_reports():
            self._send_report(report)
        # Re-broadcast the role periodically as well: diverter clients
        # that missed a role-change notice (boot races, lossy links)
        # relearn the primary within one report period.
        if self.role is Role.PRIMARY:
            self._broadcast_role_change()
        self._report_timer = self.kernel.schedule(
            self.scaled(self.config.status_report_period), self._status_report_loop
        )

    def status_reports(self) -> List[StatusReport]:
        """Current status of everything this engine monitors."""
        reports = [
            StatusReport(
                node=self.node_name,
                component="oftt-engine",
                kind=ComponentKind.OFTT_ENGINE,
                status=ComponentStatus.RUNNING if self.alive else ComponentStatus.FAILED,
                role=self.role.value,
                time=self.kernel.now,
                detail={"incarnation": self.negotiator.incarnation, "degraded": self.degraded},
            ),
            StatusReport(
                node=self.node_name,
                component="peer-link",
                kind=ComponentKind.HARDWARE,
                status=ComponentStatus.RUNNING if self.peer_present else ComponentStatus.FAILED,
                time=self.kernel.now,
                detail={"peer": self.peer_node},
            ),
        ]
        for component in sorted(self.components):
            record = self.components[component]
            reports.append(
                StatusReport(
                    node=self.node_name,
                    component=component,
                    kind=record.kind,
                    status=record.status,
                    role=self.role.value,
                    time=self.kernel.now,
                )
            )
        return reports

    def _report_now(self, component: str) -> None:
        for report in self.status_reports():
            if report.component == component:
                self._send_report(report)

    def _send_report(self, report: StatusReport) -> None:
        for monitor_node in self.monitor_nodes:
            self.context.system.node.send(monitor_node, STATUS_PORT, report.as_wire(), size=96)

    def _broadcast_role_change(self) -> None:
        notice = {
            "kind": "role-change",
            "node": self.node_name,
            "peer": self.peer_node,
            "role": self.role.value,
            "incarnation": self.negotiator.incarnation,
            "time": self.kernel.now,
        }
        for subscriber in self.subscriber_nodes:
            self.context.system.node.send(subscriber, DIVERTER_PORT, notice, size=64)

    # -- COM surface --------------------------------------------------------------------------------

    def GetRole(self) -> str:
        """IOFTTEngine::GetRole."""
        return self.role.value

    def GetStatusTable(self) -> List[dict]:
        """IOFTTEngine::GetStatusTable."""
        return [report.as_wire() for report in self.status_reports()]

    def RequestSwitchover(self, reason: str) -> None:
        """IOFTTEngine::RequestSwitchover (remote-callable distress)."""
        self.request_switchover(reason)

    def GetCheckpointInfo(self) -> dict:
        """IOFTTEngine::GetCheckpointInfo."""
        app = self.application.name if self.application is not None else ""
        return {
            "acked_sequence": self.acked_sequence,
            "local_latest": self.local_store.latest_sequence(app) if app else 0,
            "peer_latest": self.peer_store.latest_sequence(app) if app else 0,
        }

    def stats(self) -> Dict[str, int]:
        """Engine counters (for benches and the monitor)."""
        return dict(self._stats)

    def __repr__(self) -> str:
        return f"OfttEngine({self.node_name}, {self.role.value}, alive={self.alive})"
