"""COM interface declarations.

An :class:`InterfaceDecl` names an interface, assigns its IID, and lists
its method names.  :class:`~repro.com.object.ComObject` subclasses declare
which interfaces they implement; ``QueryInterface`` and the DCOM proxy
machinery consult these declarations to decide what is callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.com.guids import GUID, guid_from_name


@dataclass(frozen=True)
class InterfaceDecl:
    """A COM interface: name, IID and method set."""

    name: str
    iid: GUID
    methods: Tuple[str, ...]
    base: Optional["InterfaceDecl"] = field(default=None)

    def all_methods(self) -> Tuple[str, ...]:
        """Methods including those inherited from the base chain."""
        inherited = self.base.all_methods() if self.base is not None else ()
        return inherited + self.methods

    def has_method(self, method: str) -> bool:
        """Whether *method* is part of this interface (or its bases)."""
        return method in self.all_methods()

    def __str__(self) -> str:
        return f"{self.name} {self.iid}"


def declare_interface(name: str, methods: Tuple[str, ...], base: Optional[InterfaceDecl] = None) -> InterfaceDecl:
    """Declare an interface with a deterministic IID derived from *name*."""
    return InterfaceDecl(name=name, iid=guid_from_name(f"IID:{name}"), methods=tuple(methods), base=base)


#: The root of every interface hierarchy.
IUNKNOWN = declare_interface("IUnknown", ("QueryInterface", "AddRef", "Release"))
