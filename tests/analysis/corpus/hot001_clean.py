"""Clean twin of hot001: the invariant container is a module constant."""

_NAMES = ("alpha", "beta", "gamma")


class Hot:
    def run(self, value):
        return value in _NAMES
