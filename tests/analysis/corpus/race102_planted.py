"""Planted RACE102: a handler reads what another writes via a helper.

``on_update`` refreshes ``self.reading`` through ``_refresh``;
``on_report`` reads it in the same tick.
"""


class Gauge:
    def __init__(self, kernel):
        self.kernel = kernel
        self.reading = 0

    def start(self):
        self.kernel.schedule(1.0, self.on_update)
        self.kernel.schedule(1.0, self.on_report)

    def on_update(self):  # expect: RACE102
        self._refresh()

    def _refresh(self):
        self.reading = 42

    def on_report(self):
        return self.reading
