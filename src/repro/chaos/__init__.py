"""Randomized fault campaigns with live invariant monitors.

The §4 demos and :mod:`repro.faults.campaign` replay *scripted* fault
sequences; this package searches the space the scripts do not cover.
A seeded :class:`~repro.chaos.schedule.ScheduleGenerator` samples fault
schedules (including correlated bursts and the gray/asymmetric failure
modes real deployments hit), a :class:`~repro.chaos.runner.ChaosRun`
plays each one against a fresh pair testbed while invariant monitors
watch live state (split-brain, checkpoint monotonicity, diverter
conservation, recovery latency, heartbeat liveness), and
:func:`~repro.chaos.minimize.minimize_schedule` delta-debugs any failing
schedule down to a minimal reproducer.

Everything is deterministic per seed — chaos runs are themselves replay
subjects under ``oftt-replay``.

* ``python -m repro.chaos --smoke`` — the ``make verify`` gate.
* ``python -m repro.chaos --self-test`` — prove the monitors fire by
  sabotaging dual-primary resolution (expected exit: 1).

See ``CHAOS.md`` for the schedule format, invariant catalogue,
minimizer semantics and a triage guide.
"""

from repro.chaos.invariants import (
    CheckpointMonotonicityMonitor,
    DiverterConservationMonitor,
    HeartbeatLivenessMonitor,
    InvariantMonitor,
    RecoveryLatencyMonitor,
    SplitBrainMonitor,
    Violation,
    default_monitors,
)
from repro.chaos.minimize import MinimizationResult, minimize_schedule
from repro.chaos.runner import ChaosRun, RunResult, run_schedule
from repro.chaos.schedule import ChaosSchedule, FaultEntry, ScheduleGenerator

__all__ = [
    "ChaosRun",
    "ChaosSchedule",
    "CheckpointMonotonicityMonitor",
    "DiverterConservationMonitor",
    "FaultEntry",
    "HeartbeatLivenessMonitor",
    "InvariantMonitor",
    "MinimizationResult",
    "RecoveryLatencyMonitor",
    "RunResult",
    "ScheduleGenerator",
    "SplitBrainMonitor",
    "Violation",
    "default_monitors",
    "minimize_schedule",
    "run_schedule",
]
