"""OPC value types: VARIANT tags, quality flags, timestamped values."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

# VARIANT type tags (the subset industrial data uses).
VT_I4 = "VT_I4"
VT_R8 = "VT_R8"
VT_BOOL = "VT_BOOL"
VT_BSTR = "VT_BSTR"


def canonical_vt(value: Any) -> str:
    """The VARIANT tag a raw Python value maps to."""
    if isinstance(value, bool):
        return VT_BOOL
    if isinstance(value, int):
        return VT_I4
    if isinstance(value, float):
        return VT_R8
    if isinstance(value, str):
        return VT_BSTR
    raise TypeError(f"no VARIANT mapping for {type(value).__name__}")


class Quality(enum.Enum):
    """OPC quality flags (major status + common sub-status)."""

    GOOD = "good"
    GOOD_LOCAL_OVERRIDE = "good:local-override"
    UNCERTAIN = "uncertain"
    UNCERTAIN_LAST_USABLE = "uncertain:last-usable"
    BAD = "bad"
    BAD_NOT_CONNECTED = "bad:not-connected"
    BAD_DEVICE_FAILURE = "bad:device-failure"
    BAD_COMM_FAILURE = "bad:comm-failure"
    BAD_OUT_OF_SERVICE = "bad:out-of-service"

    @property
    def is_good(self) -> bool:
        """Major status is GOOD."""
        return self.value.startswith("good")

    @property
    def is_bad(self) -> bool:
        """Major status is BAD."""
        return self.value.startswith("bad")


@dataclass(frozen=True)
class OpcValue:
    """A value with OPC quality and source timestamp."""

    value: Any
    quality: Quality = Quality.GOOD
    timestamp: float = 0.0

    def with_quality(self, quality: Quality) -> "OpcValue":
        """Copy with a different quality flag."""
        return OpcValue(value=self.value, quality=quality, timestamp=self.timestamp)

    def as_wire(self) -> dict:
        """Marshalable form for DCOM callbacks."""
        return {"value": self.value, "quality": self.quality.value, "timestamp": self.timestamp}

    @classmethod
    def from_wire(cls, data: dict) -> "OpcValue":
        """Inverse of :meth:`as_wire`."""
        return cls(value=data["value"], quality=Quality(data["quality"]), timestamp=data["timestamp"])

    def __repr__(self) -> str:
        return f"OpcValue({self.value!r}, {self.quality.value}, t={self.timestamp})"
