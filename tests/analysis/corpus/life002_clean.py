"""Clean twin of life002: stop() removes the watch it registered."""


class PeerGuard:
    def __init__(self, monitor):
        self.monitor = monitor
        self.running = False

    def start(self):
        self.monitor.watch("peer", 500.0)
        self.running = True

    def stop(self):
        self.running = False
        self.monitor.unwatch("peer")
