"""Unit tests for the Call Track application."""

from repro.apps.calltrack import STATE_VARS, CallTrackApp
from repro.core.cluster import OfttPair
from repro.core.config import OfttConfig

from tests.conftest import make_world


def make_calltrack(save_on_end=True):
    world = make_world()
    for name in ("alpha", "beta"):
        world.add_machine(name)
    pair = OfttPair(
        network=world.network,
        systems=dict(world.systems),
        config=OfttConfig(),
        app_factory=lambda: CallTrackApp(unit="test", save_on_end=save_on_end),
        unit="test",
        trace=world.trace,
    )
    pair.start()
    pair.settle()
    world.pair = pair
    return world, pair.apps[pair.primary_node()]


def event(sequence, kind="start", busy=2, line=1, caller=0, time=0.0):
    return {
        "kind": kind,
        "caller": caller,
        "line": line,
        "time": time,
        "busy_lines": busy,
        "sequence": sequence,
    }


def test_event_processing_updates_state():
    world, app = make_calltrack()
    app.process_event(event(1, kind="start", busy=1))
    app.process_event(event(2, kind="end", busy=0, line=1))
    app.process_event(event(3, kind="blocked", busy=5, line=-1))
    state = app.state()
    assert state["total_calls"] == 1
    assert state["blocked_calls"] == 1
    assert state["events_processed"] == 3
    assert app.histogram()[1] == 1
    assert app.histogram()[0] == 1
    assert app.histogram()[5] == 1
    assert state["line_seconds"]["1"] == 1.0


def test_duplicates_dropped_in_any_order():
    world, app = make_calltrack()
    assert app.process_event(event(1))
    assert app.process_event(event(3))
    assert not app.process_event(event(1))  # duplicate below window
    assert app.process_event(event(2))  # fills the gap
    assert not app.process_event(event(2))  # now duplicate
    assert not app.process_event(event(3))
    state = app.state()
    assert state["events_processed"] == 3
    assert state["duplicates_dropped"] == 3
    assert state["seen_floor"] == 3
    assert state["seen_recent"] == []


def test_seen_window_compacts_contiguous_prefix():
    world, app = make_calltrack()
    for sequence in (2, 4, 1):
        app.process_event(event(sequence))
    state = app.state()
    assert state["seen_floor"] == 2
    assert state["seen_recent"] == [4]


def test_events_arriving_via_queue():
    world, app = make_calltrack()
    primary = world.pair.primary_node()
    other = [n for n in ("alpha", "beta") if n != primary][0]
    qmgr = world.pair.contexts[other].qmgr
    from repro.core.diverter import inbox_queue_name

    qmgr.send(primary, inbox_queue_name("test"), event(1))
    world.run_for(500.0)
    assert app.events_processed() == 1


def test_event_based_save_on_call_end():
    world, app = make_calltrack(save_on_end=True)
    checkpoints_before = app.api.ftim.checkpoints_taken
    app.process_event(event(1, kind="start"))
    assert app.api.ftim.checkpoints_taken == checkpoints_before  # no save on start
    app.process_event(event(2, kind="end", line=1))
    assert app.api.ftim.checkpoints_taken == checkpoints_before + 1


def test_no_event_saves_when_disabled():
    world, app = make_calltrack(save_on_end=False)
    before = app.api.ftim.checkpoints_taken
    app.process_event(event(1, kind="end", line=0))
    assert app.api.ftim.checkpoints_taken == before


def test_state_restores_across_relaunch():
    world, app = make_calltrack()
    for sequence in range(1, 6):
        app.process_event(event(sequence, kind="end", line=0))
    image = {"globals": app.api.ftim.capture().image["globals"]}
    app.stop()
    app.launch(image)
    restored = app.state()
    assert restored["events_processed"] == 5
    assert restored["seen_floor"] == 5
    # Replaying old events after restore is harmless.
    assert not app.process_event(event(3))


def test_render_histogram_display():
    world, app = make_calltrack()
    for sequence, busy in ((1, 0), (2, 1), (3, 1), (4, 5)):
        app.process_event(event(sequence, busy=busy))
    rendered = app.render_histogram(width=10)
    assert "0 busy" in rendered and "5 busy" in rendered
    assert "4 events" in rendered
    world.run_for(1_000.0)  # display refresh thread runs
    assert app.process.address_space.read("display")


def test_state_vars_all_designated():
    world, app = make_calltrack()
    checkpoint = app.api.ftim.capture()
    assert set(checkpoint.image["globals"]) == set(STATE_VARS)
