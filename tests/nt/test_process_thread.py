"""Unit tests for NT processes and threads."""

import pytest

from repro.errors import NTError, ProcessDead, ThreadDead
from repro.nt.process import ProcessState
from repro.nt.thread import ThreadState
from repro.simnet.events import Timeout

from tests.conftest import make_world


def make_machine():
    world = make_world()
    system = world.add_machine("host")
    return world, system


def ticker(counter):
    def body(thread):
        def loop():
            while True:
                yield Timeout(10.0)
                counter.append(thread.process.system.kernel.now)

        return loop()

    return body


def test_process_lifecycle_and_thread_start():
    world, system = make_machine()
    ticks = []
    process = system.create_process("app")
    process.create_thread("main", body=ticker(ticks), dynamic=False)
    assert process.state is ProcessState.CREATED
    process.start()
    world.run(35.0)
    assert len(ticks) == 3


def test_create_thread_on_running_process_starts_immediately():
    world, system = make_machine()
    ticks = []
    process = system.create_process("app")
    process.create_thread("idle", dynamic=False)
    process.start()
    process.create_thread("late", body=ticker(ticks), dynamic=True)
    world.run(25.0)
    assert len(ticks) == 2


def test_double_thread_start_does_not_fork_body():
    world, system = make_machine()
    ticks = []
    process = system.create_process("app")
    thread = process.create_thread("main", body=ticker(ticks), dynamic=False)
    process.start()
    thread.start()  # second start must be a no-op
    world.run(50.0)
    assert len(ticks) == 5  # not 10


def test_process_exits_when_last_thread_finishes():
    world, system = make_machine()

    def body(thread):
        def run():
            yield Timeout(5.0)

        return run()

    process = system.create_process("app")
    process.create_thread("main", body=body, dynamic=False)
    process.start()
    world.run(10.0)
    assert process.state is ProcessState.EXITED
    assert process.exit_code == 0


def test_kill_terminates_threads_and_unbinds_ports():
    world, system = make_machine()
    ticks = []
    process = system.create_process("app")
    process.create_thread("main", body=ticker(ticks), dynamic=False)
    process.start()
    process.bind_port("svc", lambda m: None)
    world.run(25.0)
    process.kill()
    assert process.state is ProcessState.KILLED
    assert system.node.handler_for("svc") is None
    world.run(100.0)
    assert len(ticks) == 2


def test_exit_hooks_fire_once():
    world, system = make_machine()
    exits = []
    process = system.create_process("app")
    process.create_thread("main", dynamic=False)
    process.on_exit.append(lambda p: exits.append(p.state))
    process.start()
    process.kill()
    process.kill()
    assert exits == [ProcessState.KILLED]


def test_hang_keeps_memory_but_stops_threads():
    world, system = make_machine()
    ticks = []
    process = system.create_process("app")
    process.address_space.write("value", 7)
    process.create_thread("main", body=ticker(ticks), dynamic=False)
    process.start()
    world.run(25.0)
    process.hang()
    assert process.state is ProcessState.HUNG
    assert process.alive  # the kernel object still exists
    world.run(100.0)
    assert len(ticks) == 2  # no progress while hung
    assert process.address_space.read("value") == 7


def test_unhang_resumes_execution():
    world, system = make_machine()
    ticks = []
    process = system.create_process("app")
    process.create_thread("main", body=ticker(ticks), dynamic=False)
    process.start()
    world.run(25.0)
    process.hang()
    world.run(50.0)
    process.unhang()
    world.run(85.0)
    assert len(ticks) > 2


def test_operations_on_dead_process_fail():
    world, system = make_machine()
    process = system.create_process("app")
    process.create_thread("main", dynamic=False)
    process.start()
    process.kill()
    with pytest.raises(ProcessDead):
        process.create_thread("late")
    with pytest.raises(ProcessDead):
        process.bind_port("svc", lambda m: None)


def test_thread_context_advances_as_body_runs():
    world, system = make_machine()
    ticks = []
    process = system.create_process("app")
    thread = process.create_thread("main", body=ticker(ticks), dynamic=False)
    initial_pc = thread.context.program_counter
    process.start()
    world.run(50.0)
    assert thread.context.program_counter > initial_pc


def test_capture_context_on_dead_thread_faults():
    world, system = make_machine()
    process = system.create_process("app")
    thread = process.create_thread("main", dynamic=False)
    process.start()
    thread.terminate()
    with pytest.raises(ThreadDead):
        thread.capture_context()


def test_thread_suspend_resume_uses_fresh_generator_same_memory():
    world, system = make_machine()
    process = system.create_process("app")
    process.address_space.write("count", 0)

    def body(thread):
        def loop():
            while True:
                yield Timeout(10.0)
                space = process.address_space
                space.write("count", space.read("count") + 1)

        return loop()

    thread = process.create_thread("main", body=body, dynamic=False)
    process.start()
    world.run(35.0)
    thread.suspend()
    assert thread.state is ThreadState.SUSPENDED
    count_at_suspend = process.address_space.read("count")
    world.run(100.0)
    thread.resume()
    world.run(140.0)
    assert process.address_space.read("count") > count_at_suspend


def test_resume_non_suspended_thread_rejected():
    world, system = make_machine()
    process = system.create_process("app")
    thread = process.create_thread("main", dynamic=False)
    process.start()
    with pytest.raises(ThreadDead):
        thread.resume()
