"""Benchmark X3: the §3.2 startup non-determinism experiment.

Paper narrative: the original startup logic — come up as backup, wait for
the peer's message, shut down on timeout — interacted with NT's
unpredictable boot times so that "the first node that starts up would
frequently shut down".  "Additional logic was added to initiate retries
several times before it shuts down.  It effectively solves the original
problem."

This harness boots pairs with large random boot skew (jitter larger than
the negotiation wait) under the SHUTDOWN give-up policy, sweeping the
retry budget, and reports the false-shutdown rate.

Expected shape: a substantial shutdown rate at 0 retries, falling to zero
once the retry budget covers the boot skew.
"""

from repro.harness.experiments import exp_startup

from benchmarks.conftest import print_rows


def test_bench_startup_retries(benchmark):
    rows = benchmark.pedantic(
        lambda: exp_startup(seeds=list(range(25)), retry_settings=[0, 1, 3, 5]),
        rounds=1,
        iterations=1,
    )
    print_rows("X3: false-shutdown rate vs startup retry budget", rows)
    rates = [row["shutdown_rate"] for row in rows]
    assert rates[0] > 0.2  # the original logic fails often
    assert rates == sorted(rates, reverse=True)  # retries monotonically help
    assert rates[-1] == 0.0  # and eventually solve it, as the paper reports
