# Developer entry points.  `make verify` is the CI gate: tier-1 tests,
# the static-analysis toolkit (see ANALYSIS.md), the dynamic
# replay-divergence gate (see REPLAY.md), the chaos smoke campaign
# (see CHAOS.md), and the parallel-equivalence gate (see PERF.md).

PY := PYTHONPATH=src python

.PHONY: test test-par lint lint-tests lint-json replay replay-json chaos chaos-selftest strategy-matrix policy-matrix perf-gate bench bench-diff verify

test:
	$(PY) -m pytest -x -q

# The persistent-pool profile: the executor suite re-run with the shared
# worker pool exercised at jobs 1, 2 and 4 inside one interpreter, so
# pool reuse, resize-respawn and byte-identity across worker counts are
# all covered (see tests/perf/test_parallel_profile.py).
test-par:
	$(PY) -m pytest -x -q tests/perf

# The interprocedural effects pass (--effects: call-graph race
# propagation + parallel_map purity) and the hot-path pass (--hotpath:
# HOT001-HOT006 over the roots in src/repro/analysis/hotpath.manifest)
# are on for the lint gates; the planted-defect corpora that prove they
# work are gated by tests/analysis/test_effects_corpus.py and
# tests/analysis/test_hotpath_corpus.py under `make test`.  Results are
# cached in .oftt-lint-cache.json (keyed by content hash + rule-set
# version); pass --no-cache to force a cold run.
lint:
	$(PY) -m repro.analysis src/repro --strict --effects --hotpath --lifecycle

# Tests are linted with the per-directory profile: the ambient DET rules
# (unseeded randomness, entropy, environment reads) are relaxed because
# property-style tests and CLI fixtures use them deliberately, and the
# PURE rules because test tasks exercise impurity on purpose.  The
# planted-defect corpus additionally violates both race families and all
# six lifecycle rules by design (the default lifecycle manifest matches
# by method name, so the planted corpus classes trip it directly).
lint-tests:
	$(PY) -m repro.analysis tests --strict --effects --hotpath --lifecycle \
		--relax tests=DET002,DET003,DET006,PURE001,PURE002,PURE003,PURE004 \
		--relax tests/analysis/corpus=RACE001,RACE002,RACE003,RACE101,RACE102,RACE103,LIFE001,LIFE002,LIFE003,LIFE004,LIFE005,LIFE006

lint-json:
	$(PY) -m repro.analysis src/repro --strict --effects --hotpath --lifecycle --format json

replay:
	$(PY) -m repro.replay --gate

replay-json:
	$(PY) -m repro.replay --gate --format json

# The smoke campaign must be violation-free (exit 0), and the sabotaged
# self-test must be caught by the monitors (exit 1) — both are gates.
chaos:
	$(PY) -m repro.chaos --smoke

chaos-selftest:
	@$(PY) -m repro.chaos --self-test > /dev/null; \
	status=$$?; \
	if [ $$status -eq 1 ]; then \
		echo "chaos self-test: monitors caught the sabotage (exit $$status, as expected)"; \
	else \
		echo "chaos self-test: expected exit 1, got $$status" >&2; exit 1; \
	fi

# The chaos smoke campaign under every replication strategy: the default
# cold-passive run (the `chaos` target) plus leader-follower and
# log-replay-dr, all violation-free.
strategy-matrix: chaos
	$(PY) -m repro.chaos --smoke --strategy leader-follower
	$(PY) -m repro.chaos --smoke --strategy log-replay-dr

# The adaptive-policy gate: (1) the mixed drifting fault-mix runs
# violation-free under the adaptive policy (runtime strategy switches
# included, flapping/thrash monitors live), and (2) the smoke-sized
# policy sweep shows adaptive beating every static policy on mean
# recovery latency at an equal-or-lower spurious-failover count.
policy-matrix:
	$(PY) -m repro.chaos --drift mixed --policy --seeds 3 --jobs 2
	$(PY) -m repro.perf sweep --policies --profiles mixed --seeds 2 --jobs 2 --gate

# The executor contract (see PERF.md): a campaign run at --jobs 2 must
# render byte-identically to the serial run.
perf-gate:
	$(PY) -m repro.perf check-chaos --seeds 2 --schedules 2 --jobs 2

# Quick-profile benchmark; saves the next numbered BENCH_<n>.json here.
# `make bench ONLY=kernel-events` runs a single bench (unsaved) for
# hot-path iteration.
bench:
ifdef ONLY
	$(PY) -m repro.bench --profile quick --jobs 2 --only $(ONLY)
else
	$(PY) -m repro.bench --profile quick --jobs 2 --save
endif

# Compare the two newest saved reports: work halves must be
# byte-identical, measured halves within the noise threshold.  A single
# baseline (fresh clone) is a clean no-op.
bench-diff:
	$(PY) -m repro.bench diff --latest

verify: test test-par lint lint-tests replay strategy-matrix policy-matrix chaos-selftest perf-gate bench-diff
