"""Planted HOT003: per-event membership scan over a growing list."""


class Hot:
    def __init__(self):
        self.seen = []

    def note(self, key):
        self.seen.append(key)

    def run(self, key):
        if key in self.seen:  # expect: HOT003
            return True
        self.note(key)
        return False
