"""The hot-path optimizations must be invisible: same results, same order.

Covers the trace select() indexes, the emit() no-subscriber fast path,
the per-record as_wire()/fingerprint() caches, and the kernel's lazy-
cancel heap compaction — each checked against a brute-force or
compaction-free equivalent.
"""

from __future__ import annotations

from repro.simnet.kernel import SimKernel
from repro.simnet.trace import TraceLog


def build_log(n: int = 60) -> TraceLog:
    log = TraceLog()
    for i in range(n):
        log.emit(f"cat-{i % 3}", f"comp-{i % 4}", f"ev-{i % 5}", index=i, value=i * 0.5)
    return log


# -- select() indexes ------------------------------------------------------


def brute_select(log, category=None, component=None, event=None, since=None, until=None):
    out = []
    for record in log.records:
        if category is not None and record.category != category:
            continue
        if component is not None and record.component != component:
            continue
        if event is not None and record.event != event:
            continue
        if since is not None and record.time < since:
            continue
        if until is not None and record.time >= until:
            continue
        out.append(record)
    return out


def test_select_matches_brute_force_for_every_filter_combo():
    log = build_log()
    combos = [
        {},
        {"category": "cat-1"},
        {"component": "comp-2"},
        {"event": "ev-3"},
        {"category": "cat-0", "component": "comp-0"},
        {"category": "cat-2", "event": "ev-4"},
        {"component": "comp-3", "event": "ev-1"},
        {"category": "cat-1", "component": "comp-1", "event": "ev-2"},
        {"category": "no-such"},
        {"component": "no-such"},
    ]
    for combo in combos:
        assert log.select(**combo) == brute_select(log, **combo), combo


def test_select_preserves_emit_order():
    log = build_log()
    picked = log.select(category="cat-1")
    assert [r.detail["index"] for r in picked] == sorted(r.detail["index"] for r in picked)


def test_index_tracks_post_select_emits():
    log = build_log(12)
    assert len(log.select(category="cat-0")) == 4
    log.emit("cat-0", "comp-9", "late")
    assert len(log.select(category="cat-0")) == 5
    assert log.select(category="cat-0")[-1].event == "late"


# -- emit() fast path ------------------------------------------------------


def test_emit_without_subscribers_then_subscribe():
    log = TraceLog()
    log.emit("a", "b", "before")
    seen = []
    log.subscribe(seen.append)
    log.emit("a", "b", "after")
    assert [r.event for r in seen] == ["after"]
    assert [r.event for r in log.records] == ["before", "after"]


# -- record caches ---------------------------------------------------------


def test_as_wire_is_cached_and_stable():
    log = build_log(5)
    record = log.records[0]
    first = record.as_wire()
    assert record.as_wire() is first  # memoized on the frozen record
    assert record.as_wire() == first


def test_fingerprint_cached_per_record_and_log():
    log = build_log(10)
    record = log.records[3]
    assert record.fingerprint() == record.fingerprint()
    cold = log.fingerprint()
    assert log.fingerprint() == cold
    log.emit("cat-9", "comp-9", "new")
    assert log.fingerprint() != cold  # new records must still change it


# -- kernel lazy-cancel compaction -----------------------------------------


def drive(kernel, n, cancel_every):
    fired = []
    calls = [
        kernel.schedule(float((i * 7) % 101), fired.append, i)
        for i in range(n)
    ]
    for call in calls[::cancel_every]:
        kernel.cancel(call)
    kernel.run()
    return fired


def test_compaction_does_not_change_firing_order():
    eager, lazy = SimKernel(), SimKernel()
    eager.COMPACT_MIN_SIZE = 16  # force frequent compaction
    lazy.COMPACT_MIN_SIZE = 10 ** 9  # never compact
    assert drive(eager, 600, 2) == drive(lazy, 600, 2)


def test_pending_is_exact_through_cancellations():
    kernel = SimKernel()
    calls = [kernel.schedule(float(i), lambda: None) for i in range(700)]
    assert kernel.pending == 700
    for call in calls[::2]:
        kernel.cancel(call)
    assert kernel.pending == 350
    kernel.cancel(calls[1])
    kernel.cancel(calls[1])  # idempotent: double cancel counts once
    assert kernel.pending == 349
    kernel.run()
    assert kernel.pending == 0


def test_cancel_after_run_is_harmless():
    kernel = SimKernel()
    call = kernel.schedule(1.0, lambda: None)
    kernel.run()
    assert kernel.pending == 0
    kernel.cancel(call)  # already executed; must not corrupt the counter
    assert kernel.pending == 0
    kernel.schedule(1.0, lambda: None)
    assert kernel.pending == 1
