"""Continuous environmental monitoring — another §5 use case.

"The OFTT toolkit can be used in other environments where high
availability is a benefit.  These include continuous environmental
monitoring, laboratory automation, and multiparameter patient
monitoring."

Three remote monitoring sites (river gauge, air-quality station, weather
mast), each with its own fieldbus + controller + OPC server on a site PC.
A protected aggregation station subscribes to *all* sites, maintains
rolling statistics and exceedance counts per site, and must not lose the
accumulating environmental record when its PC fails — the record is the
product.

Shows how to build a custom multi-server OfttApplication on the public
API (one OpcClient per site inside a single protected process).

Run:  python examples/environmental_monitoring.py
"""

from repro.core.api import OfttApi
from repro.core.appdriver import OfttApplication
from repro.core.cluster import OfttPair
from repro.core.config import OfttConfig
from repro.com.runtime import ComRuntime
from repro.devices.device import Sensor
from repro.devices.fieldbus import Fieldbus
from repro.devices.plc import PLC, PlcOpcBridge
from repro.devices.signals import RandomWalk, Sine
from repro.nt import NTSystem
from repro.opc.client import OpcClient
from repro.opc.server import OpcServer
from repro.simnet import Network, RngStreams, SimKernel, Timeout, TraceLog

SITES = {
    "river": [("stage_m", RandomWalk(start=2.1, step=0.02, mean=2.1, minimum=0.0)), ],
    "air": [("pm25", RandomWalk(start=18.0, step=1.0, mean=18.0, minimum=0.0)),
            ("ozone", Sine(offset=45.0, amplitude=20.0, period=86_400.0))],
    "weather": [("wind_ms", RandomWalk(start=6.0, step=0.5, mean=6.0, minimum=0.0)),
                ("temp_c", Sine(offset=12.0, amplitude=9.0, period=86_400.0))],
}
LIMITS = {"air.pm25": 22.0, "weather.wind_ms": 7.0, "river.stage_m": 2.15}

STATE_VARS = ("samples", "exceedances", "running_sum", "running_count")


class EnvironmentalAggregator(OfttApplication):
    """Protected aggregator subscribing to every site's OPC server."""

    name = "env-aggregator"

    def __init__(self, site_refs):
        super().__init__()
        self.site_refs = dict(site_refs)
        self.api = None

    def launch(self, image):
        context = self.context
        process = context.system.create_process(self.name)
        self.process = process
        space = process.address_space
        restored = dict(image.get("globals", {})) if image else {}
        space.write("samples", restored.get("samples", 0))
        space.write("exceedances", restored.get("exceedances", {}))
        space.write("running_sum", restored.get("running_sum", {}))
        space.write("running_count", restored.get("running_count", {}))

        def main(_thread):
            def loop():
                # One OPC client (and subscription) per site.
                for site, ref in sorted(self.site_refs.items()):
                    client = OpcClient(context.runtime, f"{self.name}:{site}", process=process)
                    yield from client.connect_remote(ref)
                    group = yield from client.add_group(
                        f"{site}:{context.node_name}:{self.launch_count}", update_rate=1_000.0
                    )
                    item_ids = [f"{site}1.{point}" for point, _sig in SITES[site]]
                    yield from group.add_items(item_ids)
                    group.set_callback(lambda _name, batch, s=site: self._ingest(s, batch))
                while True:
                    yield Timeout(5_000.0)

            return loop()

        process.create_thread("main", body=main, dynamic=False)
        process.start()
        api = OfttApi(context, self.name, process)
        api.OFTTInitialize(stateful=True, checkpoint_period=2_000.0)
        api.OFTTSelSave("globals", list(STATE_VARS))
        self.api = api
        self.launch_count += 1
        return process

    def _ingest(self, site, batch):
        if self.process is None or not self.process.alive:
            return
        space = self.process.address_space
        samples = space.read("samples")
        sums = space.read("running_sum")
        counts = space.read("running_count")
        exceedances = space.read("exceedances")
        for _handle, item_id, value in batch:
            if not value.quality.is_good or not isinstance(value.value, (int, float)):
                continue
            samples += 1
            key = item_id
            sums[key] = sums.get(key, 0.0) + value.value
            counts[key] = counts.get(key, 0) + 1
            short = f"{site}.{item_id.split('.')[-1]}"
            limit = LIMITS.get(short)
            if limit is not None and value.value > limit:
                exceedances[short] = exceedances.get(short, 0) + 1
        space.write("samples", samples)
        space.write("running_sum", sums)
        space.write("running_count", counts)
        space.write("exceedances", exceedances)

    def report(self):
        space = self.process.address_space
        sums, counts = space.read("running_sum"), space.read("running_count")
        means = {k: round(sums[k] / counts[k], 2) for k in sorted(sums) if counts.get(k)}
        return {
            "samples": space.read("samples"),
            "means": means,
            "exceedances": space.read("exceedances"),
        }


def main() -> None:
    kernel = SimKernel()
    rngs = RngStreams(seed=404)
    trace = TraceLog(clock=lambda: kernel.now)
    network = Network(kernel, rngs, trace)
    network.add_link("wan", latency=2.0, jitter=0.5)

    systems = {}
    for name in [f"{site}-pc" for site in SITES] + ["agg1", "agg2"]:
        network.add_node(name)
        network.attach(name, "wan")
        systems[name] = NTSystem(kernel, network.nodes[name], rngs, trace)
        systems[name].boot_immediately()

    # Each site: fieldbus -> controller -> OPC server on the site PC.
    site_refs = {}
    for site, points in SITES.items():
        bus = Fieldbus(f"{site}-bus")
        for point, signal in points:
            bus.attach(Sensor(point, signal, noise=0.1))
        controller = PLC(kernel, f"{site}1", bus, rngs.stream(site), scan_period=500.0)
        runtime = ComRuntime(systems[f"{site}-pc"], network)
        server = OpcServer(runtime, f"OPC.{site}.1")
        bridge = PlcOpcBridge(kernel, controller, server, poll_period=1_000.0)
        controller.start()
        bridge.start()
        site_refs[site] = runtime.export(server, label=site)

    pair = OfttPair(
        network=network,
        systems={"agg1": systems["agg1"], "agg2": systems["agg2"]},
        config=OfttConfig(checkpoint_period=2_000.0),
        app_factory=lambda: EnvironmentalAggregator(site_refs),
        unit="environment",
        trace=trace,
    )
    pair.start()
    pair.settle()
    print(f"aggregation pair formed: primary={pair.primary_node()}, sites={sorted(SITES)}\n")

    kernel.run(until=120_000.0)
    primary = pair.primary_node()
    report = pair.apps[primary].report()
    print(f"t=2min  {primary}: samples={report['samples']}")
    print(f"        site means : {report['means']}")
    print(f"        exceedances: {report['exceedances']}")

    samples_before = report["samples"]
    print(f"\n>>> power failure at {primary}\n")
    systems[primary].power_off()
    kernel.run(until=180_000.0)
    survivor = pair.primary_node()
    report2 = pair.apps[survivor].report()
    print(f"t=3min  {survivor} carries the record: samples={report2['samples']}")
    print(f"        exceedances: {report2['exceedances']}")
    assert survivor != primary
    assert report2["samples"] > samples_before - 30, "record survived within the checkpoint window"
    print("\nthe environmental record survived the station failure.")


if __name__ == "__main__":
    main()
