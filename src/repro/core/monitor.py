"""The System Monitor (§2.2.4).

"The System Monitor displays the status of the components in a process
monitoring and control system including hardware, operating system, OFTT
components, and applications.  Although necessary for system test,
evaluation, and maintenance purposes, it does not need to be present for
the operation of the OFTT fault tolerance provisions."

It listens on the status port for the engines' periodic
:class:`~repro.core.status.StatusReport` streams and keeps the latest
state per (node, component) plus a bounded history, with a plain-text
``render()`` standing in for the GUI.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.engine import STATUS_PORT
from repro.core.status import ComponentStatus, StatusReport
from repro.simnet.kernel import SimKernel
from repro.simnet.network import Message, NetNode


class SystemMonitor:
    """Status collector + display for one OFTT installation."""

    def __init__(self, kernel: SimKernel, node: NetNode, history_limit: int = 10_000) -> None:
        self.kernel = kernel
        self.node = node
        self.history_limit = history_limit
        self.latest: Dict[Tuple[str, str], StatusReport] = {}
        self.history: List[StatusReport] = []
        self.reports_received = 0
        self._subscribers: List[Callable[[StatusReport], None]] = []
        node.bind(STATUS_PORT, self._on_report)

    def _on_report(self, message: Message) -> None:
        report = StatusReport.from_wire(message.payload)
        self.reports_received += 1
        self.latest[(report.node, report.component)] = report
        self.history.append(report)
        if len(self.history) > self.history_limit:
            del self.history[: len(self.history) - self.history_limit]
        for subscriber in self._subscribers:
            subscriber(report)

    def subscribe(self, callback: Callable[[StatusReport], None]) -> None:
        """Live-stream every incoming report to *callback*."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[StatusReport], None]) -> None:
        """Stop streaming to *callback* (idempotent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    # -- queries --------------------------------------------------------------------

    def status_of(self, node: str, component: str) -> Optional[ComponentStatus]:
        """Latest known status of one component (None if never seen)."""
        report = self.latest.get((node, component))
        return report.status if report is not None else None

    def role_of(self, node: str) -> Optional[str]:
        """Latest role reported by a node's engine."""
        report = self.latest.get((node, "oftt-engine"))
        return report.role if report is not None else None

    def current_primary(self) -> Optional[str]:
        """The node whose engine most recently reported PRIMARY."""
        best: Optional[StatusReport] = None
        for (node, component), report in self.latest.items():
            if component == "oftt-engine" and report.role == "primary":
                if best is None or report.time > best.time:
                    best = report
        return best.node if best is not None else None

    def unhealthy(self) -> List[StatusReport]:
        """Latest reports whose status is not healthy."""
        return sorted(
            (report for report in self.latest.values() if not report.status.is_healthy),
            key=lambda report: (report.node, report.component),
        )

    def staleness(self, node: str, component: str) -> Optional[float]:
        """Time since that component last reported."""
        report = self.latest.get((node, component))
        return self.kernel.now - report.time if report is not None else None

    def transitions(self, node: str, component: str) -> List[Tuple[float, ComponentStatus]]:
        """Status changes over time for one component."""
        result: List[Tuple[float, ComponentStatus]] = []
        for report in self.history:
            if report.node == node and report.component == component:
                if not result or result[-1][1] is not report.status:
                    result.append((report.time, report.status))
        return result

    # -- display ---------------------------------------------------------------------

    def render(self) -> str:
        """Text rendering of the status table (the monitor's 'screen')."""
        lines = [f"=== OFTT System Monitor @ t={self.kernel.now:.0f}ms ==="]
        header = f"{'node':<14} {'component':<22} {'kind':<12} {'status':<12} {'role':<8} {'age(ms)':>8}"
        lines.append(header)
        lines.append("-" * len(header))
        for (node, component) in sorted(self.latest):
            report = self.latest[(node, component)]
            age = self.kernel.now - report.time
            lines.append(
                f"{node:<14} {component:<22} {report.kind.value:<12} "
                f"{report.status.value:<12} {report.role:<8} {age:>8.0f}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"SystemMonitor({self.node.name}, components={len(self.latest)}, reports={self.reports_received})"
