"""Unit tests for the role negotiation state machine.

These drive two negotiators over a direct message pipe (no network) so
every §3.2 scenario — skewed startup, lost peers, retries, the original
shutdown logic, dual-primary resolution — is tested in isolation.
"""

import pytest

from repro.core.config import GiveUpPolicy, OfttConfig, replace_config
from repro.core.roles import Role, RoleNegotiator
from repro.errors import RoleError
from repro.simnet.kernel import SimKernel


class Harness:
    """Two negotiators joined by an in-kernel message pipe."""

    def __init__(self, config=None, latency=1.0, preferred=""):
        self.kernel = SimKernel()
        self.config = config or OfttConfig()
        self.latency = latency
        self.connected = True
        self.events = []
        self.negotiators = {}
        for name, peer in (("alpha", "beta"), ("beta", "alpha")):
            self.negotiators[name] = RoleNegotiator(
                kernel=self.kernel,
                node_name=name,
                peer_name=peer,
                config=self.config,
                send=self._sender(name, peer),
                on_decided=lambda role, n=name: self.events.append((n, "decided", role)),
                on_shutdown=lambda n=name: self.events.append((n, "shutdown", None)),
                on_demoted=lambda n=name: self.events.append((n, "demoted", None)),
                preferred_primary=preferred,
            )

    def _sender(self, source, dest):
        def send(payload):
            if self.connected:
                self.kernel.schedule(self.latency, self._deliver, dest, dict(payload))

        return send

    def _deliver(self, dest, payload):
        self.negotiators[dest].on_peer_announce(payload)

    def roles(self):
        return {name: negotiator.role for name, negotiator in self.negotiators.items()}


def test_simultaneous_startup_tiebreak():
    harness = Harness()
    for negotiator in harness.negotiators.values():
        negotiator.begin()
    harness.kernel.run(until=10_000.0)
    assert harness.roles() == {"alpha": Role.PRIMARY, "beta": Role.BACKUP}


def test_preferred_primary_wins_tiebreak():
    harness = Harness(preferred="beta")
    for negotiator in harness.negotiators.values():
        negotiator.begin()
    harness.kernel.run(until=10_000.0)
    assert harness.roles() == {"alpha": Role.BACKUP, "beta": Role.PRIMARY}


def test_skewed_startup_converges_with_retries():
    harness = Harness()
    harness.negotiators["alpha"].begin()
    # Beta starts 2.5 wait periods later: alpha must burn retries.
    harness.kernel.schedule(2_500.0, harness.negotiators["beta"].begin)
    harness.kernel.run(until=20_000.0)
    roles = sorted(role.value for role in harness.roles().values())
    assert roles == ["backup", "primary"]
    assert harness.negotiators["alpha"].retries_used >= 2


def test_original_logic_shuts_down_lone_node():
    config = replace_config(OfttConfig(), startup_retries=0, give_up_policy=GiveUpPolicy.SHUTDOWN)
    harness = Harness(config=config)
    harness.connected = False  # peer never hears anything
    harness.negotiators["alpha"].begin()
    harness.kernel.run(until=20_000.0)
    assert harness.negotiators["alpha"].role is Role.SHUTDOWN
    assert ("alpha", "shutdown", None) in harness.events


def test_go_primary_policy_runs_alone():
    config = replace_config(OfttConfig(), startup_retries=2, give_up_policy=GiveUpPolicy.GO_PRIMARY)
    harness = Harness(config=config)
    harness.connected = False
    harness.negotiators["alpha"].begin()
    harness.kernel.run(until=20_000.0)
    assert harness.negotiators["alpha"].role is Role.PRIMARY
    assert harness.negotiators["alpha"].retries_used == 2


def test_rejoining_node_becomes_backup():
    harness = Harness()
    for negotiator in harness.negotiators.values():
        negotiator.begin()
    harness.kernel.run(until=5_000.0)
    # Beta "reboots": fresh negotiator, alpha already primary.
    fresh = RoleNegotiator(
        kernel=harness.kernel,
        node_name="beta",
        peer_name="alpha",
        config=harness.config,
        send=harness._sender("beta", "alpha"),
        on_decided=lambda role: None,
        on_shutdown=lambda: None,
        on_demoted=lambda: None,
    )
    harness.negotiators["beta"] = fresh
    fresh.begin()
    harness.kernel.run(until=15_000.0)
    assert fresh.role is Role.BACKUP
    assert harness.negotiators["alpha"].role is Role.PRIMARY


def test_promote_and_demote_transitions():
    harness = Harness()
    for negotiator in harness.negotiators.values():
        negotiator.begin()
    harness.kernel.run(until=5_000.0)
    backup = harness.negotiators["beta"]
    backup.promote()
    assert backup.role is Role.PRIMARY
    assert backup.incarnation == 2
    with pytest.raises(RoleError):
        backup.promote()
    backup.demote()
    assert backup.role is Role.BACKUP
    with pytest.raises(RoleError):
        backup.demote()


def test_dual_primary_resolved_by_incarnation():
    harness = Harness()
    for negotiator in harness.negotiators.values():
        negotiator.begin()
    harness.kernel.run(until=5_000.0)
    alpha = harness.negotiators["alpha"]  # primary, incarnation 1
    beta = harness.negotiators["beta"]  # backup
    harness.connected = False
    beta.promote()  # partition-style promotion: incarnation 2
    harness.connected = True
    # Heal: exchange announcements both ways.
    alpha._announce()
    beta._announce()
    harness.kernel.run(until=10_000.0)
    assert alpha.role is Role.BACKUP  # lower incarnation demotes
    assert beta.role is Role.PRIMARY
    assert alpha.incarnation == beta.incarnation
    assert ("alpha", "demoted", None) in harness.events


def test_begin_twice_rejected():
    harness = Harness()
    harness.negotiators["alpha"].begin()
    harness.kernel.run(until=20_000.0)  # long enough to exhaust retries
    assert harness.negotiators["alpha"].role is not Role.UNDECIDED
    with pytest.raises(RoleError):
        harness.negotiators["alpha"].begin()
