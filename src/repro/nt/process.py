"""Simulated NT processes.

An :class:`NTProcess` owns an address space, a thread table, an IAT, and
any network ports it has bound.  Crash semantics matter here: when a
process dies (app crash, bluescreen, power-off) its threads stop, its
ports unbind — so peers see connection failures and missing heartbeats —
but its *memory object is discarded*, which is exactly why OFTT must ship
checkpoints to the peer node.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import ProcessDead
from repro.nt.iat import ImportAddressTable
from repro.nt.memory import AddressSpace
from repro.nt.thread import NTThread, ThreadBody, ThreadState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.nt.system import NTSystem


class ProcessState(enum.Enum):
    """Lifecycle of an NT process."""

    CREATED = "created"
    RUNNING = "running"
    HUNG = "hung"
    EXITED = "exited"
    KILLED = "killed"


class NTProcess:
    """A simulated NT process."""

    def __init__(self, system: "NTSystem", name: str) -> None:
        # pids come from the owning machine, not a class-level counter:
        # process-global counters survive across scenarios in one Python
        # process and make identical-seed runs trace different pids.
        self.pid = system.allocate_pid()
        self.system = system
        self.name = name
        self.state = ProcessState.CREATED
        self.exit_code: Optional[int] = None
        self.address_space = AddressSpace(name)
        self.iat = ImportAddressTable()
        self.threads: Dict[int, NTThread] = {}
        # Per-process tid allocation: tids name stack regions in the
        # checkpoint walkthrough, so a relaunched process must hand out
        # the same tids as its predecessor for images to compare equal.
        self._next_tid = 100
        self.static_thread_tids: List[int] = []
        self.bound_ports: List[str] = []
        self.on_exit: List[Callable[["NTProcess"], None]] = []

    # -- thread management ---------------------------------------------------

    def allocate_tid(self) -> int:
        """Next thread id in this process (stride 4, NT-style)."""
        self._next_tid += 4
        return self._next_tid

    def create_thread(self, name: str, body: Optional[ThreadBody] = None, dynamic: bool = True) -> NTThread:
        """Create (and start, if the process runs) a thread.

        Threads created before :meth:`start` are *static* — visible through
        the standard enumeration APIs.  Threads created afterwards (or with
        ``dynamic=True``) are only discoverable via the IAT hook, as in the
        paper.
        """
        if self.state in (ProcessState.EXITED, ProcessState.KILLED):
            raise ProcessDead(f"create_thread on dead process {self.name}")
        thread = NTThread(self, name, body=body, dynamic=dynamic)
        self.threads[thread.tid] = thread
        if not dynamic:
            self.static_thread_tids.append(thread.tid)
        if self.state is ProcessState.RUNNING:
            thread.start()
        return thread

    def start(self) -> None:
        """Transition to RUNNING and start all READY threads."""
        if self.state is not ProcessState.CREATED:
            raise ProcessDead(f"start on process {self.name} in state {self.state.value}")
        self.state = ProcessState.RUNNING
        for thread in list(self.threads.values()):
            if thread.state is ThreadState.READY:
                thread.start()
        self.system.trace.emit("nt", self.qualified_name, "process-started", pid=self.pid)

    def live_threads(self) -> List[NTThread]:
        """Threads not yet terminated."""
        return [t for t in self.threads.values() if t.state is not ThreadState.TERMINATED]

    def _on_thread_exit(self, thread: NTThread) -> None:
        # The process exits when its last thread does (NT semantics).
        if self.state is ProcessState.RUNNING and not self.live_threads():
            self.exit(0)

    # -- port ownership ---------------------------------------------------------

    def bind_port(self, port: str, handler: Callable[..., None]) -> None:
        """Bind a network port owned by this process."""
        if self.state in (ProcessState.EXITED, ProcessState.KILLED):
            raise ProcessDead(f"bind_port on dead process {self.name}")
        self.system.node.bind(port, handler)
        self.bound_ports.append(port)

    def unbind_ports(self) -> None:
        """Release every port this process bound."""
        for port in self.bound_ports:
            self.system.node.unbind(port)
        self.bound_ports.clear()

    # -- lifecycle ------------------------------------------------------------

    def exit(self, code: int = 0) -> None:
        """Orderly process exit."""
        if self.state in (ProcessState.EXITED, ProcessState.KILLED):
            return
        self.state = ProcessState.EXITED
        self.exit_code = code
        self._teardown()
        self.system.trace.emit("nt", self.qualified_name, "process-exited", code=code)
        self._notify_exit()

    def kill(self, code: int = -1) -> None:
        """Abrupt termination (application failure demo, TerminateProcess)."""
        if self.state in (ProcessState.EXITED, ProcessState.KILLED):
            return
        self.state = ProcessState.KILLED
        self.exit_code = code
        self._teardown()
        self.system.trace.emit("nt", self.qualified_name, "process-killed", code=code)
        self._notify_exit()

    def hang(self) -> None:
        """Stop all threads but keep the process object and memory.

        Models a wedged application: ports stay bound but nothing services
        them, and heartbeats stop flowing.
        """
        if self.state is not ProcessState.RUNNING:
            return
        self.state = ProcessState.HUNG
        for thread in self.live_threads():
            thread.suspend()
        self.system.trace.emit("nt", self.qualified_name, "process-hung")

    def unhang(self) -> None:
        """Recover from a hang: restart suspended threads."""
        if self.state is not ProcessState.HUNG:
            return
        self.state = ProcessState.RUNNING
        for thread in self.threads.values():
            if thread.state is ThreadState.SUSPENDED:
                thread.resume()
        self.system.trace.emit("nt", self.qualified_name, "process-unhung")

    def _teardown(self) -> None:
        for thread in list(self.threads.values()):
            if thread.state is not ThreadState.TERMINATED:
                thread.state = ThreadState.TERMINATED
                if thread._sim_process is not None:
                    thread._sim_process.kill()
        self.unbind_ports()

    def _notify_exit(self) -> None:
        for callback in self.on_exit:
            callback(self)

    @property
    def alive(self) -> bool:
        """Running or hung — i.e. the kernel object still exists."""
        return self.state in (ProcessState.RUNNING, ProcessState.HUNG)

    @property
    def qualified_name(self) -> str:
        """``node/process`` label used in traces."""
        return f"{self.system.node.name}/{self.name}"

    def __repr__(self) -> str:
        return f"NTProcess({self.qualified_name}, pid={self.pid}, {self.state.value})"
