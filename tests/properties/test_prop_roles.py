"""Property-based tests of role negotiation.

Under arbitrary start skews, message latencies and retry budgets (with
the GO_PRIMARY policy and a connected link), a pair must always converge
to exactly one primary and one backup — never two primaries, never a
deadlock — and with the SHUTDOWN policy it must never yield two primaries
either (a node may shut down instead).
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import GiveUpPolicy, OfttConfig, replace_config
from repro.core.roles import Role

from tests.core.test_roles import Harness


@given(
    skew=st.floats(min_value=0.0, max_value=5_000.0),
    latency=st.floats(min_value=0.1, max_value=200.0),
    wait=st.floats(min_value=100.0, max_value=1_500.0),
    retries=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_connected_pair_always_converges_to_one_primary(skew, latency, wait, retries):
    config = replace_config(
        OfttConfig(),
        startup_wait=wait,
        startup_retries=retries,
        give_up_policy=GiveUpPolicy.GO_PRIMARY,
    )
    harness = Harness(config=config, latency=latency)
    harness.negotiators["alpha"].begin()
    harness.kernel.schedule(skew, harness.negotiators["beta"].begin)
    harness.kernel.run(until=skew + (retries + 2) * wait + 60_000.0)
    roles = sorted(role.value for role in harness.roles().values())

    if roles == ["primary", "primary"]:
        # A transient dual-primary can only arise from the GO_PRIMARY
        # race (both gave up in flight); it must self-resolve once they
        # exchange announcements, which the heartbeat layer does in the
        # real engine.  Emulate one exchange and require resolution.
        for negotiator in harness.negotiators.values():
            negotiator._announce()
        harness.kernel.run(until=harness.kernel.now + 10 * latency + 1_000.0)
        roles = sorted(role.value for role in harness.roles().values())
    assert roles == ["backup", "primary"], roles


@given(
    skew=st.floats(min_value=0.0, max_value=5_000.0),
    retries=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_shutdown_policy_never_yields_two_primaries(skew, retries):
    config = replace_config(
        OfttConfig(),
        startup_wait=400.0,
        startup_retries=retries,
        give_up_policy=GiveUpPolicy.SHUTDOWN,
    )
    harness = Harness(config=config, latency=1.0)
    harness.negotiators["alpha"].begin()
    harness.kernel.schedule(skew, harness.negotiators["beta"].begin)
    harness.kernel.run(until=skew + 60_000.0)
    roles = [role.value for role in harness.roles().values()]
    assert roles.count("primary") <= 1
    # Every node reached a terminal state (no deadlock).
    assert all(role is not Role.UNDECIDED for role in harness.roles().values())
