"""Property-based tests: checkpoint serialization, store, incrementals."""

from hypothesis import given, settings, strategies as st

from repro.core.checkpoint import Checkpoint, CheckpointStore

# Values that can live in application memory / cross the wire.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)
images = st.dictionaries(
    st.text(min_size=1, max_size=10),
    st.dictionaries(st.text(min_size=1, max_size=10), values, max_size=5),
    max_size=4,
)


@given(image=images, sequence=st.integers(min_value=1, max_value=10**6))
def test_wire_roundtrip_identity(image, sequence):
    checkpoint = Checkpoint(app_name="app", sequence=sequence, captured_at=1.0, image=image)
    assert Checkpoint.from_wire(checkpoint.as_wire()) == checkpoint


@given(st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=30))
def test_store_latest_is_max_of_accepted_sequences(sequences):
    store = CheckpointStore(history=8)
    accepted = []
    for sequence in sequences:
        if store.store(Checkpoint("app", sequence, 0.0, {"g": {"s": sequence}})):
            accepted.append(sequence)
    # Monotone acceptance: accepted sequence numbers strictly increase.
    assert accepted == sorted(set(accepted))
    if accepted:
        assert store.latest("app").sequence == max(accepted)


@given(
    st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=50),
    st.integers(min_value=1, max_value=5),
)
def test_store_history_bound_holds(sequences, history):
    store = CheckpointStore(history=history)
    for sequence in sequences:
        store.store(Checkpoint("app", sequence, 0.0, {"g": {}}))
    assert len(store.all_for("app")) <= history


@given(
    base=st.dictionaries(st.text(min_size=1, max_size=5), st.integers(), min_size=1, max_size=8),
    delta=st.dictionaries(st.text(min_size=1, max_size=5), st.integers(), max_size=8),
)
def test_incremental_merge_equals_dict_update(base, delta):
    base_cp = Checkpoint("app", 1, 0.0, {"globals": dict(base)})
    delta_cp = Checkpoint("app", 2, 1.0, {"globals": dict(delta)}, incremental=True)
    merged = delta_cp.merged_onto(base_cp)
    expected = dict(base)
    expected.update(delta)
    assert merged.image["globals"] == expected
    assert not merged.incremental


@given(
    snapshots=st.lists(
        st.dictionaries(st.sampled_from(["a", "b", "c", "d"]), st.integers(), max_size=4),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=50)
def test_incremental_chain_reconstructs_final_state(snapshots):
    """Storing full-then-delta chains reproduces the last full snapshot."""
    from repro.core.ftim import _image_delta

    store = CheckpointStore(history=len(snapshots) + 1)
    previous = {}
    for index, snapshot in enumerate(snapshots, start=1):
        if index == 1:
            image = {"globals": dict(snapshot)}
            incremental = False
        else:
            image = _image_delta({"globals": previous}, {"globals": dict(snapshot)})
            incremental = True
        store.store(Checkpoint("app", index, float(index), image, incremental=incremental))
        previous = dict(snapshot)
    final = store.latest("app").image.get("globals", {})
    # Deleted keys are a known limitation of overlay deltas: every key
    # ever written persists, but surviving keys carry the latest value.
    for key, value in snapshots[-1].items():
        assert final[key] == value
