"""The OPC server address space: item definitions and current values."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ItemNotFound, OpcError
from repro.opc.types import OpcValue, Quality, canonical_vt

READ = "read"
WRITE = "write"
READ_WRITE = "read_write"

# Optional hook invoked when a client writes an item (device output path).
WriteHandler = Callable[[str, Any], None]


@dataclass
class ItemDef:
    """Static description of one OPC item."""

    item_id: str
    vt: str
    access: str = READ
    eu: str = ""
    description: str = ""

    def readable(self) -> bool:
        """Whether clients may read this item."""
        return self.access in (READ, READ_WRITE)

    def writable(self) -> bool:
        """Whether clients may write this item."""
        return self.access in (WRITE, READ_WRITE)


class ItemNamespace:
    """Item definitions plus their current cached values.

    Item ids are hierarchical with ``.`` separators (``plant.line1.temp``);
    :meth:`browse` walks that hierarchy the way ``IOPCBrowse`` would.
    """

    def __init__(self) -> None:
        self._defs: Dict[str, ItemDef] = {}
        self._values: Dict[str, OpcValue] = {}
        self._write_handlers: Dict[str, WriteHandler] = {}

    # -- definition -----------------------------------------------------------

    def define(self, item_def: ItemDef, initial: Optional[OpcValue] = None) -> None:
        """Add an item (error on duplicates)."""
        if item_def.item_id in self._defs:
            raise OpcError(f"item {item_def.item_id} already defined")
        self._defs[item_def.item_id] = item_def
        self._values[item_def.item_id] = initial or OpcValue(None, Quality.BAD_NOT_CONNECTED, 0.0)

    def define_simple(self, item_id: str, initial_value: Any, access: str = READ, eu: str = "") -> ItemDef:
        """Shorthand: infer the VARIANT tag from *initial_value*."""
        item_def = ItemDef(item_id=item_id, vt=canonical_vt(initial_value), access=access, eu=eu)
        self.define(item_def, initial=OpcValue(initial_value, Quality.GOOD, 0.0))
        return item_def

    def on_write(self, item_id: str, handler: WriteHandler) -> None:
        """Install the device-output hook fired when clients write."""
        self.definition(item_id)  # validates existence
        self._write_handlers[item_id] = handler

    # -- access -----------------------------------------------------------------

    def definition(self, item_id: str) -> ItemDef:
        """The :class:`ItemDef`, or :class:`ItemNotFound`."""
        if item_id not in self._defs:
            raise ItemNotFound(f"no item {item_id}")
        return self._defs[item_id]

    def exists(self, item_id: str) -> bool:
        """Whether *item_id* is defined."""
        return item_id in self._defs

    def read(self, item_id: str) -> OpcValue:
        """Current cached value."""
        if item_id not in self._values:
            raise ItemNotFound(f"no item {item_id}")
        return self._values[item_id]

    def update(self, item_id: str, value: Any, quality: Quality, timestamp: float) -> OpcValue:
        """Device-side update of the cache (does not check access rights)."""
        if item_id not in self._defs:
            raise ItemNotFound(f"no item {item_id}")
        new_value = OpcValue(value=value, quality=quality, timestamp=timestamp)
        self._values[item_id] = new_value
        return new_value

    def client_write(self, item_id: str, value: Any) -> None:
        """Client-side write: checks access, fires the device hook."""
        item_def = self.definition(item_id)
        if not item_def.writable():
            raise OpcError(f"item {item_id} is not writable")
        handler = self._write_handlers.get(item_id)
        if handler is not None:
            handler(item_id, value)

    def mark_all(self, quality: Quality, timestamp: float) -> None:
        """Stamp every item with *quality* (e.g. comm failure)."""
        for item_id, current in self._values.items():
            self._values[item_id] = OpcValue(current.value, quality, timestamp)

    # -- browsing ----------------------------------------------------------------

    def item_ids(self) -> List[str]:
        """All item ids, sorted."""
        return sorted(self._defs)

    def browse(self, branch: str = "") -> List[str]:
        """Immediate children of *branch* in the dotted hierarchy.

        Leaves are returned as full item ids, inner nodes with a trailing
        ``.`` — callers recurse on those.
        """
        prefix = f"{branch}." if branch else ""
        children = set()
        for item_id in self._defs:
            if not item_id.startswith(prefix):
                continue
            rest = item_id[len(prefix):]
            head, sep, _tail = rest.partition(".")
            children.add(f"{prefix}{head}{'.' if sep else ''}")
        return sorted(children)

    def __len__(self) -> int:
        return len(self._defs)

    def __repr__(self) -> str:
        return f"ItemNamespace({len(self._defs)} items)"
