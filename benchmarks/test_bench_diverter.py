"""Benchmark X4: the Message Diverter's switchover guarantee.

Paper claim (§2.2.3): "the message queue will store and transmit messages
to the primary copy of the application.  If a message is sent during a
switchover, the message non-delivery is detected and retried."

This harness drives a busy telephone workload through a primary power-off
twice: once through the Diverter (MSMQ store-and-forward + redirect) and
once through a naive fire-and-forget sender, and compares events lost.

Expected shape: the diverter's loss is bounded by the checkpoint window
(near zero with event-based saves); the naive sender loses everything in
flight plus everything sent before it re-learns the primary.
"""

from repro.harness.experiments import exp_diverter

from benchmarks.conftest import print_rows


def test_bench_diverter_vs_naive(benchmark):
    rows = benchmark.pedantic(lambda: exp_diverter(seeds=[0, 1, 2, 3, 4]), rounds=1, iterations=1)
    print_rows("X4: events lost across switchover, diverter vs naive", rows)
    diverter, naive = rows
    assert diverter["loss_rate"] < naive["loss_rate"]
    assert diverter["loss_rate"] < 0.01
    assert naive["events_lost"] > diverter["events_lost"]
