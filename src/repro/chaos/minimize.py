"""Failing-schedule minimization (delta debugging).

Given a schedule whose run violated an invariant, :func:`minimize_schedule`
re-runs deterministic subsets of its entries (classic ddmin: split into
chunks, try each chunk and each complement, double granularity when
nothing smaller reproduces) until it finds a locally minimal fault
sequence that still triggers the same invariant.  Because every re-run
uses the same seed and a fresh scenario, reproduction is exact — there
is no flaky-bisect problem.

Results are cached by entry-index subset so the quadratic tail of ddmin
never re-executes an already-tested configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.runner import run_schedule
from repro.chaos.schedule import ChaosSchedule
from repro.core.config import OfttConfig


@dataclass
class MinimizationResult:
    """Outcome of a ddmin pass."""

    #: The minimal schedule still reproducing the violation.
    schedule: ChaosSchedule
    #: Invariant the minimization targeted.
    invariant: str
    #: Entry count before / after.
    original_size: int
    minimal_size: int
    #: Schedule executions spent (cache hits excluded).
    runs_used: int
    #: Whether the target violation reproduced on the full schedule at all.
    reproduced: bool
    #: Index subset (into the original entry list) that survived.
    kept_indices: List[int] = field(default_factory=list)

    def as_wire(self) -> Dict:
        """JSON-safe canonical form."""
        return {
            "invariant": self.invariant,
            "original_size": self.original_size,
            "minimal_size": self.minimal_size,
            "runs_used": self.runs_used,
            "reproduced": self.reproduced,
            "kept_indices": list(self.kept_indices),
            "schedule": self.schedule.as_wire(),
        }


class _SubsetTester:
    """Runs index subsets of one schedule, with memoization."""

    def __init__(
        self,
        seed: int,
        schedule: ChaosSchedule,
        invariant: str,
        sabotage_name: str,
        config: Optional[OfttConfig] = None,
    ) -> None:
        self.seed = seed
        self.schedule = schedule
        self.invariant = invariant
        self.sabotage_name = sabotage_name
        self.config = config
        self.runs_used = 0
        self._cache: Dict[Tuple[int, ...], bool] = {}

    def fails(self, indices: List[int]) -> bool:
        """Whether the subset at *indices* still triggers the invariant."""
        key = tuple(sorted(indices))
        if key in self._cache:
            return self._cache[key]
        self.runs_used += 1
        result = run_schedule(
            self.seed,
            self.schedule.subset(list(key)),
            sabotage_name=self.sabotage_name,
            config=self.config,
        )
        failed = self.invariant in result.violation_names()
        self._cache[key] = failed
        return failed


def minimize_schedule(
    seed: int,
    schedule: ChaosSchedule,
    invariant: str,
    sabotage_name: str = "",
    max_runs: int = 64,
    config: Optional[OfttConfig] = None,
) -> MinimizationResult:
    """ddmin over *schedule*'s entries targeting *invariant*.

    ``max_runs`` bounds the schedule executions (minimization is an
    aid, not a proof; the bound keeps worst-case CLI latency sane).  The
    returned schedule is 1-minimal w.r.t. the subsets actually tested.
    Reproduction runs use *config* (e.g. a non-default replication
    strategy) when given, matching the failing campaign's runs.
    """
    tester = _SubsetTester(seed, schedule, invariant, sabotage_name, config=config)
    everything = list(range(len(schedule.entries)))
    if not everything or not tester.fails(everything):
        return MinimizationResult(
            schedule=schedule,
            invariant=invariant,
            original_size=len(schedule.entries),
            minimal_size=len(schedule.entries),
            runs_used=tester.runs_used,
            reproduced=False,
            kept_indices=everything,
        )

    current = everything
    granularity = 2
    while len(current) >= 2 and tester.runs_used < max_runs:
        chunks = _split(current, granularity)
        reduced = False
        # Try each chunk alone (big jumps first), then each complement.
        for chunk in chunks:
            if tester.runs_used >= max_runs:
                break
            if len(chunk) < len(current) and tester.fails(chunk):
                current = chunk
                granularity = 2
                reduced = True
                break
        if not reduced:
            for chunk in chunks:
                if tester.runs_used >= max_runs:
                    break
                complement = [i for i in current if i not in chunk]
                if complement and len(complement) < len(current) and tester.fails(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)

    kept = sorted(current)
    return MinimizationResult(
        schedule=schedule.subset(kept),
        invariant=invariant,
        original_size=len(schedule.entries),
        minimal_size=len(kept),
        runs_used=tester.runs_used,
        reproduced=True,
        kept_indices=kept,
    )


def _split(indices: List[int], parts: int) -> List[List[int]]:
    """Split *indices* into *parts* contiguous chunks (no empties)."""
    parts = min(parts, len(indices))
    size, remainder = divmod(len(indices), parts)
    chunks: List[List[int]] = []
    start = 0
    for part in range(parts):
        end = start + size + (1 if part < remainder else 0)
        chunks.append(indices[start:end])
        start = end
    return chunks
