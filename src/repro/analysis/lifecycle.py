"""Resource-lifecycle pass (LIFE001-LIFE006).

OFTT's middleware lives or dies by disciplined lifecycle management:
watchdogs deleted, heartbeat watches removed, reliable processes reaped
(§3).  A single leaked timer is invisible in a three-node scenario, but
the fleet testbed (ROADMAP item 1) multiplies every long-lived engine
object by hundreds of FT pairs — N leaked timers drag the kernel queue
and trace volume for the whole run.  This pass proves statically that
every *acquire* has a matching *release* on a teardown path:

* Acquire→release **pairs** are declared in a checked-in manifest
  (``repro/analysis/lifecycle.manifest``; override with
  ``--life-manifest``).  Each pair names a resource kind (``timer``,
  ``watch``, ``process``, ``subscription``), the acquiring call and the
  release call(s) that balance it.
* Matching is per **owning class**: an acquisition made by a method of
  class ``C`` must have a release reachable — through the PR-5 call
  graph (:mod:`repro.analysis.callgraph`), bounded by the same
  ``--max-k`` hop budget as the effects pass — from one of ``C``'s
  declared *teardown methods* (``stop``/``shutdown``/``close``/
  ``delete`` by default; the manifest can extend the set).
* Handle-style kinds (timer, process) track where the handle is stored:
  an acquisition stored on ``self`` needs a release that both calls the
  release method and references the same attribute.  Registration-style
  kinds (watch, subscription) need the release call on the same receiver
  chain (``self.monitor.watch`` → ``self.monitor.unwatch``).

Rules:

* LIFE001 ``leaked-timer`` / LIFE003 ``leaked-process`` — a handle
  stored on ``self`` (or a self-rescheduling loop that discards its
  handle) with no release reachable from any teardown method.
* LIFE002 ``leaked-watch`` / LIFE004 ``leaked-subscription`` — a
  registration with no matching de-registration reachable from teardown.
* LIFE005 ``rearm-without-cancel`` — re-assigning an attr-held handle
  without cancelling the previous one first (re-arming from inside the
  handle's own callback is exempt: that handle has already fired).
* LIFE006 ``unbounded-growth`` — a long-lived ``self`` container
  appended on a handler path (``on_*``/``_on_*`` methods, methods
  registered as callbacks, and their ``--max-k``-bounded callees) with
  no prune/clear/reassignment anywhere in the class.

Like every pass, findings respect ``# oftt-lint: ok[slug]`` suppressions
and reviewed-benign annotations double as documentation.  Known
imprecision (name-based acquire matching, flow-insensitive release
search, discarded one-shot timers assumed self-limiting) is catalogued
in ANALYSIS.md.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.effects import DEFAULT_MAX_K
from repro.analysis.findings import AnalysisError, Finding, Severity, rule
from repro.analysis.walker import SourceFile

LIFE_LEAKED_TIMER = rule(
    "LIFE001",
    "leaked-timer",
    Severity.WARNING,
    "life",
    "Timer handle acquired with no cancel reachable from any teardown method of the owning class.",
)
LIFE_LEAKED_WATCH = rule(
    "LIFE002",
    "leaked-watch",
    Severity.WARNING,
    "life",
    "Heartbeat watch registered with no unwatch reachable from any teardown method.",
)
LIFE_LEAKED_PROCESS = rule(
    "LIFE003",
    "leaked-process",
    Severity.WARNING,
    "life",
    "Process created and stored with no kill/exit/terminate reachable from any teardown method.",
)
LIFE_LEAKED_SUBSCRIPTION = rule(
    "LIFE004",
    "leaked-subscription",
    Severity.WARNING,
    "life",
    "Callback subscription with no unsubscribe/detach reachable from any teardown method.",
)
LIFE_REARM_WITHOUT_CANCEL = rule(
    "LIFE005",
    "rearm-without-cancel",
    Severity.WARNING,
    "life",
    "Attr-held handle reassigned without cancelling the previous one (outside its own callback).",
)
LIFE_UNBOUNDED_GROWTH = rule(
    "LIFE006",
    "unbounded-growth",
    Severity.WARNING,
    "life",
    "Long-lived self container appended on a handler path with no prune/clear anywhere in the class.",
)

#: Default manifest shipped next to the pass.
DEFAULT_MANIFEST = os.path.join(os.path.dirname(__file__), "lifecycle.manifest")

#: kind -> (rule, style).  Handle-style resources are tracked by where
#: the returned handle is stored; registration-style resources by the
#: receiver chain the registration went through.
KINDS = {
    "timer": (LIFE_LEAKED_TIMER, "handle"),
    "watch": (LIFE_LEAKED_WATCH, "registration"),
    "process": (LIFE_LEAKED_PROCESS, "handle"),
    "subscription": (LIFE_LEAKED_SUBSCRIPTION, "registration"),
}

#: Teardown method names recognised without any manifest directive.
DEFAULT_TEARDOWNS = ("close", "delete", "shutdown", "stop")

#: Handler-method name prefixes recognised without a manifest directive.
DEFAULT_HANDLER_PREFIXES = ("on_", "_on_")

#: Container-mutating calls that count as growth for LIFE006 (same set
#: as the hotpath pass's growth model).
_GROWTH_CALLS = {"append", "extend", "insert", "appendleft"}

#: Container-mutating calls that count as a prune for LIFE006.
_PRUNE_CALLS = {"pop", "popleft", "clear", "remove", "discard"}


@dataclass(frozen=True)
class PairSpec:
    """One manifest ``pair`` line: an acquire→release contract."""

    kind: str  # key into KINDS
    owner: str  # declaring class, documentation + disambiguation
    acquire: str  # terminal call name that acquires
    qualifier: Optional[str]  # required trailing receiver attr (hook lists)
    releases: Tuple[str, ...]  # terminal call names that release


@dataclass(frozen=True)
class LifecycleSpec:
    """A parsed manifest: pairs plus naming conventions."""

    pairs: Tuple[PairSpec, ...]
    teardowns: Tuple[str, ...]
    handler_prefixes: Tuple[str, ...]


def load_manifest(path: str) -> LifecycleSpec:
    """Parse a lifecycle manifest; ``#`` comments and blank lines ignored.

    Grammar (one directive per line)::

        pair KIND OWNER.ACQUIRE -> RELEASE[, RELEASE...]
        pair KIND OWNER.ATTR.APPEND -> RELEASE[, ...]   # hook-list form
        teardown NAME[, NAME...]
        handler PREFIX[, PREFIX...]
    """
    pairs: List[PairSpec] = []
    teardowns: Set[str] = set(DEFAULT_TEARDOWNS)
    prefixes: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:  # oftt-lint: ok[ambient-io]
            lines = handle.readlines()
    except OSError as exc:
        raise AnalysisError(f"cannot read lifecycle manifest {path}: {exc}") from exc
    for lineno, raw in enumerate(lines, 1):
        text = raw.split("#", 1)[0].strip()
        if not text:
            continue
        directive, _, rest = text.partition(" ")
        rest = rest.strip()
        if directive == "pair":
            pairs.append(_parse_pair(path, lineno, rest))
        elif directive == "teardown":
            teardowns.update(_parse_names(path, lineno, rest))
        elif directive == "handler":
            prefixes.extend(_parse_names(path, lineno, rest))
        else:
            raise AnalysisError(
                f"{path}:{lineno}: unknown lifecycle directive {directive!r} "
                "(expected pair/teardown/handler)"
            )
    return LifecycleSpec(
        pairs=tuple(pairs),
        teardowns=tuple(sorted(teardowns)),
        handler_prefixes=tuple(prefixes) or DEFAULT_HANDLER_PREFIXES,
    )


def _parse_names(path: str, lineno: int, rest: str) -> List[str]:
    names = [token.strip() for token in rest.split(",") if token.strip()]
    if not names:
        raise AnalysisError(f"{path}:{lineno}: directive needs at least one name")
    return names


def _parse_pair(path: str, lineno: int, rest: str) -> PairSpec:
    head, arrow, tail = rest.partition("->")
    parts = head.split()
    if not arrow or len(parts) != 2:
        raise AnalysisError(
            f"{path}:{lineno}: bad pair spec {rest!r}; "
            "expected KIND OWNER.ACQUIRE -> RELEASE[, RELEASE...]"
        )
    kind, spec = parts
    if kind not in KINDS:
        raise AnalysisError(
            f"{path}:{lineno}: unknown resource kind {kind!r} (choose from {', '.join(sorted(KINDS))})"
        )
    components = spec.split(".")
    if len(components) < 2 or not all(components):
        raise AnalysisError(f"{path}:{lineno}: bad acquire spec {spec!r}; expected OWNER.ACQUIRE")
    releases = tuple(token.strip() for token in tail.split(",") if token.strip())
    if not releases:
        raise AnalysisError(f"{path}:{lineno}: pair {spec!r} declares no release")
    qualifier = components[-2] if len(components) >= 3 else None
    return PairSpec(
        kind=kind,
        owner=components[0],
        acquire=components[-1],
        qualifier=qualifier,
        releases=releases,
    )


# -- AST helpers -----------------------------------------------------------


def _parent_map(func: ast.FunctionDef) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for parent in ast.walk(func):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent
    return parents


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _chain_text(node: ast.AST) -> Optional[str]:
    """Dotted receiver text (``self.monitor``), None for computed chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _call_terminal(call: ast.Call) -> Optional[Tuple[str, Optional[str]]]:
    """(terminal name, receiver chain text) of a call, None if unnamed."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr, _chain_text(func.value)
    if isinstance(func, ast.Name):
        return func.id, None
    return None


def _match_pair(call: ast.Call, pairs: Sequence[PairSpec]) -> Optional[Tuple[PairSpec, Optional[str]]]:
    """First manifest pair this call acquires, with its receiver chain."""
    terminal = _call_terminal(call)
    if terminal is None:
        return None
    name, chain = terminal
    for pair in pairs:
        if name != pair.acquire:
            continue
        if pair.qualifier is not None:
            if chain is None or chain.split(".")[-1] != pair.qualifier:
                continue
        return pair, chain
    return None


def _enclosing_stmt(node: ast.AST, parents: Dict[int, ast.AST]) -> Optional[ast.stmt]:
    while id(node) in parents:
        node = parents[id(node)]
        if isinstance(node, ast.stmt):
            return node
    return None


def _callback_args(call: ast.Call) -> List[str]:
    """Names of ``self.<method>`` arguments (callback registrations)."""
    names: List[str] = []
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        attr = _self_attr(arg)
        if attr is not None:
            names.append(attr)
    return names


# -- per-function facts ----------------------------------------------------


@dataclass
class _FnFacts:
    """Release-relevant facts about one function body."""

    call_names: Set[str]  # terminal names of every named call
    call_chains: Dict[str, Set[str]]  # terminal name -> receiver chains seen
    attrs: Set[str]  # self.X referenced anywhere (any ctx)


def _fn_facts(node: ast.FunctionDef) -> _FnFacts:
    call_names: Set[str] = set()
    call_chains: Dict[str, Set[str]] = {}
    attrs: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute):
            attr = _self_attr(sub)
            if attr is not None:
                attrs.add(attr)
        if isinstance(sub, ast.Call):
            terminal = _call_terminal(sub)
            if terminal is not None:
                name, chain = terminal
                call_names.add(name)
                if chain is not None:
                    call_chains.setdefault(name, set()).add(chain)
    return _FnFacts(call_names, call_chains, attrs)


class _FactsCache:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self._facts: Dict[str, _FnFacts] = {}

    def facts(self, key: str) -> _FnFacts:
        cached = self._facts.get(key)
        if cached is None:
            cached = _fn_facts(self.graph.functions[key].node)
            self._facts[key] = cached
        return cached


def _reachable(graph: CallGraph, roots: Sequence[str], max_k: int) -> Dict[str, Tuple[str, ...]]:
    """BFS over call edges: key -> shortest route of keys from a root.

    Same budget and traversal discipline as the hotpath pass: the
    release search sees exactly as far as effect propagation does.
    """
    seen: Dict[str, Tuple[str, ...]] = {key: (key,) for key in roots}
    frontier = list(roots)
    for _ in range(max_k):
        if not frontier:
            break
        next_frontier: List[str] = []
        for key in frontier:
            route = seen[key]
            for edge in graph.callees(key):
                if edge.callee not in seen:
                    seen[edge.callee] = route + (edge.callee,)
                    next_frontier.append(edge.callee)
        frontier = next_frontier
    return seen


def _super_call_names(node: ast.FunctionDef) -> List[str]:
    """Method names invoked as ``super().name(...)`` in *node*."""
    names: List[str] = []
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and isinstance(sub.func.value, ast.Call)
            and isinstance(sub.func.value.func, ast.Name)
            and sub.func.value.func.id == "super"
        ):
            names.append(sub.func.attr)
    return names


def _resolve_base_method(
    graph: CallGraph, module: str, class_name: str, method: str
) -> Optional[str]:
    """Resolve *method* in the bases only (skipping an own override)."""
    for base in graph.bases.get((module, class_name), []):
        scopes = graph.classes.get(base, [])
        for _scope_module, scope_methods in sorted(scopes, key=lambda s: (s[0] != module, s[0])):
            if method in scope_methods:
                return scope_methods[method]
    return None


# -- per-class analysis ----------------------------------------------------


class _ClassContext:
    """Everything the lifecycle rules need about one analysed class."""

    def __init__(
        self,
        graph: CallGraph,
        facts: _FactsCache,
        spec: LifecycleSpec,
        module: str,
        class_name: str,
        method_keys: List[str],
        max_k: int,
    ) -> None:
        self.graph = graph
        self.facts = facts
        self.spec = spec
        self.module = module
        self.class_name = class_name
        self.method_keys = method_keys  # own methods, source order
        self.max_k = max_k
        #: Teardown methods (own or one level of bases), name -> key.
        self.teardowns: Dict[str, str] = {}
        #: Base-class methods entered via ``super().name()`` from a
        #: teardown override — the call graph cannot resolve super(), so
        #: the chained base teardown is added as an explicit root.
        self._super_roots: List[str] = []
        for name in spec.teardowns:
            key = graph.resolve_method(module, class_name, name)
            if key is not None:
                self.teardowns[name] = key
                for super_name in _super_call_names(graph.functions[key].node):
                    base_key = _resolve_base_method(graph, module, class_name, super_name)
                    if base_key is not None:
                        self._super_roots.append(base_key)
        self._teardown_reach: Optional[Dict[str, Tuple[str, ...]]] = None

    @property
    def teardown_reach(self) -> Dict[str, Tuple[str, ...]]:
        if self._teardown_reach is None:
            roots = [self.teardowns[name] for name in sorted(self.teardowns)]
            roots.extend(key for key in sorted(self._super_roots) if key not in roots)
            self._teardown_reach = _reachable(self.graph, roots, self.max_k)
        return self._teardown_reach

    def scan_summary(self) -> str:
        """How the release search was scoped, for finding messages."""
        if not self.teardowns:
            return (
                f"class {self.class_name} has no teardown method "
                f"({'/'.join(self.spec.teardowns)})"
            )
        names = ", ".join(sorted(self.teardowns))
        return f"searched teardown {names} and callees within k={self.max_k}"

    def _release_route(self, matches) -> Optional[Tuple[str, ...]]:
        for key in sorted(self.teardown_reach):
            if matches(self.facts.facts(key)):
                return self.teardown_reach[key]
        return None

    def stored_release_route(self, pair: PairSpec, attr: str) -> Optional[Tuple[str, ...]]:
        """Route to a reachable function releasing a stored handle.

        A function releases ``self.attr`` when it both calls one of the
        pair's release methods and references the attribute — covering
        ``self.kernel.cancel(self._timer)`` as well as
        ``self.watchdogs[name].delete()`` shapes.
        """

        def matches(facts: _FnFacts) -> bool:
            return attr in facts.attrs and any(name in facts.call_names for name in pair.releases)

        return self._release_route(matches)

    def registration_release_route(
        self, pair: PairSpec, chain: Optional[str]
    ) -> Optional[Tuple[str, ...]]:
        """Route to a reachable de-registration call.

        When the acquire went through a ``self.``-rooted chain, a
        release on a different ``self.``-rooted chain does not count
        (``self.monitor.watch`` is not balanced by ``self.queue.unsubscribe``);
        computed or non-self receivers match by release name alone.
        """
        self_rooted = chain is not None and chain.startswith("self.")

        def matches(facts: _FnFacts) -> bool:
            for name in pair.releases:
                if name not in facts.call_names:
                    continue
                chains = facts.call_chains.get(name, set())
                if not self_rooted:
                    return True
                if not chains:
                    return True  # computed receiver; accept by name
                if chain in chains or any(not c.startswith("self.") for c in chains):
                    return True
            return False

        return self._release_route(matches)

    def route_str(self, route: Tuple[str, ...]) -> str:
        return " -> ".join(self.graph.functions[key].short_name for key in route)


def _handler_keys(ctx: _ClassContext) -> Dict[str, str]:
    """Handler methods and their k-bounded callees: key -> why it is one."""
    roots: Dict[str, str] = {}
    registered: Set[str] = set()
    for key in ctx.method_keys:
        info = ctx.graph.functions[key]
        if info.short_name.startswith(tuple(ctx.spec.handler_prefixes)):
            roots[key] = f"handler {info.short_name}()"
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) and _match_pair(node, ctx.spec.pairs) is not None:
                registered.update(_callback_args(node))
    for key in ctx.method_keys:
        info = ctx.graph.functions[key]
        if key not in roots and info.short_name in registered:
            roots[key] = f"callback {info.short_name}() registered in {ctx.class_name}"
    reach = _reachable(ctx.graph, sorted(roots), ctx.max_k)
    out: Dict[str, str] = {}
    for key, route in reach.items():
        if key in roots:
            out[key] = roots[key]
        elif key in ctx.method_keys:
            out[key] = f"{roots[route[0]]} via {ctx.route_str(route)}"
    return out


def _pruned_attrs(ctx: _ClassContext) -> Set[str]:
    """self attributes pruned anywhere in the class (own + one-level bases)."""
    pruned: Set[str] = set()
    keys = list(ctx.method_keys)
    for base in ctx.graph.bases.get((ctx.module, ctx.class_name), []):
        for _module, methods in ctx.graph.classes.get(base, []):
            keys.extend(methods.values())
    for key in keys:
        info = ctx.graph.functions.get(key)
        if info is None:
            continue
        in_init = info.short_name == "__init__"
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _PRUNE_CALLS:
                    attr = _self_attr(node.func.value)
                    if attr is not None:
                        pruned.add(attr)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if node.value is not None and _is_bounded_deque(node.value):
                    # A maxlen-bounded deque prunes itself on append.
                    for target in targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            pruned.add(attr)
                if in_init:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        pruned.add(attr)  # rebinding resets the container
                    elif isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                        if attr is not None:
                            pruned.add(attr)  # includes self.x[:] = ... trims
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                        if attr is not None:
                            pruned.add(attr)
    return pruned


def _is_bounded_deque(value: ast.AST) -> bool:
    """``deque(..., maxlen=N)`` with a non-None bound."""
    if not isinstance(value, ast.Call):
        return False
    terminal = _call_terminal(value)
    if terminal is None or terminal[0] != "deque":
        return False
    for keyword in value.keywords:
        if keyword.arg == "maxlen":
            return not (
                isinstance(keyword.value, ast.Constant) and keyword.value.value is None
            )
    return False


def _stored_attr(
    call: ast.Call, method: ast.FunctionDef, parents: Dict[int, ast.AST]
) -> Optional[Tuple[str, bool]]:
    """(attr, direct) when the call's result lands on ``self``.

    Direct means ``self.attr = acquire(...)`` (the shape LIFE005
    inspects); indirect covers subscript stores and stores through a
    local (``timer = acquire(...); self._pending[k] = (done, timer)``).
    """
    stmt = _enclosing_stmt(call, parents)
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1 or stmt.value is not call:
        return None
    target = stmt.targets[0]
    attr = _self_attr(target)
    if attr is not None:
        return attr, True
    if isinstance(target, ast.Subscript):
        attr = _self_attr(target.value)
        if attr is not None:
            return attr, False
    if isinstance(target, ast.Name):
        local = target.id
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                if not any(
                    isinstance(sub, ast.Name) and sub.id == local
                    for sub in ast.walk(node.value)
                ):
                    continue
                for tgt in node.targets:
                    attr = _self_attr(tgt)
                    if attr is None and isinstance(tgt, ast.Subscript):
                        attr = _self_attr(tgt.value)
                    if attr is not None:
                        return attr, False
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _GROWTH_CALLS
                and any(isinstance(a, ast.Name) and a.id == local for a in node.args)
            ):
                attr = _self_attr(node.func.value)
                if attr is not None:
                    return attr, False
    return None


# -- rule evaluation -------------------------------------------------------


def _check_class(ctx: _ClassContext, findings: List[Finding]) -> None:
    _check_acquires(ctx, findings)
    _check_growth(ctx, findings)


def _check_acquires(ctx: _ClassContext, findings: List[Finding]) -> None:
    for key in ctx.method_keys:
        info = ctx.graph.functions[key]
        method_name = info.short_name
        if method_name in ctx.spec.teardowns:
            continue  # a teardown re-acquiring is the restart path, not a leak
        parents = _parent_map(info.node)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            match = _match_pair(node, ctx.spec.pairs)
            if match is None:
                continue
            pair, chain = match
            which, style = KINDS[pair.kind]
            if style == "handle":
                _check_handle_acquire(
                    ctx, findings, info, method_name, node, parents, pair, which
                )
            else:
                _check_registration_acquire(ctx, findings, info, node, pair, which, chain)


def _check_handle_acquire(ctx, findings, info, method_name, call, parents, pair, which) -> None:
    stored = _stored_attr(call, info.node, parents)
    releases = "/".join(pair.releases)
    if stored is None:
        # Discarded handle: only a self-rescheduling loop is reported —
        # a discarded one-shot is assumed self-limiting (ANALYSIS.md).
        if method_name in _callback_args(call):
            findings.append(
                Finding(
                    which,
                    info.path,
                    call.lineno,
                    call.col_offset,
                    f"self-rescheduling {pair.acquire}() loop in {method_name}() discards "
                    f"its handle; store it on self and {releases} it from a teardown "
                    f"method ({ctx.scan_summary()})",
                )
            )
        return
    attr, direct = stored
    leaked = False
    if ctx.teardowns and ctx.stored_release_route(pair, attr) is not None:
        pass  # balanced on a teardown path
    else:
        leaked = True
        findings.append(
            Finding(
                which,
                info.path,
                call.lineno,
                call.col_offset,
                f"self.{attr} holds a {pair.kind} handle from {pair.acquire}() with no "
                f"{releases} referencing it reachable from a teardown method "
                f"({ctx.scan_summary()})",
            )
        )
    if direct and not leaked and pair.kind == "timer":
        # Re-arm discipline is a timer concept: overwriting a process
        # handle models relaunch-after-death, not a dropped resource.
        _check_rearm(ctx, findings, info, method_name, call, pair, attr)


def _check_rearm(ctx, findings, info, method_name, call, pair, attr) -> None:
    """LIFE005 on ``self.attr = acquire(...)`` outside the handle's callback."""
    if method_name == "__init__":
        return  # first arming; nothing to cancel yet
    if method_name in _callback_args(call):
        return  # re-arm from inside the expired handle's own callback
    reach = _reachable(ctx.graph, [info.key], ctx.max_k)
    for key in sorted(reach):
        facts = ctx.facts.facts(key)
        if attr in facts.attrs and any(name in facts.call_names for name in pair.releases):
            return
    releases = "/".join(pair.releases)
    findings.append(
        Finding(
            LIFE_REARM_WITHOUT_CANCEL,
            info.path,
            call.lineno,
            call.col_offset,
            f"{method_name}() reassigns self.{attr} from {pair.acquire}() without "
            f"{releases} of the previous handle (none referencing self.{attr} in "
            f"{method_name}() or its callees within k={ctx.max_k})",
        )
    )


def _check_registration_acquire(ctx, findings, info, call, pair, which, chain) -> None:
    if ctx.teardowns and ctx.registration_release_route(pair, chain) is not None:
        return
    receiver = f"{chain}.{pair.acquire}" if chain else f"{pair.acquire}"
    releases = "/".join(pair.releases)
    findings.append(
        Finding(
            which,
            info.path,
            call.lineno,
            call.col_offset,
            f"{receiver}() registration has no {releases} reachable from a teardown "
            f"method ({ctx.scan_summary()})",
        )
    )


def _check_growth(ctx: _ClassContext, findings: List[Finding]) -> None:
    handlers = _handler_keys(ctx)
    if not handlers:
        return
    pruned = _pruned_attrs(ctx)
    for key in ctx.method_keys:
        if key not in handlers:
            continue
        info = ctx.graph.functions[key]
        for node in ast.walk(info.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _GROWTH_CALLS
            ):
                continue
            attr = _self_attr(node.func.value)
            if attr is None or attr in pruned:
                continue
            findings.append(
                Finding(
                    LIFE_UNBOUNDED_GROWTH,
                    info.path,
                    node.lineno,
                    node.col_offset,
                    f"self.{attr} grows on a handler path ({handlers[key]}) with no "
                    f"prune/clear/reassignment anywhere in {ctx.class_name}",
                )
            )


# -- orchestration ---------------------------------------------------------


def _class_method_keys(graph: CallGraph) -> Dict[Tuple[str, str, str], List[str]]:
    """(path, module, class) -> own method keys in source order."""
    grouped: Dict[Tuple[str, str, str], List[str]] = {}
    for key in sorted(graph.functions):
        info = graph.functions[key]
        if info.class_name is None:
            continue
        grouped.setdefault((info.path, info.module, info.class_name), []).append(key)
    for keys in grouped.values():
        keys.sort(key=lambda k: graph.functions[k].node.lineno)
    return grouped


def run_with_spec(
    files: Sequence[SourceFile],
    spec: LifecycleSpec,
    max_k: int = DEFAULT_MAX_K,
) -> List[Finding]:
    """Manifest-free entry point (tests pass a LifecycleSpec directly)."""
    graph = build_call_graph(files)
    facts = _FactsCache(graph)
    findings: List[Finding] = []
    grouped = _class_method_keys(graph)
    for path, module, class_name in sorted(grouped):
        ctx = _ClassContext(
            graph, facts, spec, module, class_name, grouped[(path, module, class_name)], max_k
        )
        _check_class(ctx, findings)
    return findings


def run_with_manifest(
    files: Sequence[SourceFile],
    manifest_path: Optional[str] = None,
    max_k: int = DEFAULT_MAX_K,
) -> List[Finding]:
    """Run LIFE001-006 under the given manifest (default: the shipped one)."""
    spec = load_manifest(manifest_path or DEFAULT_MANIFEST)
    return run_with_spec(files, spec, max_k)


def run(files: Sequence[SourceFile]) -> List[Finding]:
    """Pass entry point with the shipped manifest and default budget."""
    return run_with_manifest(files, None, DEFAULT_MAX_K)


def make_pass(max_k: int, manifest_path: Optional[str] = None):
    """A Pass closure with a configured budget and manifest (``--life-manifest``)."""

    def lifecycle_pass(files: Sequence[SourceFile]) -> List[Finding]:
        return run_with_manifest(files, manifest_path, max_k)

    return lifecycle_pass
