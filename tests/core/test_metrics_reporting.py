"""Unit tests for the metrics helpers and report formatting."""

import math

import pytest

from repro.harness.reporting import format_dict, format_series, format_table
from repro.metrics import (
    AvailabilitySampler,
    FailoverTiming,
    failover_timing,
    histogram_distance,
    summarize,
)
from repro.simnet.kernel import SimKernel
from repro.simnet.trace import TraceLog


# -- summarize ------------------------------------------------------------------


def test_summarize_basic_statistics():
    stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    assert stats["n"] == 5
    assert stats["min"] == 1.0
    assert stats["max"] == 5.0
    assert stats["mean"] == 3.0
    assert stats["p50"] == 3.0


def test_summarize_empty_is_nan():
    stats = summarize([])
    assert stats["n"] == 0
    assert math.isnan(stats["mean"])


def test_summarize_p95_near_tail():
    values = list(range(100))
    stats = summarize([float(v) for v in values])
    assert 90 <= stats["p95"] <= 99


# -- histogram distance ------------------------------------------------------------


def test_histogram_distance_zero_for_equal():
    assert histogram_distance({0: 3, 1: 5}, {1: 5, 0: 3}) == 0


def test_histogram_distance_counts_differences():
    assert histogram_distance({0: 3, 1: 5}, {0: 1, 2: 4}) == 2 + 5 + 4


# -- failover timing -----------------------------------------------------------------


def test_failover_timing_extraction():
    kernel = SimKernel()
    trace = TraceLog(clock=lambda: kernel.now)
    kernel.schedule(100.0, trace.emit, "engine", "beta", "peer-lost")
    kernel.schedule(120.0, trace.emit, "engine", "beta", "takeover")
    kernel.run()
    timing = failover_timing(trace, fault_at=50.0, promoting_node="beta")
    assert timing.detection_latency == 50.0
    assert timing.failover_latency == 70.0


def test_failover_timing_missing_events():
    trace = TraceLog()
    timing = failover_timing(trace, fault_at=0.0, promoting_node="x")
    assert timing.detection_latency is None
    assert timing.failover_latency is None


# -- availability sampler ---------------------------------------------------------------


def test_availability_fraction_and_windows():
    sampler = AvailabilitySampler()
    for time, up in [(0, True), (1, True), (2, False), (3, False), (4, True), (5, True)]:
        sampler.sample(float(time), up)
    assert sampler.availability == pytest.approx(4 / 6)
    assert sampler.downtime_windows() == [(2.0, 4.0)]
    assert sampler.total_downtime == 2.0


def test_availability_open_ended_downtime():
    sampler = AvailabilitySampler()
    sampler.sample(0.0, True)
    sampler.sample(1.0, False)
    sampler.sample(2.0, False)
    assert sampler.downtime_windows() == [(1.0, 2.0)]


def test_availability_empty_defaults_up():
    assert AvailabilitySampler().availability == 1.0


# -- reporting --------------------------------------------------------------------------


def test_format_table_aligns_and_includes_rows():
    text = format_table(["name", "value"], [["alpha", 1], ["b", 123456]], title="T")
    lines = text.splitlines()
    assert lines[0] == "== T =="
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in text and "123456" in text


def test_format_table_empty_rows():
    text = format_table(["a", "b"], [])
    assert "a" in text and "b" in text


def test_format_series_and_dict():
    assert format_series("lat", [1.0, 2.5], unit="ms") == "lat: [1.00, 2.50] ms"
    block = format_dict("B", {"key": 1, "longer_key": "v"})
    assert "== B ==" in block and "longer_key" in block


def test_format_handles_nan_and_large_floats():
    text = format_table(["x"], [[float("nan")], [123456.789]])
    assert "nan" in text
    assert "123457" in text


# -- run_experiments CLI -------------------------------------------------------------------


def test_run_experiments_rejects_unknown_ids(capsys):
    from repro.harness.run_experiments import main

    assert main(["NOPE"]) == 2
    assert "unknown experiment ids" in capsys.readouterr().out


def test_run_experiments_single_id(capsys):
    from repro.harness.run_experiments import main

    assert main(["X5"]) == 0
    out = capsys.readouterr().out
    assert "X5" in out and "local-restart" in out


def test_run_experiments_replay_check_passes_for_deterministic_experiment(capsys):
    from repro.harness.run_experiments import main

    assert main(["--replay-check", "X5"]) == 0
    out = capsys.readouterr().out
    assert "[ok] X5: two runs agree" in out
    assert "1 experiment(s): 1 ok, 0 diverged" in out


def test_run_experiments_replay_check_flags_divergence(capsys, monkeypatch):
    import itertools

    from repro.harness import run_experiments

    rows = itertools.cycle([[{"n": 1}], [{"n": 2}]])
    monkeypatch.setitem(
        run_experiments.EXPERIMENTS, "SCRATCH", ("scratch", lambda: next(rows))
    )
    assert run_experiments.main(["--replay-check", "SCRATCH"]) == 1
    out = capsys.readouterr().out
    assert "[DIVERGED] SCRATCH" in out
