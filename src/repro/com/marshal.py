"""Marshaling for ORPC calls.

Values crossing the wire are deep-copied (no shared state between nodes)
and restricted to plain data: primitives, strings, bytes, lists, tuples,
dicts, and :class:`ObjRef` — the marshaled form of an interface pointer.

Generating "the DCOM server object proxy and stub" is called out in §3.3
as a source of development friction and bugs; here the proxy/stub pair is
generated automatically from the interface declaration, and the marshaler
enforces the same what-can-cross-the-wire discipline MIDL would.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Tuple

from repro.com.guids import GUID
from repro.com.hresult import E_FAIL
from repro.errors import ComError


@dataclass(frozen=True)
class ObjRef:
    """A marshaled interface pointer: where the object lives and its id."""

    node: str
    oid: int
    iids: Tuple[GUID, ...]
    label: str = ""

    def supports(self, iid: GUID) -> bool:
        """Whether the exported object claimed *iid* at export time."""
        return iid in self.iids

    def __str__(self) -> str:
        return f"objref:{self.node}/{self.oid}({self.label})"


_SCALARS = (int, float, bool, str, bytes, type(None))


def _check(value: Any, depth: int = 0) -> None:
    if depth > 32:
        raise ComError(E_FAIL, "marshal: structure too deep")
    if isinstance(value, _SCALARS) or isinstance(value, (ObjRef, GUID)):
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            _check(item, depth + 1)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, (str, int)):
                raise ComError(E_FAIL, f"marshal: unsupported dict key type {type(key).__name__}")
            _check(item, depth + 1)
        return
    raise ComError(E_FAIL, f"marshal: unsupported type {type(value).__name__}")


def marshal_value(value: Any) -> Any:
    """Validate and deep-copy *value* for transmission."""
    _check(value)
    return copy.deepcopy(value)


def unmarshal_value(value: Any) -> Any:
    """Deep-copy *value* on receipt (symmetric with :func:`marshal_value`)."""
    return copy.deepcopy(value)


def estimate_wire_size(value: Any) -> int:
    """Approximate encoded size, used for network serialisation delay."""
    if value is None or isinstance(value, bool):
        return 4
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return 4 + len(value)
    if isinstance(value, bytes):
        return 4 + len(value)
    if isinstance(value, (GUID, ObjRef)):
        return 32
    if isinstance(value, (list, tuple)):
        return 8 + sum(estimate_wire_size(item) for item in value)
    if isinstance(value, dict):
        return 8 + sum(estimate_wire_size(k) + estimate_wire_size(v) for k, v in value.items())
    return 64
