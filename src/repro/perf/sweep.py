"""Detector-sensitivity sweep: miss threshold x timeout over chaos schedules.

The §2.2.1 failure detector has two knobs the paper leaves to the
deployer: the heartbeat timeout and (our extension) the consecutive-miss
threshold before a silence is declared a failure.  This sweep runs the
same set of seeded chaos schedules under every grid point and tabulates
the classic trade-off:

* **detection latency** — for every schedule fault the heartbeat path
  must detect (hangs, node/middleware deaths), the delay from injection
  to the first ``heartbeat-timeout`` / ``peer-lost`` trace event;
* **false positives** — detection events fired with *no* process- or
  node-killing fault active: the detector being fooled by network
  disturbance (partitions, gray nodes, corruption) or by nothing at all;
* **invariant violations** — the safety cost, from the standard chaos
  monitor suite, of desensitising the detector too far.

A detection event is *attributed* to a destructive fault when it lands in
``[at, at + timeout * miss_threshold + ATTRIBUTION_GRACE]``; anything
unattributed counts as a false positive.  The same ``(seed, schedule)``
set is evaluated at every grid point so columns are comparable, and each
``(point, seed, schedule)`` task is a pure function of its arguments —
the sweep fans out over :func:`repro.perf.executor.parallel_map` and
merges into a byte-stable table.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.chaos.cli import campaign_tasks
from repro.chaos.runner import ChaosRun
from repro.chaos.schedule import ChaosSchedule, FaultEntry
from repro.core.config import REPLICATION_STRATEGIES, OfttConfig, replace_config
from repro.core.roles import Role
from repro.faults.injector import FaultInjector
from repro.harness.scenario import ChaosScenario
from repro.perf.executor import parallel_map
from repro.perf.grid import grid_points

#: Grid swept by the CLI / EXPERIMENTS.md table.
DEFAULT_THRESHOLDS = [1, 2, 3]
DEFAULT_TIMEOUTS = [300.0, 500.0, 1_000.0]

#: Faults that must be caught (by heartbeat silence or peer loss).
DESTRUCTIVE_KINDS = frozenset({
    "app-crash", "app-hang", "middleware-crash",
    "node-failure", "bluescreen", "crash-during-checkpoint",
})
#: The subset only the heartbeat path can detect (no exit hook fires),
#: i.e. the faults whose latency actually measures the detector.
HEARTBEAT_ONLY_KINDS = frozenset({
    "app-hang", "node-failure", "bluescreen",
    "middleware-crash", "crash-during-checkpoint",
})
#: Slack added to the attribution window beyond the detector's own
#: worst-case (timeout x miss threshold): scheduling and repair jitter.
ATTRIBUTION_GRACE = 5_000.0

#: One sweep task: (grid point, seed, schedule).
SweepTask = Tuple[Dict[str, Any], int, ChaosSchedule]


def _config_for(point: Dict[str, Any]) -> OfttConfig:
    """The OfttConfig a grid point describes.

    The component and peer detectors share the swept timeout so one knob
    moves the whole detection surface; the heartbeat send period stays at
    its default (the timeout must exceed it — enforced by validate()).
    """
    return replace_config(
        OfttConfig(),
        heartbeat_timeout=float(point["heartbeat_timeout"]),
        peer_heartbeat_timeout=float(point["heartbeat_timeout"]),
        heartbeat_miss_threshold=int(point["heartbeat_miss_threshold"]),
    )


def evaluate_sweep_task(task: SweepTask) -> Dict[str, Any]:
    """Executor entry point: one schedule under one detector setting.

    Runs the schedule with the full chaos monitor suite and extracts the
    detection record from the trace *inside the worker*, so only a small
    stats dict crosses the process boundary.
    """
    point, seed, schedule = task
    run = ChaosRun(seed=seed, schedule=schedule, config=_config_for(point))
    result = run.execute()
    trace = run.scenario.trace
    detections = sorted(
        trace.select(category="engine", event="heartbeat-timeout")
        + trace.select(category="engine", event="peer-lost"),
        key=lambda record: record.time,
    )
    window = float(point["heartbeat_timeout"]) * int(point["heartbeat_miss_threshold"]) + ATTRIBUTION_GRACE

    destructive = [e for e in schedule.sorted_entries() if e.kind in DESTRUCTIVE_KINDS]
    latencies: List[float] = []
    missed = 0
    for entry in destructive:
        if entry.kind not in HEARTBEAT_ONLY_KINDS:
            continue
        hit = next((r for r in detections if entry.at <= r.time <= entry.at + window), None)
        if hit is None:
            missed += 1
        else:
            latencies.append(round(hit.time - entry.at, 3))
    false_positives = sum(
        1
        for record in detections
        if not any(e.at <= record.time <= e.at + window for e in destructive)
    )
    return {
        "faults": sum(1 for e in destructive if e.kind in HEARTBEAT_ONLY_KINDS),
        "latencies": latencies,
        "missed": missed,
        "false_positives": false_positives,
        "violations": len(result.violations),
        "passed": result.passed,
    }


def sweep_detectors(
    thresholds: List[int] = None,
    timeouts: List[float] = None,
    seeds: int = 4,
    schedules: int = 3,
    seed_base: int = 0,
    jobs: int = 1,
) -> List[Dict[str, Any]]:
    """Run the sweep; one aggregated row per grid point, canonical order."""
    points = grid_points({
        "heartbeat_miss_threshold": thresholds or DEFAULT_THRESHOLDS,
        "heartbeat_timeout": timeouts or DEFAULT_TIMEOUTS,
    })
    runs = [(seed, schedule) for seed, schedule, _ in campaign_tasks(seeds, schedules, seed_base)]
    tasks: List[SweepTask] = [(point, seed, schedule) for point in points for seed, schedule in runs]
    outcomes = parallel_map(evaluate_sweep_task, tasks, jobs=jobs)

    rows: List[Dict[str, Any]] = []
    per_point = len(runs)
    for index, point in enumerate(points):
        chunk = outcomes[index * per_point:(index + 1) * per_point]
        latencies = sorted(latency for outcome in chunk for latency in outcome["latencies"])
        detected = len(latencies)
        rows.append({
            "miss_threshold": point["heartbeat_miss_threshold"],
            "timeout_ms": point["heartbeat_timeout"],
            "runs": per_point,
            "faults": sum(outcome["faults"] for outcome in chunk),
            "detected": detected,
            "missed": sum(outcome["missed"] for outcome in chunk),
            "mean_latency_ms": round(sum(latencies) / detected, 1) if detected else None,
            "max_latency_ms": round(latencies[-1], 1) if detected else None,
            "false_positives": sum(outcome["false_positives"] for outcome in chunk),
            "violations": sum(outcome["violations"] for outcome in chunk),
        })
    return rows


#: Strategy-comparison sweep: the same two fault stories under every
#: replication strategy.  ``primary-crash`` is the paper's bread and
#: butter (one node dies, the pair recovers); ``total-pair-loss`` kills
#: both pair nodes 50ms apart — the failure the paper's pair cannot
#: survive and the log-replay DR site exists for.
STRATEGY_SCENARIOS: List[Tuple[str, List[FaultEntry]]] = [
    ("primary-crash", [FaultEntry(10_000.0, "node-failure", {"node": "alpha"})]),
    ("total-pair-loss", [
        FaultEntry(12_000.0, "node-failure", {"node": "alpha"}),
        FaultEntry(12_050.0, "node-failure", {"node": "beta"}),
    ]),
]
#: Horizon / workload cutoff for strategy-sweep runs.  The workload
#: stops well before the horizon so DR activation (5s silence) and any
#: queue drain complete inside the run.
STRATEGY_HORIZON = 30_000.0
STRATEGY_WORKLOAD_STOP = 20_000.0

#: One strategy-sweep task: (strategy, scenario name, faults, seed).
StrategyTask = Tuple[str, str, List[FaultEntry], int]


def evaluate_strategy_task(task: StrategyTask) -> Dict[str, Any]:
    """Executor entry point: one fault story under one strategy.

    A message-driven chaos testbed (100ms workload, 2s full-checkpoint
    period — the cold-passive gap the other strategies attack) plays the
    fault entries, then reports who recovered, how fast, and how many
    workload messages the surviving state is missing.
    """
    strategy, _scenario_name, entries, seed = task
    scenario = ChaosScenario(
        seed=seed,
        config=replace_config(OfttConfig(), replication_strategy=strategy),
        workload_period=100.0,
        checkpoint_period=2_000.0,
        message_driven=True,
    )
    injector = FaultInjector(scenario.kernel, scenario, trace=scenario.trace)
    for entry in entries:
        injector.inject_at(entry.at, entry.build())
    scenario.start(settle=True)
    scenario.kernel.schedule(
        max(STRATEGY_WORKLOAD_STOP - scenario.kernel.now, 0.0), scenario.stop_workload
    )
    scenario.run(until=STRATEGY_HORIZON)

    fault_at = max(entry.at for entry in entries)
    pair = scenario.pair
    primary = next(
        (
            name
            for name in pair.node_names
            if pair.engines[name].alive and pair.engines[name].role is Role.PRIMARY
        ),
        None,
    )
    recovered_by = "none"
    applied = 0
    replayed = 0
    if primary is not None and pair.apps[primary].applied() > 0:
        recovered_by = "pair"
        applied = pair.apps[primary].applied()
    elif scenario.dr_site is not None and scenario.dr_site.active:
        recovered_by = "dr"
        # Re-reconstruct at the horizon: mirror records that arrived
        # after activation (clients keep logging) count too.
        image, replayed = scenario.dr_site.reconstruct()
        applied = image.get("globals", {}).get("applied", 0)
    recoveries = sorted(
        scenario.trace.select(category="engine", event="takeover")
        + scenario.trace.select(category="drsite", event="dr-activated"),
        key=lambda record: record.time,
    )
    hit = next((r for r in recoveries if r.time >= fault_at), None)
    return {
        "recovered_by": recovered_by,
        "recovery_ms": round(hit.time - fault_at, 1) if hit is not None else None,
        "sent": scenario.workload_sent,
        "applied": applied,
        "lost": scenario.workload_sent - applied,
        "replayed": replayed,
    }


def sweep_strategies(seeds: int = 3, seed_base: int = 0, jobs: int = 1) -> List[Dict[str, Any]]:
    """Strategy x fault-story comparison; one aggregated row each."""
    tasks: List[StrategyTask] = [
        (strategy, name, entries, seed)
        for strategy in REPLICATION_STRATEGIES
        for name, entries in STRATEGY_SCENARIOS
        for seed in range(seed_base, seed_base + seeds)
    ]
    outcomes = parallel_map(evaluate_strategy_task, tasks, jobs=jobs)

    rows: List[Dict[str, Any]] = []
    for index in range(0, len(tasks), seeds):
        strategy, name, _entries, _seed = tasks[index]
        chunk = outcomes[index:index + seeds]
        latencies = sorted(o["recovery_ms"] for o in chunk if o["recovery_ms"] is not None)
        recovered = sorted({o["recovered_by"] for o in chunk})
        rows.append({
            "strategy": strategy,
            "scenario": name,
            "runs": len(chunk),
            "recovered_by": "/".join(recovered),
            "mean_recovery_ms": round(sum(latencies) / len(latencies), 1) if latencies else None,
            "sent": sum(o["sent"] for o in chunk),
            "applied": sum(o["applied"] for o in chunk),
            "lost": sum(o["lost"] for o in chunk),
            "replayed": sum(o["replayed"] for o in chunk),
        })
    return rows


# -- adaptive-vs-static policy sweep ------------------------------------------------
#
# The same drifting fault-mix schedules under every recovery policy.
# Metrics are placement-fair by construction (every drift motif hits
# both pair nodes) and attribution-free where possible:
#
# * **recovery latency** — total sampled time the pair is not in its
#   steady state (one live primary, all apps running; a dual primary
#   counts as unstable) divided by the number of destructive schedule
#   entries: mean unavailability bought per fault.  Summing samples
#   instead of matching events to faults means a policy cannot look
#   good by recovering "somewhere else" while the unit is still down.
# * **spurious failovers** — *unilateral* promotions (trace reason
#   "peer heartbeat loss" / "dual-backup resolution") with no
#   destructive entry within the attribution window before them.
#   Coordinated switchovers ("takeover request: ...") are deliberate,
#   availability-preserving handoffs and are never counted.

#: name -> OfttConfig overrides.  Six policies: the paper's default
#: static rule, three detector tunings of it, the two degenerate rules,
#: and the adaptive layer with everything at defaults.
POLICY_CONFIGS: List[Tuple[str, Dict[str, Any]]] = [
    ("static-default", {}),
    ("static-fast", {"heartbeat_timeout": 300.0, "peer_heartbeat_timeout": 300.0}),
    ("static-safe", {"heartbeat_miss_threshold": 3}),
    ("static-local-only", {"default_rule": None}),  # filled by _policy_config
    ("static-always-failover", {"default_rule": None}),
    ("adaptive", {"adaptive_policy": True}),
]
POLICY_NAMES = [name for name, _ in POLICY_CONFIGS]

#: Stability sample period (ms) for the unavailability integral.
POLICY_SAMPLE_PERIOD = 25.0
#: A unilateral promotion within this window after a destructive entry
#: is attributed to it; later ones are spurious.
POLICY_FP_WINDOW = 2_500.0

#: One policy-sweep task: (policy name, drift profile, seed).
PolicyTask = Tuple[str, str, int]


def _policy_config(name: str) -> OfttConfig:
    """The OfttConfig for one named policy."""
    from repro.core.config import RecoveryRule

    if name == "static-local-only":
        return replace_config(OfttConfig(), default_rule=RecoveryRule.local_only())
    if name == "static-always-failover":
        return replace_config(OfttConfig(), default_rule=RecoveryRule.always_failover())
    overrides = dict(next(o for n, o in POLICY_CONFIGS if n == name))
    return replace_config(OfttConfig(), **overrides) if overrides else OfttConfig()


def evaluate_policy_task(task: PolicyTask) -> Dict[str, Any]:
    """Executor entry point: one drift profile under one policy."""
    from repro.chaos.schedule import DRIFT_DESTRUCTIVE_KINDS, drift_schedule
    from repro.errors import OfttError

    policy, profile, seed = task
    scenario = ChaosScenario(seed=seed, config=_policy_config(policy))
    schedule = drift_schedule(profile, list(scenario.PAIR_NODES), scenario.APP_NAME)
    injector = FaultInjector(scenario.kernel, scenario, trace=scenario.trace)
    for entry in schedule.sorted_entries():
        injector.inject_at(entry.at, entry.build())
    scenario.start(settle=True)

    unstable = {"ms": 0.0}

    def stable_now() -> bool:
        try:
            return scenario.pair.is_stable()
        except OfttError:  # dual primary
            return False

    def sample() -> None:
        if scenario.kernel.now >= schedule.horizon:
            return
        if not stable_now():
            unstable["ms"] += POLICY_SAMPLE_PERIOD
        scenario.kernel.schedule(POLICY_SAMPLE_PERIOD, sample)

    scenario.kernel.schedule(POLICY_SAMPLE_PERIOD, sample)
    scenario.run(until=schedule.horizon)

    destructive = [e for e in schedule.sorted_entries() if e.kind in DRIFT_DESTRUCTIVE_KINDS]
    unilateral = [
        record
        for record in scenario.trace.select(category="engine", event="takeover")
        if record.detail.get("reason") in ("peer heartbeat loss", "dual-backup resolution")
    ]
    spurious = sum(
        1
        for record in unilateral
        if not any(e.at <= record.time <= e.at + POLICY_FP_WINDOW for e in destructive)
    )
    switches = sum(
        engine.strategy_switch_count
        for engine in scenario.pair.engines.values()
        if engine.alive
    )
    return {
        "unstable_ms": round(unstable["ms"], 1),
        "destructive": len(destructive),
        "unilateral": len(unilateral),
        "spurious": spurious,
        "switches": switches,
    }


def sweep_policies(
    profiles: List[str] = None,
    seeds: int = 3,
    seed_base: int = 0,
    jobs: int = 1,
) -> List[Dict[str, Any]]:
    """Policy x drift-profile comparison; one aggregated row each."""
    from repro.chaos.schedule import DRIFT_PROFILES

    profile_list = profiles if profiles is not None else sorted(DRIFT_PROFILES)
    tasks: List[PolicyTask] = [
        (policy, profile, seed)
        for profile in profile_list
        for policy in POLICY_NAMES
        for seed in range(seed_base, seed_base + seeds)
    ]
    outcomes = parallel_map(evaluate_policy_task, tasks, jobs=jobs)

    rows: List[Dict[str, Any]] = []
    for index in range(0, len(tasks), seeds):
        policy, profile, _seed = tasks[index]
        chunk = outcomes[index:index + seeds]
        faults = sum(o["destructive"] for o in chunk)
        unstable = sum(o["unstable_ms"] for o in chunk)
        rows.append({
            "profile": profile,
            "policy": policy,
            "runs": len(chunk),
            "faults": faults,
            "unstable_ms": round(unstable, 1),
            "mean_recovery_ms": round(unstable / faults, 1) if faults else None,
            "spurious_failovers": sum(o["spurious"] for o in chunk),
            "strategy_switches": sum(o["switches"] for o in chunk),
        })
    return rows


def policy_gate(rows: List[Dict[str, Any]], profile: str = "mixed") -> List[str]:
    """Check the adaptive-dominance gate on one profile's rows.

    Returns a list of failure descriptions (empty = gate passed):
    adaptive must beat every static policy on mean recovery latency at
    an equal-or-lower spurious-failover count.
    """
    profile_rows = {row["policy"]: row for row in rows if row["profile"] == profile}
    adaptive = profile_rows.get("adaptive")
    if adaptive is None:
        return [f"no adaptive row for profile {profile!r}"]
    failures = []
    for name, row in sorted(profile_rows.items()):
        if name == "adaptive":
            continue
        if adaptive["mean_recovery_ms"] >= row["mean_recovery_ms"]:
            failures.append(
                f"{profile}: adaptive mean {adaptive['mean_recovery_ms']}ms is not below "
                f"{name} ({row['mean_recovery_ms']}ms)"
            )
        if adaptive["spurious_failovers"] > row["spurious_failovers"]:
            failures.append(
                f"{profile}: adaptive spurious failovers {adaptive['spurious_failovers']} exceed "
                f"{name} ({row['spurious_failovers']})"
            )
    return failures


def render_rows(rows: List[Dict[str, Any]], markdown: bool = False) -> str:
    """Fixed-width (or markdown) table over the sweep rows."""
    headers = list(rows[0].keys()) if rows else []
    cells = [[("-" if row[h] is None else str(row[h])) for h in headers] for row in rows]
    widths = [max(len(h), *(len(line[i]) for line in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    if markdown:
        lines = [
            "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |",
            "|" + "|".join("-" * (w + 2) for w in widths) + "|",
        ]
        lines += ["| " + " | ".join(c.ljust(w) for c, w in zip(line, widths)) + " |" for line in cells]
    else:
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
        lines += ["  ".join(c.ljust(w) for c, w in zip(line, widths)) for line in cells]
    return "\n".join(lines)
