"""Live invariant monitors for chaos runs.

Each monitor watches one safety/liveness property of the OFTT pair while
a fault schedule plays out and records :class:`Violation` entries when
the property is broken.  Monitors are *grace-window aware*: transient
states that the protocol is designed to pass through (dual primary
immediately after a partition heals, unavailability during a failover)
only become violations when they persist longer than the protocol's own
recovery machinery should take.

The suite is polled by the runner every ``tick_period`` simulated ms and
additionally subscribes to engine checkpoint hooks
(:attr:`OfttEngine.on_checkpoint_submit` / ``on_checkpoint_stored``), so
sequence regressions are caught at the exact event, not at the next poll.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.engine import PEER
from repro.core.roles import Role
from repro.msq.manager import DEAD_LETTER_QUEUE


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    invariant: str
    time: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_wire(self) -> Dict[str, Any]:
        """JSON-safe canonical form."""
        return {
            "invariant": self.invariant,
            "time": round(self.time, 3),
            "detail": {k: self.detail[k] for k in sorted(self.detail)},
        }


class InvariantMonitor:
    """Base monitor: runner calls :meth:`on_tick` and :meth:`finalize`."""

    name = "invariant"

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        #: (hook list, callback) pairs registered on engines; released
        #: by detach() so monitors never outlive the run they observed.
        self._hooked: List[Tuple[List, Any]] = []

    def attach(self, scenario: Any) -> None:
        """Called once before the run starts."""

    def on_engine(self, engine: Any) -> None:
        """Called for every engine instance seen (including reinstalls)."""

    def on_tick(self, scenario: Any, now: float) -> None:
        """Called every monitor tick."""

    def finalize(self, scenario: Any, now: float) -> None:
        """Called once when the horizon is reached."""

    def detach(self) -> None:
        """Remove every engine hook this monitor registered."""
        for hooks, callback in self._hooked:
            if callback in hooks:
                hooks.remove(callback)
        self._hooked = []

    def _hook(self, hooks: List, callback: Any) -> None:
        """Register *callback* on an engine hook list, remembering it."""
        hooks.append(callback)
        self._hooked.append((hooks, callback))

    def _violate(self, time: float, **detail: Any) -> None:
        self.violations.append(Violation(invariant=self.name, time=time, detail=detail))


def _connected_both_ways(scenario: Any) -> bool:
    a, b = scenario.pair.node_names
    network = scenario.network
    return network.path_ok(a, b) and network.path_ok(b, a)


class SplitBrainMonitor(InvariantMonitor):
    """Exactly one active primary whenever the pair can talk.

    Dual primary under a (full or asymmetric) partition is *legitimate*:
    the backup must promote on peer loss or availability dies with the
    partition.  The safety property is that once connectivity exists in
    both directions, the incarnation tie-break demotes one side within a
    grace window.  Persisting past the window — or both copies executing
    the application — is split-brain.

    Under the ``log-replay-dr`` strategy the DR site is a third
    potential "brain": an activated site must stand down once a serving
    primary can reach it again (its pair heartbeats force standdown).
    A DR site that stays active past the grace window while a reachable
    primary serves is reported as a ``dr-standdown`` violation.
    """

    name = "split-brain"

    def __init__(self, grace: float = 2_000.0) -> None:
        super().__init__()
        self.grace = grace
        self._since: float = -1.0
        self._reported = False
        self._dr_since: float = -1.0
        self._dr_reported = False

    def on_tick(self, scenario: Any, now: float) -> None:
        pair = scenario.pair
        primaries = [
            name
            for name in pair.node_names
            if pair.engines[name].alive and pair.engines[name].role is Role.PRIMARY
        ]
        dual = len(primaries) > 1 and _connected_both_ways(scenario)
        if not dual:
            self._since = -1.0
            self._reported = False
        elif self._since < 0:
            self._since = now
        elif not self._reported and now - self._since > self.grace:
            self._reported = True
            running = pair.running_app_nodes()
            self._violate(
                now,
                primaries=sorted(primaries),
                running_apps=sorted(running),
                held_for=round(now - self._since, 3),
            )
        self._check_dr(scenario, primaries, now)

    def _check_dr(self, scenario: Any, primaries: List[str], now: float) -> None:
        dr_site = getattr(scenario, "dr_site", None)
        if dr_site is None or not dr_site.active:
            self._dr_since = -1.0
            self._dr_reported = False
            return
        network = scenario.network
        serving = [
            name
            for name in primaries
            if network.path_ok(name, dr_site.node_name) and network.path_ok(dr_site.node_name, name)
        ]
        if not serving:
            self._dr_since = -1.0
            self._dr_reported = False
            return
        if self._dr_since < 0:
            self._dr_since = now
            return
        if not self._dr_reported and now - self._dr_since > self.grace:
            self._dr_reported = True
            self._violate(
                now,
                kind="dr-standdown",
                primaries=sorted(serving),
                dr_node=dr_site.node_name,
                held_for=round(now - self._dr_since, 3),
            )


class CheckpointMonotonicityMonitor(InvariantMonitor):
    """Checkpoint sequences never regress, across takeovers included.

    Two concrete checks, fed by the engine hooks:

    * per engine instance, *submitted* sequences strictly increase (the
      FTIM must resume numbering above anything already stored, even
      after local restarts);
    * per engine instance and application, *stored* peer checkpoint
      sequences strictly increase (stale or replayed transfers must
      never overwrite newer mirrored state).
    """

    name = "checkpoint-monotonicity"

    def __init__(self) -> None:
        super().__init__()
        self._submitted: Dict[int, Dict[str, int]] = {}  # id(engine) -> app -> last seq
        self._stored: Dict[int, Dict[str, int]] = {}

    def on_engine(self, engine: Any) -> None:
        self._submitted.setdefault(id(engine), {})
        self._stored.setdefault(id(engine), {})

        def on_submit(eng: Any, checkpoint: Any) -> None:
            last = self._submitted[id(eng)].get(checkpoint.app_name, 0)
            if checkpoint.sequence <= last:
                self._violate(
                    eng.kernel.now,
                    node=eng.node_name,
                    app=checkpoint.app_name,
                    kind="submit",
                    sequence=checkpoint.sequence,
                    previous=last,
                )
            self._submitted[id(eng)][checkpoint.app_name] = checkpoint.sequence

        def on_stored(eng: Any, checkpoint: Any) -> None:
            last = self._stored[id(eng)].get(checkpoint.app_name, 0)
            if checkpoint.sequence <= last:
                self._violate(
                    eng.kernel.now,
                    node=eng.node_name,
                    app=checkpoint.app_name,
                    kind="stored",
                    sequence=checkpoint.sequence,
                    previous=last,
                )
            self._stored[id(eng)][checkpoint.app_name] = checkpoint.sequence

        self._hook(engine.on_checkpoint_submit, on_submit)
        self._hook(engine.on_checkpoint_stored, on_stored)


class DiverterConservationMonitor(InvariantMonitor):
    """The diverter transport never loses a message silently.

    Conservation over the client queue manager's counters: every message
    ever sent is locally delivered, acknowledged by a pair node, parked
    in the dead-letter queue (visible loss), or still pending retry —
    checked live every tick.  At finalize the dead-letter queue length
    must equal the dead-letter counter (no invisible drops on that path
    either).
    """

    name = "diverter-conservation"

    def __init__(self) -> None:
        super().__init__()
        self._reported = False

    def _imbalance(self, qmgr: Any) -> int:
        stats = qmgr.stats
        accounted = stats["delivered_local"] + stats["acked"] + stats["dead_lettered"] + qmgr.pending_count()
        return stats["sent"] - accounted

    def on_tick(self, scenario: Any, now: float) -> None:
        if self._reported:
            return
        imbalance = self._imbalance(scenario.client_qmgr)
        if imbalance != 0:
            self._reported = True
            self._violate(now, imbalance=imbalance, stats=dict(scenario.client_qmgr.stats))

    def finalize(self, scenario: Any, now: float) -> None:
        qmgr = scenario.client_qmgr
        imbalance = self._imbalance(qmgr)
        if imbalance != 0 and not self._reported:
            self._violate(now, imbalance=imbalance, stats=dict(qmgr.stats))
        dlq_len = len(qmgr.queues[DEAD_LETTER_QUEUE])
        if dlq_len != qmgr.stats["dead_lettered"]:
            self._violate(now, dead_letter_queue=dlq_len, dead_lettered=qmgr.stats["dead_lettered"])


class RecoveryLatencyMonitor(InvariantMonitor):
    """Outages end within a bound while recovery is possible.

    An outage is any period where no live engine holds PRIMARY with all
    of its application copies executing — pure availability, so a dual
    primary (split-brain's concern) does not count as an outage as long
    as one of them serves.  The clock only advances while at least one
    engine on a booted machine is alive — if both machines are down
    there is nobody to recover, and the paper's middleware makes no
    promise.  Exceeding ``bound`` of recoverable outage is a liveness
    violation (one report per outage).
    """

    name = "recovery-latency"

    def __init__(self, bound: float = 10_000.0) -> None:
        super().__init__()
        self.bound = bound
        self._outage_accrued = 0.0
        self._last_tick: float = -1.0
        self._reported = False

    def _stable(self, scenario: Any) -> bool:
        pair = scenario.pair
        for name in pair.node_names:
            engine = pair.engines[name]
            if (
                engine.alive
                and engine.role is Role.PRIMARY
                and engine.applications
                and all(app.running for app in engine.applications.values())
            ):
                return True
        return False

    def _recoverable(self, scenario: Any) -> bool:
        pair = scenario.pair
        return any(pair.engines[name].alive for name in pair.node_names)

    def on_tick(self, scenario: Any, now: float) -> None:
        elapsed = now - self._last_tick if self._last_tick >= 0 else 0.0
        self._last_tick = now
        if self._stable(scenario):
            self._outage_accrued = 0.0
            self._reported = False
            return
        if self._recoverable(scenario):
            self._outage_accrued += elapsed
        if not self._reported and self._outage_accrued > self.bound:
            self._reported = True
            pair = scenario.pair
            self._violate(
                now,
                outage=round(self._outage_accrued, 3),
                roles={name: pair.engines[name].role.value for name in pair.node_names},
                alive={name: pair.engines[name].alive for name in pair.node_names},
            )

    def finalize(self, scenario: Any, now: float) -> None:
        if not self._stable(scenario) and self._recoverable(scenario) and not self._reported:
            if self._outage_accrued > self.bound:
                self._violate(now, outage=round(self._outage_accrued, 3), at_horizon=True)


class HeartbeatLivenessMonitor(InvariantMonitor):
    """Healthy connectivity clears peer suspicion within a grace window.

    If both engines are alive and the network has been bidirectionally
    healthy for longer than ``grace``, neither engine may *keep*
    suspecting its peer's heartbeat past the grace window — a stuck
    suspicion means the detector lost liveness (it would never trigger
    switchback/rejoin logic).  Momentary suspicion is allowed: delay
    faults (gray nodes, clock skew) legitimately trip the detector
    without ever breaking ``path_ok`` connectivity, and the next
    on-time heartbeat clears them; only suspicion that persists for
    ``grace`` while the network is healthy is a liveness loss.
    """

    name = "heartbeat-liveness"

    def __init__(self, grace: float = 3_000.0) -> None:
        super().__init__()
        self.grace = grace
        self._healthy_since: float = -1.0
        self._suspect_since: Dict[str, float] = {}
        self._reported = False

    def on_tick(self, scenario: Any, now: float) -> None:
        pair = scenario.pair
        both_alive = all(pair.engines[name].alive for name in pair.node_names)
        if not (both_alive and _connected_both_ways(scenario)):
            self._healthy_since = -1.0
            self._suspect_since.clear()
            self._reported = False
            return
        if self._healthy_since < 0:
            self._healthy_since = now
            return
        for name in pair.node_names:
            if pair.engines[name].monitor.is_suspected(PEER):
                self._suspect_since.setdefault(name, now)
            else:
                self._suspect_since.pop(name, None)
        if self._reported or now - self._healthy_since <= self.grace:
            return
        stuck = [
            name for name, since in self._suspect_since.items() if now - since > self.grace
        ]
        if stuck:
            self._reported = True
            self._violate(now, nodes=sorted(stuck), healthy_for=round(now - self._healthy_since, 3))


class ReplicaFreshnessMonitor(InvariantMonitor):
    """Leader-follower: the follower's mirror keeps pace with the leader.

    The whole point of :class:`LeaderFollowerStrategy` is that updates
    stream continuously, so the follower can take over without the
    cold-passive checkpoint gap.  While both nodes are alive and
    bidirectionally connected, the follower must keep reaching the
    leader's submitted sequence: if it fails to advance past a fixed
    target sequence for longer than ``grace``, the replication stream is
    silently broken and a failover would lose exactly the state this
    strategy promises to preserve.  Inert (no hooks, no checks) under
    any other strategy.
    """

    name = "replica-freshness"

    def __init__(self, grace: float = 5_000.0) -> None:
        super().__init__()
        self.grace = grace
        self._enabled = False
        self._submitted: Dict[str, int] = {}  # node -> last submitted seq
        self._stored: Dict[str, int] = {}  # node -> max peer seq stored
        self._healthy_since: float = -1.0
        self._target: Optional[Tuple[int, float]] = None  # (seq to reach, since)
        self._reported = False

    def attach(self, scenario: Any) -> None:
        self._enabled = getattr(scenario, "strategy_name", "cold-passive") == "leader-follower"

    def on_engine(self, engine: Any) -> None:
        if not self._enabled:
            return

        def on_submit(eng: Any, checkpoint: Any) -> None:
            self._submitted[eng.node_name] = checkpoint.sequence

        def on_stored(eng: Any, checkpoint: Any) -> None:
            self._stored[eng.node_name] = max(self._stored.get(eng.node_name, 0), checkpoint.sequence)

        self._hook(engine.on_checkpoint_submit, on_submit)
        self._hook(engine.on_checkpoint_stored, on_stored)

    def on_tick(self, scenario: Any, now: float) -> None:
        if not self._enabled:
            return
        pair = scenario.pair
        both_alive = all(pair.engines[name].alive for name in pair.node_names)
        primaries = [
            name
            for name in pair.node_names
            if pair.engines[name].alive and pair.engines[name].role is Role.PRIMARY
        ]
        if not (both_alive and len(primaries) == 1 and _connected_both_ways(scenario)):
            self._healthy_since = -1.0
            self._target = None
            self._reported = False
            return
        if self._healthy_since < 0:
            self._healthy_since = now
            return
        primary = primaries[0]
        follower = next(name for name in pair.node_names if name != primary)
        submitted = self._submitted.get(primary, 0)
        stored = self._stored.get(follower, 0)
        if stored >= submitted:
            # Fully caught up; nothing outstanding to chase.
            self._target = None
            return
        if self._target is None or stored >= self._target[0]:
            # (Re)arm on the current head: the follower lags but was
            # still advancing — give it a fresh grace window per target.
            self._target = (submitted, now)
            return
        target_seq, since = self._target
        if not self._reported and now - since > self.grace and now - self._healthy_since > self.grace:
            self._reported = True
            self._violate(
                now,
                leader=primary,
                follower=follower,
                submitted=submitted,
                mirrored=stored,
                stalled_at=target_seq,
                stalled_for=round(now - since, 3),
            )


class StrategyFlappingMonitor(InvariantMonitor):
    """Runtime strategy switching must not flap.

    The adaptive policy may move a pair between replication strategies
    as the fault regime drifts, but each switch costs a full-image
    re-base on every FTIM; a policy oscillating faster than its dwell
    time is burning replication bandwidth for nothing.  More than
    ``bound`` switches by one engine inside ``window`` ms is flapping.
    Inert (hooks record nothing, no violations) when no engine ever
    switches — i.e. whenever the adaptive policy is off.
    """

    name = "strategy-flapping"

    def __init__(self, bound: int = 3, window: float = 10_000.0) -> None:
        super().__init__()
        self.bound = bound
        self.window = window
        self._switches: Dict[int, List[float]] = {}  # id(engine) -> switch times
        self._reported: Dict[int, bool] = {}

    def on_engine(self, engine: Any) -> None:
        self._switches.setdefault(id(engine), [])
        self._reported.setdefault(id(engine), False)

        def on_switch(eng: Any, old: str, new: str, reason: str) -> None:
            times = self._switches[id(eng)]
            now = eng.kernel.now
            times.append(now)
            times[:] = [t for t in times if t >= now - self.window]
            if len(times) > self.bound and not self._reported[id(eng)]:
                self._reported[id(eng)] = True
                self._violate(
                    now,
                    node=eng.node_name,
                    switches=len(times),
                    window=self.window,
                    latest=f"{old} -> {new} ({reason})",
                )

        self._hook(engine.on_strategy_switch, on_switch)


class RestartThrashMonitor(InvariantMonitor):
    """Local restarts must not crash-loop at full speed.

    A component that keeps dying should cost a bounded number of local
    restarts before the recovery layer escalates (static rules via
    ``max_local_restarts``, the adaptive policy via its thrash
    detector + back-off).  A burst of more than ``bound`` restarts by
    one engine inside ``window`` ms means restart governance is lost —
    exactly what the ``disable-cooldown`` sabotage removes, so the
    chaos self-test can prove this monitor catches it.
    """

    name = "restart-thrash"

    def __init__(self, bound: int = 5, window: float = 4_000.0) -> None:
        super().__init__()
        self.bound = bound
        self.window = window
        self._last_counts: Dict[int, int] = {}  # id(engine) -> local_restart_count
        self._bursts: Dict[int, List[Tuple[float, int]]] = {}  # (time, restarts)
        self._engines: Dict[int, Any] = {}
        self._reported: Dict[int, bool] = {}

    def on_engine(self, engine: Any) -> None:
        self._engines[id(engine)] = engine
        self._last_counts.setdefault(id(engine), engine.local_restart_count)
        self._bursts.setdefault(id(engine), [])
        self._reported.setdefault(id(engine), False)

    def on_tick(self, scenario: Any, now: float) -> None:
        for key, engine in self._engines.items():
            delta = engine.local_restart_count - self._last_counts[key]
            self._last_counts[key] = engine.local_restart_count
            bursts = self._bursts[key]
            if delta > 0:
                bursts.append((now, delta))
            bursts[:] = [(t, n) for t, n in bursts if t >= now - self.window]
            total = sum(n for _, n in bursts)
            if total > self.bound and not self._reported[key]:
                self._reported[key] = True
                self._violate(
                    now,
                    node=engine.node_name,
                    restarts=total,
                    window=self.window,
                )


def default_monitors() -> List[InvariantMonitor]:
    """The standard monitor suite (fresh instances)."""
    return [
        SplitBrainMonitor(),
        CheckpointMonotonicityMonitor(),
        DiverterConservationMonitor(),
        RecoveryLatencyMonitor(),
        HeartbeatLivenessMonitor(),
        ReplicaFreshnessMonitor(),
        StrategyFlappingMonitor(),
        RestartThrashMonitor(),
    ]
