"""Planted LIFE006: handler appends to a long-lived list, nothing prunes."""


class Collector:
    def __init__(self):
        self.log = []
        self.seen = 0

    def _on_message(self, message):
        self.seen += 1
        self.log.append(message)  # expect: LIFE006

    def stop(self):
        self.seen = 0  # log keeps growing forever
