"""Assorted coverage: counters, labels, stopped-status visibility,
region deletion, empty renders."""

from repro.core.monitor import SystemMonitor
from repro.core.status import ComponentStatus
from repro.nt.memory import MemoryRegion

from tests.core.util import make_pair_world


def test_region_delete_variable():
    region = MemoryRegion("r")
    region.write("a", 1)
    region.delete("a")
    assert "a" not in region
    region.delete("a")  # idempotent


def test_group_notifications_counter():
    from repro.com.runtime import ComRuntime
    from repro.opc.server import OpcServer
    from tests.conftest import make_world

    world = make_world()
    system = world.add_machine("host")
    server = OpcServer(ComRuntime(system, world.network), "OPC.C.1")
    server.namespace.define_simple("a", 0.0)
    group = server.AddGroup("g", update_rate=50.0)
    group.AddItems(["a"])
    group.SetDataCallback(lambda name, batch: None)
    for value in range(5):
        server.update_item("a", float(value))
        world.run_for(100.0)
    assert group.notifications_sent == 5


def test_stopped_status_visible_on_monitor_after_switchover():
    world = make_pair_world(seed=121, monitor_nodes=["mon"])
    world.add_machine("mon")
    monitor = SystemMonitor(world.kernel, world.network.nodes["mon"])
    world.start()
    world.run_for(3_000.0)
    old_primary = world.primary
    world.pair.engines[old_primary].request_switchover("maintenance")
    world.run_for(3_000.0)
    # The demoted node's engine reports its app copy stopped.
    assert monitor.status_of(old_primary, "synthetic") is ComponentStatus.STOPPED
    assert monitor.role_of(old_primary) == "backup"


def test_diverter_message_labels_preserved():
    from repro.core.diverter import DiverterClient, inbox_queue_name
    from repro.msq.manager import QueueManager

    world = make_pair_world(seed=122, subscriber_nodes=["ext"])
    world.add_machine("ext")
    qmgr = QueueManager(world.kernel, world.network, world.network.nodes["ext"])
    client = DiverterClient(
        node=world.network.nodes["ext"], qmgr=qmgr, unit="test", pair_nodes=["alpha", "beta"]
    )
    world.start()
    world.run_for(2_000.0)
    client.send({"n": 1}, label="important")
    world.run_for(1_000.0)
    queue = world.pair.contexts[world.primary].qmgr.open_queue(inbox_queue_name("test"))
    message = queue.receive()
    assert message.label == "important"
    # The inbox journals consumed messages (diverter redelivery window).
    assert queue.journal_enabled


def test_calltrack_render_before_any_events():
    from tests.apps.test_calltrack import make_calltrack

    _world, app = make_calltrack()
    rendered = app.render_histogram()
    assert "0 events" in rendered
    assert rendered.count("busy") == app.lines + 1


def test_engine_stats_counters_consistent():
    world = make_pair_world(seed=123)
    world.start()
    world.run_for(5_000.0)
    primary_engine = world.pair.engines[world.primary]
    backup_engine = world.pair.engines[world.backup]
    primary_stats = primary_engine.stats()
    backup_stats = backup_engine.stats()
    # Every checkpoint the primary sent was either received or lost on
    # the (lossless) link: counts match.
    assert primary_stats["checkpoints_tx"] == backup_stats["checkpoints_rx"]
    assert primary_stats["acks_rx"] == backup_stats["checkpoints_rx"]
    assert backup_stats["checkpoints_tx"] == 0  # backup app is not running


def test_first_fired_helper():
    from repro.simnet.events import first_fired

    assert first_fired((2, "value")) == 2
    assert first_fired(None) is None
