"""Pass 3 — sim race detector (RACE rules).

Events that land at the same simulated timestamp run in schedule order:
the kernel's strictly increasing sequence number breaks the tie
(:mod:`repro.simnet.kernel`).  That keeps replay deterministic, but it
also *hides* logical races — two handlers touching the same state at an
equal timestamp produce whichever outcome the incidental schedule order
picks, and an innocent reordering of ``schedule()`` calls flips the
result while every test keeps passing.

This pass approximates, per class, the set of methods used as scheduled
callbacks / process steps (anything passed to ``schedule``/``spawn``/
``add_callback``/``bind``) and a static read/write set of ``self.*``
attributes for each.  Pairs of handlers that can tie then yield:

* RACE001 ``race-write-write``   — both handlers store the same attribute
* RACE002 ``race-write-read``    — one stores what the other loads
* RACE003 ``race-container-iter``— one mutates a container the other iterates
* RACE004 ``race-loop-capture``  — closure passed to ``schedule`` captures
  the loop variable (late binding: every callback sees the last value)

RACE001–003 are warnings: the tiebreak order is sometimes the designed
behaviour (state machines stepping themselves).  Reviewed-and-intended
pairs are annotated ``# oftt-lint: ok[race-write-write]`` on the handler
``def`` line.  RACE004 is an error — it is a plain bug.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, Severity, rule
from repro.analysis.walker import SourceFile, dotted_name

WRITE_WRITE = rule(
    "RACE001", "race-write-write", Severity.WARNING, "race",
    "Two same-tick handlers write one attribute; seq-number order decides.",
)
WRITE_READ = rule(
    "RACE002", "race-write-read", Severity.WARNING, "race",
    "A same-tick handler reads what another writes; seq-number order decides.",
)
CONTAINER_ITER = rule(
    "RACE003", "race-container-iter", Severity.WARNING, "race",
    "A same-tick handler mutates a container another iterates.",
)
LOOP_CAPTURE = rule(
    "RACE004", "race-loop-capture", Severity.ERROR, "race",
    "Callback closure captures the loop variable; all callbacks see the last value.",
)

#: Method names through which a callable becomes an event handler.
#: Shared with the interprocedural effects pass (RACE101–103), which
#: must agree with this pass on what counts as a same-tick handler.
REGISTRARS = {"schedule", "add_callback", "bind", "spawn", "on_message", "subscribe"}

#: Container mutators treated as writes to the container attribute.
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "clear", "add", "discard",
    "update", "setdefault", "popitem", "appendleft", "popleft",
}


@dataclass
class _Effects:
    """Approximate effect set of one method, over ``self.*`` attributes."""

    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    iterates: Set[str] = field(default_factory=set)
    mutates: Set[str] = field(default_factory=set)
    line: int = 0


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when *node* is exactly ``self.attr``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _method_effects(func: ast.FunctionDef) -> _Effects:
    effects = _Effects(line=func.lineno)
    for node in ast.walk(func):
        attr = _self_attr(node)
        if attr is not None:
            if isinstance(node.ctx, (ast.Store, ast.Del)):  # type: ignore[attr-defined]
                effects.writes.add(attr)
            else:
                effects.reads.add(attr)
        if isinstance(node, ast.AugAssign):
            target = _self_attr(node.target)
            if target is not None:
                effects.writes.add(target)
                effects.reads.add(target)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            owner = _self_attr(node.func.value)
            if owner is not None and node.func.attr in _MUTATORS:
                effects.mutates.add(owner)
                effects.writes.add(owner)
        if isinstance(node, (ast.Subscript,)):
            owner = _self_attr(node.value)
            if owner is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
                effects.mutates.add(owner)
                effects.writes.add(owner)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            owner = _self_attr(node.iter)
            if owner is None and isinstance(node.iter, ast.Call) and isinstance(node.iter.func, ast.Attribute):
                # for x in self.attr.items()/keys()/values()
                if node.iter.func.attr in ("items", "keys", "values"):
                    owner = _self_attr(node.iter.func.value)
            if owner is not None:
                effects.iterates.add(owner)
                effects.reads.add(owner)
        if isinstance(node, ast.comprehension):
            owner = _self_attr(node.iter)
            if owner is not None:
                effects.iterates.add(owner)
                effects.reads.add(owner)
    return effects


@dataclass
class ClassModel:
    """One class with its methods and the subset registered as handlers.

    Public because the effects pass (:mod:`repro.analysis.effects`)
    reuses the same handler attribution for its interprocedural rules.
    """

    name: str
    path: str
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    handlers: Set[str] = field(default_factory=set)


def _callback_method_name(node: ast.AST) -> Optional[str]:
    """``name`` for a ``self.name`` callback reference (or ``self.name()``)."""
    attr = _self_attr(node)
    if attr is not None:
        return attr
    if isinstance(node, ast.Call):  # spawn(self._run()) — generator call
        return _self_attr(node.func)
    return None


def collect_models(files: Sequence[SourceFile]) -> List[ClassModel]:
    """Per-class handler models, in file order (shared with effects)."""
    models: List[ClassModel] = []
    for source_file in files:
        if source_file.tree is None:
            continue
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            model = ClassModel(node.name, source_file.path)
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef):
                    model.methods[stmt.name] = stmt
            # A method becomes a handler when any method of the class (or
            # the module around it) registers self.<method> with the kernel.
            for func in model.methods.values():
                for call in ast.walk(func):
                    if not isinstance(call, ast.Call):
                        continue
                    callee = dotted_name(call.func)
                    if callee is None or callee.split(".")[-1] not in REGISTRARS:
                        continue
                    for arg in list(call.args) + [kw.value for kw in call.keywords]:
                        name = _callback_method_name(arg)
                        if name is not None and name in model.methods:
                            model.handlers.add(name)
            models.append(model)
    return models


def _check_loop_capture(source_file: SourceFile) -> List[Finding]:
    """RACE004: lambda/def in a loop body, capturing the loop variable,
    passed to a registrar."""
    findings: List[Finding] = []
    tree = source_file.tree
    if tree is None:
        return findings
    for loop in ast.walk(tree):
        if not isinstance(loop, (ast.For, ast.AsyncFor)):
            continue
        loop_vars = {n.id for n in ast.walk(loop.target) if isinstance(n, ast.Name)}
        if not loop_vars:
            continue
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is None or callee.split(".")[-1] not in REGISTRARS:
                continue
            for arg in node.args:
                if not isinstance(arg, ast.Lambda):
                    continue
                lambda_params = {a.arg for a in arg.args.args + arg.args.kwonlyargs}
                captured = {
                    n.id
                    for n in ast.walk(arg.body)
                    if isinstance(n, ast.Name) and n.id in loop_vars and n.id not in lambda_params
                }
                if captured:
                    names = ", ".join(sorted(captured))
                    findings.append(
                        Finding(LOOP_CAPTURE, source_file.path, arg.lineno, arg.col_offset,
                                f"lambda passed to {callee.split('.')[-1]}() captures loop variable "
                                f"{names}; bind it as a default or pass it as *args")
                    )
    return findings


def run(files: Sequence[SourceFile]) -> List[Finding]:
    """Pass entry point."""
    findings: List[Finding] = []
    for source_file in files:
        findings.extend(_check_loop_capture(source_file))

    for model in collect_models(files):
        if len(model.handlers) < 2:
            continue
        effects = {name: _method_effects(model.methods[name]) for name in sorted(model.handlers)}
        # Report one finding per (attribute, kind), naming every handler
        # involved, anchored at the first writer's def line.
        reported: Set[Tuple[str, str]] = set()
        names = sorted(model.handlers)
        for i, first in enumerate(names):
            for second in names[i + 1:]:
                a, b = effects[first], effects[second]
                for attr in sorted((a.writes & b.writes)):
                    if attr.startswith("__") or ("ww", attr) in reported:
                        continue
                    reported.add(("ww", attr))
                    writers = sorted(n for n in names if attr in effects[n].writes)
                    findings.append(
                        Finding(WRITE_WRITE, model.path, effects[writers[0]].line, 0,
                                f"{model.name}.{attr} written by same-tick handlers "
                                f"{', '.join(writers)}; order is only the seq tiebreak")
                    )
                for attr in sorted((a.writes & b.reads) | (b.writes & a.reads)):
                    if attr.startswith("__") or ("wr", attr) in reported or ("ww", attr) in reported:
                        continue
                    reported.add(("wr", attr))
                    writer = first if attr in a.writes else second
                    reader = second if writer == first else first
                    findings.append(
                        Finding(WRITE_READ, model.path, effects[writer].line, 0,
                                f"{model.name}.{attr} written by {writer} and read by {reader} "
                                f"in same-tick handlers; order is only the seq tiebreak")
                    )
                for attr in sorted((a.mutates & b.iterates) | (b.mutates & a.iterates)):
                    if ("ci", attr) in reported:
                        continue
                    reported.add(("ci", attr))
                    mutator = first if attr in a.mutates else second
                    findings.append(
                        Finding(CONTAINER_ITER, model.path, effects[mutator].line, 0,
                                f"{model.name}.{attr} mutated by {mutator} while another same-tick "
                                f"handler iterates it")
                    )
    return findings
