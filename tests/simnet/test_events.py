"""Unit tests for yieldable synchronization primitives."""

import pytest

from repro.errors import SimError
from repro.simnet.events import AllOf, AnyOf, Condition, Event, Timeout, first_fired
from repro.simnet.kernel import SimKernel


def test_timeout_negative_delay_rejected():
    with pytest.raises(SimError):
        Timeout(-0.1)


def test_timeout_carries_value():
    kernel = SimKernel()
    result = []

    def body():
        value = yield Timeout(5.0, value="payload")
        result.append(value)

    kernel.spawn(body())
    kernel.run()
    assert result == ["payload"]


def test_event_wakes_all_waiters_with_value():
    kernel = SimKernel()
    event = Event("gate")
    results = []

    def waiter(tag):
        value = yield event
        results.append((tag, value))

    kernel.spawn(waiter("a"))
    kernel.spawn(waiter("b"))
    kernel.schedule(10.0, event.succeed, 99)
    kernel.run()
    assert sorted(results) == [("a", 99), ("b", 99)]


def test_event_fires_only_once():
    event = Event()
    event.succeed(1)
    with pytest.raises(SimError):
        event.succeed(2)


def test_late_callback_on_fired_event_runs_immediately():
    event = Event()
    event.succeed("val")
    seen = []
    event.add_callback(lambda w: seen.append(w.value))
    assert seen == ["val"]


def test_anyof_fires_with_first_index_and_value():
    kernel = SimKernel()
    results = []

    def body():
        outcome = yield AnyOf([Timeout(50.0, value="slow"), Timeout(10.0, value="fast")])
        results.append(outcome)

    kernel.spawn(body())
    kernel.run()
    assert results == [(1, "fast")]
    assert first_fired(results[0]) == 1


def test_anyof_empty_rejected():
    with pytest.raises(SimError):
        AnyOf([])


def test_allof_collects_values_in_order():
    kernel = SimKernel()
    results = []

    def body():
        values = yield AllOf([Timeout(30.0, value="c"), Timeout(10.0, value="a")])
        results.append(values)

    kernel.spawn(body())
    kernel.run()
    assert results == [["c", "a"]]
    assert kernel.now == 30.0


def test_allof_empty_rejected():
    with pytest.raises(SimError):
        AllOf([])


def test_condition_fires_on_poll_when_predicate_true():
    state = {"ready": False}
    condition = Condition(lambda: state["ready"], name="ready")
    assert not condition.poll()
    state["ready"] = True
    assert condition.poll()
    assert condition.fired
    # Further polls stay fired without re-firing.
    assert condition.poll()


def test_anyof_ignores_later_children():
    kernel = SimKernel()
    event_a = Event("a")
    event_b = Event("b")
    composite = AnyOf([event_a, event_b])
    event_a.succeed("first")
    event_b.succeed("second")  # must not raise or refire
    assert composite.value == (0, "first")
