"""Pass 4 — interprocedural effect analysis (RACE1xx / PURE rules).

Two rule families ride on the same machinery — a module-level call graph
(:mod:`repro.analysis.callgraph`) and per-function effect summaries
propagated bottom-up with k-bounded inlining
(:mod:`repro.analysis.summaries`):

* **RACE101–103** extend the intraprocedural race pass across call
  boundaries.  PR 1's RACE001–003 stop at the handler body, so a
  conflict routed through a private helper (``OpcGroup._dispatch``,
  ``self._collect()``) is invisible to them.  Here each same-tick
  handler's read/write/mutate/iterate sets include everything reachable
  through up to ``max_k`` ``self.method()`` hops, and findings carry the
  full call chain (``_on_ping_result -> _collect -> clear_callback``).
  Conflicts already visible intraprocedurally are *not* re-reported —
  those belong to RACE001–003 and their existing suppressions.

* **PURE001–004** check the contract ``parallel_map`` states but nothing
  enforced: tasks fanned out to spawn workers must be pure picklable
  functions of their arguments, or the byte-identical merge guarantee
  (PERF.md) silently breaks.

  - PURE001 ``impure-task`` — the task transitively writes module state
    (``global`` stores, mutation of module-level containers).  Each
    worker mutates its own copy; the merged result no longer equals the
    serial run.
  - PURE002 ``unpicklable-task`` — the task is a lambda, a nested
    function, or a bound method: it cannot be pickled by reference as a
    module-level function (bound methods also drag the whole instance
    into every worker).
  - PURE003 ``entropy-task`` — the task transitively reads ambient
    entropy (wall clock, global RNG, environment) and takes no seed-like
    parameter, so two workers — or two runs — disagree.
  - PURE004 ``task-mutates-argument`` — the task mutates its argument in
    place.  Serial runs see the mutation accumulate across items;
    spawned workers mutate pickled copies, so results diverge with the
    worker count.

RACE101–103 are warnings like their intraprocedural siblings (the
tiebreak order is occasionally the designed behaviour; annotate reviewed
pairs in place).  PURE rules are errors: each one breaks the hard
byte-identity gate ``make perf-gate`` enforces.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import races
from repro.analysis.callgraph import CallGraph, build_call_graph, positional_params
from repro.analysis.findings import Finding, Severity, rule
from repro.analysis.summaries import Chain, EffectSummary, compute_summaries
from repro.analysis.walker import SourceFile, import_aliases, resolve_call_name

IP_WRITE_WRITE = rule(
    "RACE101", "ip-race-write-write", Severity.WARNING, "effects",
    "Same-tick handlers write one attribute through helper calls; order is the seq tiebreak.",
)
IP_WRITE_READ = rule(
    "RACE102", "ip-race-write-read", Severity.WARNING, "effects",
    "A same-tick handler reads what another writes through a helper call chain.",
)
IP_CONTAINER = rule(
    "RACE103", "ip-race-container", Severity.WARNING, "effects",
    "A same-tick handler mutates, through helpers, a container another iterates.",
)
IMPURE_TASK = rule(
    "PURE001", "impure-task", Severity.ERROR, "effects",
    "parallel_map task transitively writes module state; workers diverge from the serial run.",
)
UNPICKLABLE_TASK = rule(
    "PURE002", "unpicklable-task", Severity.ERROR, "effects",
    "parallel_map task is a lambda/nested function/bound method; not picklable by reference.",
)
ENTROPY_TASK = rule(
    "PURE003", "entropy-task", Severity.ERROR, "effects",
    "parallel_map task reads ambient entropy without a seed parameter.",
)
MUTATING_TASK = rule(
    "PURE004", "task-mutates-argument", Severity.ERROR, "effects",
    "parallel_map task mutates its argument in place; workers mutate pickled copies.",
)

#: Default inlining depth: effects travel at most this many call hops.
DEFAULT_MAX_K = 2


def _chain_str(handler: str, chain: Chain, graph: CallGraph) -> str:
    """``handler -> helper -> deeper`` using short method names."""
    names = [handler]
    for key in chain:
        info = graph.functions.get(key)
        names.append(info.short_name if info is not None else key.rsplit(":", 1)[-1])
    return " -> ".join(names)


# -- RACE101–103: interprocedural same-tick handler conflicts --------------


def _handler_summaries(
    model: races.ClassModel,
    module: str,
    graph: CallGraph,
    summaries: Dict[str, EffectSummary],
) -> Dict[str, EffectSummary]:
    """Transitive summaries for the model's handlers, keyed by method name."""
    out: Dict[str, EffectSummary] = {}
    for handler in sorted(model.handlers):
        key = graph.methods.get((module, model.name, handler))
        if key is not None and key in summaries:
            out[handler] = summaries[key]
    return out


def _sides(
    handlers: Dict[str, EffectSummary], select
) -> List[Tuple[str, Chain]]:
    """(handler, chain) pairs where *select* yields the attr's chain."""
    out: List[Tuple[str, Chain]] = []
    for handler in sorted(handlers):
        chain = select(handlers[handler])
        if chain is not None:
            out.append((handler, chain))
    return out


def _check_handler_conflicts(
    model: races.ClassModel,
    module: str,
    graph: CallGraph,
    summaries: Dict[str, EffectSummary],
) -> List[Finding]:
    findings: List[Finding] = []
    handlers = _handler_summaries(model, module, graph, summaries)
    if len(handlers) < 2:
        return findings
    def_line = {name: model.methods[name].lineno for name in handlers}

    attrs: Set[str] = set()
    for summary in handlers.values():
        attrs.update(summary.self_writes)
        attrs.update(summary.self_reads)
    reported: Set[Tuple[str, str]] = set()

    for attr in sorted(attrs):
        if attr.startswith("__"):
            continue
        writers = _sides(handlers, lambda s: s.self_writes.get(attr))
        readers = _sides(handlers, lambda s: s.self_reads.get(attr))
        mutators = _sides(handlers, lambda s: s.self_mutates.get(attr))
        iterators = _sides(handlers, lambda s: s.self_iterates.get(attr))

        direct_writers = [w for w, chain in writers if chain == ()]
        # -- write-write ------------------------------------------------
        if len(writers) >= 2:
            if len(direct_writers) >= 2:
                reported.add(("ww", attr))  # RACE001 territory; don't re-report
            else:
                reported.add(("ww", attr))
                chained = [(w, c) for w, c in writers if c]
                anchor = writers[0][0]
                routes = "; ".join(
                    f"{_chain_str(w, c, graph)}" for w, c in writers
                )
                findings.append(Finding(
                    IP_WRITE_WRITE, model.path, def_line[anchor], 0,
                    f"{model.name}.{attr} written by same-tick handlers via {routes}; "
                    f"order is only the seq tiebreak",
                ))
                continue
        # -- container mutate vs iterate (classified before write-read:
        # mutates are writes and iterations are reads, and the container
        # rule is the more precise diagnosis) ---------------------------
        if mutators and iterators:
            pair = None
            direct_pair = False
            for mutator, mut_chain in mutators:
                for iterator, it_chain in iterators:
                    if iterator == mutator:
                        continue
                    if mut_chain == () and it_chain == ():
                        direct_pair = True  # RACE003 territory
                        continue
                    if pair is None:
                        pair = ((mutator, mut_chain), (iterator, it_chain))
            if pair is not None and not direct_pair:
                reported.add(("ci", attr))
                (mutator, mut_chain), (iterator, it_chain) = pair
                findings.append(Finding(
                    IP_CONTAINER, model.path, def_line[mutator], 0,
                    f"{model.name}.{attr} mutated via {_chain_str(mutator, mut_chain, graph)} "
                    f"while {_chain_str(iterator, it_chain, graph)} iterates it in a same-tick handler",
                ))
            elif direct_pair:
                reported.add(("ci", attr))  # RACE003's; suppress the wr echo too
        # -- write-read -------------------------------------------------
        if ("ww", attr) not in reported and ("ci", attr) not in reported and writers and readers:
            pair: Optional[Tuple[Tuple[str, Chain], Tuple[str, Chain]]] = None
            direct_pair = False
            for writer, write_chain in writers:
                for reader, read_chain in readers:
                    if reader == writer:
                        continue
                    if write_chain == () and read_chain == ():
                        direct_pair = True  # RACE002 territory
                        continue
                    if pair is None:
                        pair = ((writer, write_chain), (reader, read_chain))
            if pair is not None and not direct_pair and ("wr", attr) not in reported:
                reported.add(("wr", attr))
                (writer, write_chain), (reader, read_chain) = pair
                findings.append(Finding(
                    IP_WRITE_READ, model.path, def_line[writer], 0,
                    f"{model.name}.{attr} written via {_chain_str(writer, write_chain, graph)} "
                    f"and read via {_chain_str(reader, read_chain, graph)} in same-tick handlers; "
                    f"order is only the seq tiebreak",
                ))
    return findings


# -- PURE001–004: parallel_map task purity ---------------------------------


def _task_expr(call: ast.Call) -> Optional[ast.AST]:
    """The task-function argument of a ``parallel_map`` call."""
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "fn":
            return keyword.value
    return None


def _enclosing_nested_def(scopes: Sequence[ast.AST], name: str) -> bool:
    """Whether *name* is a function defined inside an enclosing function."""
    for scope in scopes:
        for node in ast.walk(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == name and node is not scope:
                return True
    return False


def _seedlike_params(node: ast.FunctionDef) -> bool:
    names = positional_params(node, drop_self=False)
    names += [arg.arg for arg in node.args.kwonlyargs]
    return any("seed" in name for name in names)


def _check_task(
    source_file: SourceFile,
    call: ast.Call,
    task: ast.AST,
    module: str,
    class_name: Optional[str],
    scopes: Sequence[ast.AST],
    graph: CallGraph,
    summaries: Dict[str, EffectSummary],
) -> List[Finding]:
    path, line, col = source_file.path, call.lineno, call.col_offset
    findings: List[Finding] = []

    if isinstance(task, ast.Lambda):
        return [Finding(
            UNPICKLABLE_TASK, path, line, col,
            "task is a lambda; spawn workers pickle tasks by reference, so it must "
            "be a module-level function",
        )]
    if isinstance(task, ast.Attribute):
        if isinstance(task.value, ast.Name) and task.value.id in ("self", "cls"):
            return [Finding(
                UNPICKLABLE_TASK, path, line, col,
                f"task self.{task.attr} is a bound method; it drags the whole instance "
                f"into every worker — use a module-level function",
            )]
    if isinstance(task, ast.Name) and _enclosing_nested_def(scopes, task.id):
        return [Finding(
            UNPICKLABLE_TASK, path, line, col,
            f"task {task.id} is a nested function; spawn workers cannot pickle it "
            f"by reference — move it to module level",
        )]

    key = graph.resolve_callable(task, module, class_name)
    if key is None or key not in summaries:
        return findings  # outside the analysed set; nothing to vouch for
    info = graph.functions[key]
    summary = summaries[key]
    task_name = info.short_name

    for name in sorted(summary.global_writes):
        chain = summary.global_writes[name]
        findings.append(Finding(
            IMPURE_TASK, path, line, col,
            f"task {task_name} transitively writes module state {name!r} "
            f"(via {_chain_str(task_name, chain, graph)}); the merged result is no "
            f"longer a pure function of the task arguments",
        ))
        break  # one impurity per call site is enough to gate
    if summary.ambient and not _seedlike_params(info.node):
        source = sorted(summary.ambient)[0]
        chain = summary.ambient[source]
        findings.append(Finding(
            ENTROPY_TASK, path, line, col,
            f"task {task_name} reads ambient entropy {source} "
            f"(via {_chain_str(task_name, chain, graph)}) and takes no seed parameter; "
            f"workers and reruns diverge",
        ))
    for param in sorted(summary.param_mutations):
        chain = summary.param_mutations[param]
        findings.append(Finding(
            MUTATING_TASK, path, line, col,
            f"task {task_name} mutates its argument {param!r} in place "
            f"(via {_chain_str(task_name, chain, graph)}); workers mutate pickled "
            f"copies, so results depend on the worker count",
        ))
        break
    return findings


def _check_parallel_map_sites(
    source_file: SourceFile,
    graph: CallGraph,
    summaries: Dict[str, EffectSummary],
) -> List[Finding]:
    findings: List[Finding] = []
    tree = source_file.tree
    if tree is None:
        return findings
    aliases = import_aliases(tree)
    module = source_file.module_name

    def visit(node: ast.AST, class_name: Optional[str], scopes: Tuple[ast.AST, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, child.name, scopes)
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, class_name, scopes + (child,))
                continue
            if isinstance(child, ast.Call):
                callee = resolve_call_name(child, aliases)
                if callee is not None and callee.split(".")[-1] == "parallel_map":
                    task = _task_expr(child)
                    if task is not None:
                        findings.extend(_check_task(
                            source_file, child, task, module, class_name,
                            scopes, graph, summaries,
                        ))
            visit(child, class_name, scopes)

    visit(tree, None, ())
    return findings


# -- pass entry points -----------------------------------------------------


def run_with_k(files: Sequence[SourceFile], max_k: int = DEFAULT_MAX_K) -> List[Finding]:
    """Run the effects pass with an explicit inlining depth."""
    graph = build_call_graph(files)
    summaries = compute_summaries(files, graph, max_k=max_k)
    module_of_path = {f.path: f.module_name for f in files}

    findings: List[Finding] = []
    for model in races.collect_models(files):
        if len(model.handlers) < 2:
            continue
        findings.extend(_check_handler_conflicts(
            model, module_of_path.get(model.path, ""), graph, summaries,
        ))
    for source_file in files:
        findings.extend(_check_parallel_map_sites(source_file, graph, summaries))
    return findings


def run(files: Sequence[SourceFile]) -> List[Finding]:
    """Pass entry point (default k)."""
    return run_with_k(files, DEFAULT_MAX_K)


def make_pass(max_k: int):
    """A Pass closure with a configured inlining depth (``--max-k``)."""
    def effects_pass(files: Sequence[SourceFile]) -> List[Finding]:
        return run_with_k(files, max_k)
    return effects_pass
