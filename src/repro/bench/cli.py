"""Command-line driver: ``python -m repro.bench`` / ``oftt-bench``.

Runs the bench catalogue and prints a ``repro.bench/v1`` JSON report.
``--save`` also writes the report to the next ``BENCH_<n>.json`` at the
repo root (or use ``--out PATH`` for an explicit destination)::

    oftt-bench                            # quick profile, report to stdout
    oftt-bench --profile full --jobs 4 --save
    python -m repro.bench --out /tmp/bench.json

The ``diff`` subcommand compares two saved reports — deterministic
``work`` halves byte-for-byte, ``measured`` halves against a noise
threshold (see :mod:`repro.bench.diff`)::

    oftt-bench diff BENCH_1.json BENCH_2.json
    oftt-bench diff --latest --threshold 0.10   # two newest in --root
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
from typing import Any, Dict, Optional, Sequence

# oftt-lint: file-ok[ambient-io] -- the bench driver reads host facts and writes reports.
from repro.bench import diff as diff_mod
from repro.bench.benches import PROFILES, run_benches
from repro.bench.report import build_report, next_bench_path, render_json
from repro.perf.executor import add_jobs_argument


def host_facts() -> Dict[str, Any]:
    """The honest context a measurement is meaningless without."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": sys.platform,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oftt-bench",
        description="Benchmark harness: sim hot paths and end-to-end campaign/replay workloads.",
    )
    parser.add_argument("--profile", choices=PROFILES, default="quick",
                        help="bench sizes: quick (default) or full (the 100-schedule campaign)")
    parser.add_argument("--only", default="", metavar="NAME",
                        help="run a single bench by name (e.g. kernel-events); "
                             "incompatible with --save/--out — partial reports "
                             "would poison the diff history")
    parser.add_argument("--save", action="store_true",
                        help="write the report to the next BENCH_<n>.json in --root")
    parser.add_argument("--root", default=".",
                        help="directory --save numbers reports in (default: current directory)")
    parser.add_argument("--out", default="", help="write the report to this exact path")
    add_jobs_argument(parser, default=2)
    return parser


def build_diff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oftt-bench diff",
        description="Compare two saved bench reports: work byte-identical, "
                    "measured within a noise threshold.",
    )
    parser.add_argument("reports", nargs="*", metavar="REPORT",
                        help="two BENCH_<n>.json paths, oldest first")
    parser.add_argument("--latest", action="store_true",
                        help="compare the two highest-numbered BENCH_<n>.json in --root")
    parser.add_argument("--root", default=".",
                        help="directory --latest searches (default: current directory)")
    parser.add_argument("--threshold", type=float, default=diff_mod.DEFAULT_THRESHOLD,
                        metavar="FRACTION",
                        help="relative move in the bad direction that counts as a "
                             f"regression (default: {diff_mod.DEFAULT_THRESHOLD})")
    return parser


def diff_main(argv: Sequence[str]) -> int:
    options = build_diff_parser().parse_args(argv)
    try:
        if options.threshold < 0:
            raise diff_mod.BenchDiffError(f"--threshold must be >= 0, got {options.threshold}")
        if options.latest:
            if options.reports:
                raise diff_mod.BenchDiffError("--latest takes no positional reports")
            pair = diff_mod.latest_pair(options.root)
            if pair is None:
                # A fresh history has one baseline; nothing to compare is
                # not a failure.
                print(f"bench diff: fewer than two BENCH_<n>.json in {options.root}; nothing to compare")
                return 0
            old_path, new_path = pair
        elif len(options.reports) == 2:
            old_path, new_path = options.reports
        else:
            raise diff_mod.BenchDiffError("expected exactly two reports (or --latest)")
        old = diff_mod.load_report(old_path)
        new = diff_mod.load_report(new_path)
    except diff_mod.BenchDiffError as exc:
        print(f"oftt-bench diff: {exc}", file=sys.stderr)
        return 2
    text, code = diff_mod.render_diff(
        old_path, new_path, diff_mod.diff_reports(old, new), options.threshold
    )
    print(text)
    return code


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "diff":
        return diff_main(arguments[1:])
    options = build_parser().parse_args(arguments)
    if options.only and (options.save or options.out):
        print("oftt-bench: --only runs a partial catalogue; refusing to save it "
              "(drop --save/--out)", file=sys.stderr)
        return 2
    try:
        benches = run_benches(profile=options.profile, jobs=options.jobs,
                              only=options.only or None)
    except ValueError as exc:
        print(f"oftt-bench: {exc}", file=sys.stderr)
        return 2
    report = build_report(benches, profile=options.profile, jobs=options.jobs, host=host_facts())
    rendered = render_json(report)
    sys.stdout.write(rendered)

    destinations = []
    if options.out:
        destinations.append(options.out)
    if options.save:
        destinations.append(next_bench_path(options.root))
    for path in destinations:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {path}", file=sys.stderr)

    failed = [bench["name"] for bench in benches
              if not all(value is not False for value in bench["work"].values())]
    if failed:
        print(f"oftt-bench: work checks failed in: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
