"""Deterministic discrete-event simulation substrate.

Everything in the OFTT reproduction — NT nodes, COM calls, message queues,
OPC data flow, heartbeats, checkpoints — runs on this kernel so that every
experiment is reproducible for a given seed and latencies are measured in
simulated time.

Public surface:

* :class:`SimKernel` — the event loop (``schedule``, ``spawn``, ``run``).
* :class:`Process` — a generator-based cooperative process.
* Yieldables: :class:`Timeout`, :class:`Event`, :class:`AnyOf`,
  :class:`AllOf`.
* :class:`Interrupt` — raised inside a process that another interrupted.
* :class:`Network`, :class:`NetNode`, :class:`Link` — simulated Ethernet.
* :class:`RngStreams` — named, seeded random streams.
* :class:`TraceLog` — structured trace of simulation events.
"""

from repro.simnet.kernel import Interrupt, Process, SimKernel
from repro.simnet.events import AllOf, AnyOf, Event, Timeout
from repro.simnet.random import RngStreams
from repro.simnet.network import Link, Message, NetNode, Network
from repro.simnet.partitions import PartitionController
from repro.simnet.trace import TraceLog, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Link",
    "Message",
    "NetNode",
    "Network",
    "PartitionController",
    "Process",
    "RngStreams",
    "SimKernel",
    "Timeout",
    "TraceLog",
    "TraceRecord",
]
