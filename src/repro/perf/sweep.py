"""Detector-sensitivity sweep: miss threshold x timeout over chaos schedules.

The §2.2.1 failure detector has two knobs the paper leaves to the
deployer: the heartbeat timeout and (our extension) the consecutive-miss
threshold before a silence is declared a failure.  This sweep runs the
same set of seeded chaos schedules under every grid point and tabulates
the classic trade-off:

* **detection latency** — for every schedule fault the heartbeat path
  must detect (hangs, node/middleware deaths), the delay from injection
  to the first ``heartbeat-timeout`` / ``peer-lost`` trace event;
* **false positives** — detection events fired with *no* process- or
  node-killing fault active: the detector being fooled by network
  disturbance (partitions, gray nodes, corruption) or by nothing at all;
* **invariant violations** — the safety cost, from the standard chaos
  monitor suite, of desensitising the detector too far.

A detection event is *attributed* to a destructive fault when it lands in
``[at, at + timeout * miss_threshold + ATTRIBUTION_GRACE]``; anything
unattributed counts as a false positive.  The same ``(seed, schedule)``
set is evaluated at every grid point so columns are comparable, and each
``(point, seed, schedule)`` task is a pure function of its arguments —
the sweep fans out over :func:`repro.perf.executor.parallel_map` and
merges into a byte-stable table.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.chaos.cli import campaign_tasks
from repro.chaos.runner import ChaosRun
from repro.chaos.schedule import ChaosSchedule
from repro.core.config import OfttConfig, replace_config
from repro.perf.executor import parallel_map
from repro.perf.grid import grid_points

#: Grid swept by the CLI / EXPERIMENTS.md table.
DEFAULT_THRESHOLDS = [1, 2, 3]
DEFAULT_TIMEOUTS = [300.0, 500.0, 1_000.0]

#: Faults that must be caught (by heartbeat silence or peer loss).
DESTRUCTIVE_KINDS = frozenset({
    "app-crash", "app-hang", "middleware-crash",
    "node-failure", "bluescreen", "crash-during-checkpoint",
})
#: The subset only the heartbeat path can detect (no exit hook fires),
#: i.e. the faults whose latency actually measures the detector.
HEARTBEAT_ONLY_KINDS = frozenset({
    "app-hang", "node-failure", "bluescreen",
    "middleware-crash", "crash-during-checkpoint",
})
#: Slack added to the attribution window beyond the detector's own
#: worst-case (timeout x miss threshold): scheduling and repair jitter.
ATTRIBUTION_GRACE = 5_000.0

#: One sweep task: (grid point, seed, schedule).
SweepTask = Tuple[Dict[str, Any], int, ChaosSchedule]


def _config_for(point: Dict[str, Any]) -> OfttConfig:
    """The OfttConfig a grid point describes.

    The component and peer detectors share the swept timeout so one knob
    moves the whole detection surface; the heartbeat send period stays at
    its default (the timeout must exceed it — enforced by validate()).
    """
    return replace_config(
        OfttConfig(),
        heartbeat_timeout=float(point["heartbeat_timeout"]),
        peer_heartbeat_timeout=float(point["heartbeat_timeout"]),
        heartbeat_miss_threshold=int(point["heartbeat_miss_threshold"]),
    )


def evaluate_sweep_task(task: SweepTask) -> Dict[str, Any]:
    """Executor entry point: one schedule under one detector setting.

    Runs the schedule with the full chaos monitor suite and extracts the
    detection record from the trace *inside the worker*, so only a small
    stats dict crosses the process boundary.
    """
    point, seed, schedule = task
    run = ChaosRun(seed=seed, schedule=schedule, config=_config_for(point))
    result = run.execute()
    trace = run.scenario.trace
    detections = sorted(
        trace.select(category="engine", event="heartbeat-timeout")
        + trace.select(category="engine", event="peer-lost"),
        key=lambda record: record.time,
    )
    window = float(point["heartbeat_timeout"]) * int(point["heartbeat_miss_threshold"]) + ATTRIBUTION_GRACE

    destructive = [e for e in schedule.sorted_entries() if e.kind in DESTRUCTIVE_KINDS]
    latencies: List[float] = []
    missed = 0
    for entry in destructive:
        if entry.kind not in HEARTBEAT_ONLY_KINDS:
            continue
        hit = next((r for r in detections if entry.at <= r.time <= entry.at + window), None)
        if hit is None:
            missed += 1
        else:
            latencies.append(round(hit.time - entry.at, 3))
    false_positives = sum(
        1
        for record in detections
        if not any(e.at <= record.time <= e.at + window for e in destructive)
    )
    return {
        "faults": sum(1 for e in destructive if e.kind in HEARTBEAT_ONLY_KINDS),
        "latencies": latencies,
        "missed": missed,
        "false_positives": false_positives,
        "violations": len(result.violations),
        "passed": result.passed,
    }


def sweep_detectors(
    thresholds: List[int] = None,
    timeouts: List[float] = None,
    seeds: int = 4,
    schedules: int = 3,
    seed_base: int = 0,
    jobs: int = 1,
) -> List[Dict[str, Any]]:
    """Run the sweep; one aggregated row per grid point, canonical order."""
    points = grid_points({
        "heartbeat_miss_threshold": thresholds or DEFAULT_THRESHOLDS,
        "heartbeat_timeout": timeouts or DEFAULT_TIMEOUTS,
    })
    runs = [(seed, schedule) for seed, schedule, _ in campaign_tasks(seeds, schedules, seed_base)]
    tasks: List[SweepTask] = [(point, seed, schedule) for point in points for seed, schedule in runs]
    outcomes = parallel_map(evaluate_sweep_task, tasks, jobs=jobs)

    rows: List[Dict[str, Any]] = []
    per_point = len(runs)
    for index, point in enumerate(points):
        chunk = outcomes[index * per_point:(index + 1) * per_point]
        latencies = sorted(latency for outcome in chunk for latency in outcome["latencies"])
        detected = len(latencies)
        rows.append({
            "miss_threshold": point["heartbeat_miss_threshold"],
            "timeout_ms": point["heartbeat_timeout"],
            "runs": per_point,
            "faults": sum(outcome["faults"] for outcome in chunk),
            "detected": detected,
            "missed": sum(outcome["missed"] for outcome in chunk),
            "mean_latency_ms": round(sum(latencies) / detected, 1) if detected else None,
            "max_latency_ms": round(latencies[-1], 1) if detected else None,
            "false_positives": sum(outcome["false_positives"] for outcome in chunk),
            "violations": sum(outcome["violations"] for outcome in chunk),
        })
    return rows


def render_rows(rows: List[Dict[str, Any]], markdown: bool = False) -> str:
    """Fixed-width (or markdown) table over the sweep rows."""
    headers = list(rows[0].keys()) if rows else []
    cells = [[("-" if row[h] is None else str(row[h])) for h in headers] for row in rows]
    widths = [max(len(h), *(len(line[i]) for line in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    if markdown:
        lines = [
            "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |",
            "|" + "|".join("-" * (w + 2) for w in widths) + "|",
        ]
        lines += ["| " + " | ".join(c.ljust(w) for c, w in zip(line, widths)) + " |" for line in cells]
    else:
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
        lines += ["  ".join(c.ljust(w) for c, w in zip(line, widths)) for line in cells]
    return "\n".join(lines)
