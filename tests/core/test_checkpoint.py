"""Unit tests for checkpoint capture, serialization, and the store."""

import pytest

from repro.core.checkpoint import Checkpoint, CheckpointStore
from repro.errors import CheckpointError


def checkpoint(sequence, image=None, incremental=False, app="app"):
    return Checkpoint(
        app_name=app,
        sequence=sequence,
        captured_at=float(sequence),
        image=image if image is not None else {"globals": {"x": sequence}},
        thread_contexts={"main": {"program_counter": 1, "stack_pointer": 2, "registers": {}}},
        incremental=incremental,
    )


def test_wire_roundtrip():
    original = checkpoint(3)
    assert Checkpoint.from_wire(original.as_wire()) == original


def test_size_grows_with_image():
    small = checkpoint(1, image={"globals": {"x": 1}})
    big = checkpoint(2, image={"globals": {"blob": "y" * 50_000}})
    assert big.size_bytes() > small.size_bytes() + 40_000


def test_store_keeps_latest():
    store = CheckpointStore(history=4)
    for sequence in (1, 2, 3):
        assert store.store(checkpoint(sequence))
    assert store.latest("app").sequence == 3
    assert store.latest_sequence("app") == 3


def test_store_rejects_stale_sequences():
    store = CheckpointStore()
    store.store(checkpoint(5))
    assert not store.store(checkpoint(5))
    assert not store.store(checkpoint(4))
    assert store.rejected_count == 2
    assert store.latest("app").sequence == 5


def test_store_bounds_history():
    store = CheckpointStore(history=3)
    for sequence in range(1, 10):
        store.store(checkpoint(sequence))
    chain = store.all_for("app")
    assert [cp.sequence for cp in chain] == [7, 8, 9]


def test_store_separates_apps():
    store = CheckpointStore()
    store.store(checkpoint(1, app="a"))
    store.store(checkpoint(1, app="b"))
    assert store.latest("a").app_name == "a"
    assert store.latest("b").app_name == "b"
    store.clear("a")
    assert store.latest("a") is None
    assert store.latest("b") is not None


def test_latest_of_unknown_app_is_none():
    store = CheckpointStore()
    assert store.latest("ghost") is None
    assert store.latest_sequence("ghost") == 0


def test_invalid_history_rejected():
    with pytest.raises(CheckpointError):
        CheckpointStore(history=0)


def test_incremental_merges_onto_base():
    base = checkpoint(1, image={"globals": {"a": 1, "b": 2}, "heap": {"h": 0}})
    delta = checkpoint(2, image={"globals": {"b": 99}, "new": {"n": 1}}, incremental=True)
    merged = delta.merged_onto(base)
    assert merged.image == {"globals": {"a": 1, "b": 99}, "heap": {"h": 0}, "new": {"n": 1}}
    assert not merged.incremental
    assert merged.sequence == 2


def test_incremental_without_base_rejected():
    delta = checkpoint(1, incremental=True)
    with pytest.raises(CheckpointError):
        delta.merged_onto(None)


def test_full_checkpoint_merge_is_identity():
    full = checkpoint(2)
    assert full.merged_onto(checkpoint(1)) is full


def test_store_resolves_incrementals_on_insert():
    store = CheckpointStore()
    store.store(checkpoint(1, image={"globals": {"a": 1, "b": 2}}))
    store.store(checkpoint(2, image={"globals": {"b": 3}}, incremental=True))
    latest = store.latest("app")
    assert latest.image == {"globals": {"a": 1, "b": 3}}
    assert not latest.incremental


def test_incremental_chain_resolves_transitively():
    store = CheckpointStore()
    store.store(checkpoint(1, image={"globals": {"a": 1}}))
    store.store(checkpoint(2, image={"globals": {"b": 2}}, incremental=True))
    store.store(checkpoint(3, image={"globals": {"c": 3}}, incremental=True))
    assert store.latest("app").image == {"globals": {"a": 1, "b": 2, "c": 3}}
