"""Import Address Table simulation.

On real NT, every Win32 call a module makes goes through its IAT; patching
an IAT slot intercepts the call.  The paper uses exactly this trick
(§2.2.2): the handles of threads created dynamically with ``CreateThread``
cannot be discovered through the standard APIs, so OFTT patches the IAT to
observe the calls and record the handles itself.

Here, :class:`Kernel32` dispatches every API through the process's
:class:`ImportAddressTable`, so installed hooks see each call's arguments
and result.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.errors import NTError

# A hook receives (api_name, args_tuple, result) after the real API ran.
Hook = Callable[[str, Tuple[Any, ...], Any], None]


class ImportAddressTable:
    """Hookable dispatch table for Win32-like API calls."""

    def __init__(self) -> None:
        self._entries: Dict[str, Callable[..., Any]] = {}
        self._hooks: Dict[str, List[Hook]] = {}
        self.call_counts: Dict[str, int] = {}

    def register(self, api_name: str, implementation: Callable[..., Any]) -> None:
        """Bind the real implementation of *api_name*."""
        self._entries[api_name] = implementation

    def patch(self, api_name: str, hook: Hook) -> None:
        """Install *hook* on *api_name*; it runs after each real call."""
        if api_name not in self._entries:
            raise NTError(f"cannot patch unknown import {api_name}")
        self._hooks.setdefault(api_name, []).append(hook)

    def unpatch(self, api_name: str, hook: Hook) -> None:
        """Remove a previously installed hook (idempotent)."""
        hooks = self._hooks.get(api_name, [])
        if hook in hooks:
            hooks.remove(hook)

    def call(self, api_name: str, *args: Any) -> Any:
        """Invoke an API through the table, firing hooks."""
        if api_name not in self._entries:
            raise NTError(f"call through unresolved import {api_name}")
        self.call_counts[api_name] = self.call_counts.get(api_name, 0) + 1
        result = self._entries[api_name](*args)
        for hook in self._hooks.get(api_name, []):
            hook(api_name, args, result)
        return result

    def is_patched(self, api_name: str) -> bool:
        """Whether any hook is installed on *api_name*."""
        return bool(self._hooks.get(api_name))

    def imports(self) -> List[str]:
        """Registered API names, sorted."""
        return sorted(self._entries)

    def __repr__(self) -> str:
        patched = sorted(name for name in self._hooks if self._hooks[name])
        return f"ImportAddressTable(imports={len(self._entries)}, patched={patched})"
