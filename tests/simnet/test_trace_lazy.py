"""Lazy rendering and lazy index folding must be invisible.

The trace plane defers two things: a record's wire form / fingerprint
(built on first ask, not at emit) and the per-category/component select
indexes (folded in a chunk at the first query after an emit burst).
These tests pin that laziness never changes observable results: golden
fingerprints stay byte-identical whatever the emit/query interleaving,
and the snapshot semantics of ``emit(**detail)`` are exactly documented
— top level copied by kwargs splat, nested values by reference.
"""

from __future__ import annotations

import pickle

from repro.simnet.trace import TraceLog, TraceRecord

# Golden values shared with test_trace_fastpath.py: laziness must not
# move these by a byte (they pin compatibility with recorded replays).
GOLDEN_START_FP = "b1a0cffdee031e24"
GOLDEN_LOG_FP = "9de5d07592c782fd"


def build_golden_log() -> TraceLog:
    log = TraceLog()
    log.emit("proc", "node-1", "start")
    log.emit("net", "link-a", "deliver", seq=7, payload="héllo", ok=True)
    log.emit("proc", "node-2", "crash", reason=None, load=0.123456789)
    return log


def test_golden_fingerprints_unchanged_by_lazy_paths():
    log = build_golden_log()
    assert log.records[0].fingerprint() == GOLDEN_START_FP
    assert log.fingerprint() == GOLDEN_LOG_FP


def test_fingerprint_identical_whatever_the_query_interleaving():
    eager, lazy = build_golden_log(), build_golden_log()
    # Eager: query (forcing index folds) after every emit-equivalent step.
    eager.select(category="proc")
    eager.first(component="link-a")
    eager.count(category="net")
    assert eager.fingerprint() == lazy.fingerprint() == GOLDEN_LOG_FP
    assert eager.select(category="proc") == lazy.select(category="proc")


def test_indexes_fold_lazily_and_catch_up_exactly():
    log = TraceLog()
    for i in range(50):
        log.emit(f"cat-{i % 3}", f"comp-{i % 4}", "ev", index=i)
    # Nothing folded yet: emit never touches the indexes.
    assert log._indexed == 0
    picked = log.select(category="cat-1")
    assert log._indexed == 50
    assert [r.detail["index"] for r in picked] == list(range(1, 50, 3))
    # A post-query burst folds on the next query, not at emit.
    log.emit("cat-1", "comp-9", "late")
    assert log._indexed == 50
    assert log.select(category="cat-1")[-1].event == "late"
    assert log._indexed == 51


def test_unfiltered_select_never_needs_the_indexes():
    log = build_golden_log()
    assert log.select() == log.records
    assert log._indexed == 0  # full-scan queries skip folding entirely


def test_caller_held_detail_dict_mutation_does_not_alter_wire_form():
    """Snapshot semantics, part 1: the top level is copied at emit."""
    log = TraceLog()
    held = {"state": "primary", "epoch": 3}
    record = log.emit("role", "node-1", "decided", **held)
    held["state"] = "backup"  # caller reuses its dict after emitting
    held["extra"] = "late"
    wire = record.as_wire()  # rendered lazily, after the mutation
    assert wire["detail"] == {"epoch": 3, "state": "primary"}
    assert record.fingerprint() == TraceRecord(
        0.0, "role", "node-1", "decided", {"state": "primary", "epoch": 3}
    ).fingerprint()


def test_nested_detail_values_are_held_by_reference():
    """Snapshot semantics, part 2: nesting is NOT deep-copied.

    This is the documented contract (see TraceLog.emit): detail values
    must be treated as frozen once emitted.  The test pins the behaviour
    so the docs cannot silently drift from the implementation.
    """
    log = TraceLog()
    nested = {"queue": [1, 2]}
    record = log.emit("msq", "node-1", "depth", snapshot=nested)
    nested["queue"].append(3)  # contract violation by the caller...
    assert record.as_wire()["detail"]["snapshot"] == {"queue": [1, 2, 3]}  # ...is visible


def test_pickled_log_rebuilds_indexes_and_digest():
    log = build_golden_log()
    log.select(category="proc")  # force a fold + eat the digest
    log.fingerprint()
    clone = pickle.loads(pickle.dumps(log))
    assert clone._indexed == 0  # derived state dropped by __getstate__
    assert clone.fingerprint() == GOLDEN_LOG_FP
    assert clone.select(category="proc") == log.select(category="proc")
