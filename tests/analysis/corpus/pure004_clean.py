"""Clean twin of pure004: the task copies its argument before touching it."""

from repro.perf.executor import parallel_map


def consume(batch):
    out = list(batch)
    out.append("done")
    return len(out)


def main(batches):
    return parallel_map(consume, batches)
