"""Shared fixtures for the OFTT reproduction test suite."""

from __future__ import annotations

import pytest

from repro.nt.system import NTSystem
from repro.simnet.kernel import SimKernel
from repro.simnet.network import Network
from repro.simnet.partitions import PartitionController
from repro.simnet.random import RngStreams
from repro.simnet.trace import TraceLog


class World:
    """A bundle of kernel + network + machines used by most tests."""

    def __init__(self, seed: int = 0) -> None:
        self.kernel = SimKernel()
        self.rngs = RngStreams(seed)
        self.trace = TraceLog(clock=lambda: self.kernel.now)
        self.network = Network(self.kernel, self.rngs, self.trace)
        self.partitions = PartitionController(self.network)
        self.systems = {}
        self.fieldbuses = {}

    def add_machine(self, name: str, links=("lan0",), boot: bool = True) -> NTSystem:
        """Create a node + NT machine attached to *links*."""
        self.network.add_node(name)
        for link in links:
            if link not in self.network.links:
                self.network.add_link(link, latency=0.5, jitter=0.1)
            self.network.attach(name, link)
        system = NTSystem(self.kernel, self.network.nodes[name], self.rngs, self.trace)
        self.systems[name] = system
        if boot:
            system.boot_immediately()
        return system

    def run(self, until: float) -> float:
        """Advance to absolute time *until*."""
        return self.kernel.run(until=until)

    def run_for(self, duration: float) -> float:
        """Advance by *duration*."""
        return self.kernel.run(until=self.kernel.now + duration)


@pytest.fixture
def world() -> World:
    """A fresh empty world (seed 0)."""
    return World(seed=0)


@pytest.fixture
def two_machines(world: World):
    """World with two booted machines, alpha and beta, on one LAN."""
    alpha = world.add_machine("alpha")
    beta = world.add_machine("beta")
    return world, alpha, beta


def make_world(seed: int = 0) -> World:
    """Non-fixture construction for parametrised/property tests."""
    return World(seed=seed)
