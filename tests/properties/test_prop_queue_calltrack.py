"""Property-based tests: queue dedupe and Call Track event processing."""

from hypothesis import given, settings, strategies as st

from repro.msq.queue import MsmqQueue, QueueMessage


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60))
def test_queue_dedupe_total_equals_distinct_ids(id_stream):
    queue = MsmqQueue("q", "node")
    for message_id in id_stream:
        queue.enqueue(QueueMessage(message_id=f"m{message_id}", sender="s", body=message_id), now=0.0)
    assert queue.total_enqueued == len(set(id_stream))
    drained = []
    while True:
        message = queue.receive()
        if message is None:
            break
        drained.append(message.message_id)
    assert len(drained) == len(set(drained)) == len(set(id_stream))


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=80))
def test_queue_push_and_poll_agree(id_stream):
    """Push subscription delivers exactly what polling would have."""
    poll_queue = MsmqQueue("poll", "node")
    push_queue = MsmqQueue("push", "node")
    pushed = []
    push_queue.subscribe(lambda m: pushed.append(m.message_id))
    for message_id in id_stream:
        for queue in (poll_queue, push_queue):
            queue.enqueue(QueueMessage(message_id=f"m{message_id}", sender="s", body=None), now=0.0)
    polled = []
    while True:
        message = poll_queue.receive()
        if message is None:
            break
        polled.append(message.message_id)
    assert pushed == polled


# -- call track under arbitrary delivery orders and duplication ----------------------


def _event(sequence, busy):
    return {
        "kind": "start",
        "caller": 0,
        "line": 0,
        "time": float(sequence),
        "busy_lines": busy,
        "sequence": sequence,
    }


@st.composite
def delivery_schedules(draw):
    """A set of events plus a delivery order with duplicates."""
    count = draw(st.integers(min_value=1, max_value=25))
    events = {seq: draw(st.integers(min_value=0, max_value=5)) for seq in range(1, count + 1)}
    order = draw(st.permutations(sorted(events)))
    duplicates = draw(st.lists(st.sampled_from(sorted(events)), max_size=10))
    return events, list(order) + duplicates


@given(delivery_schedules())
@settings(max_examples=40, deadline=None)
def test_calltrack_histogram_invariant_under_reorder_and_dup(schedule):
    """However events are reordered/duplicated in delivery, each distinct
    event is counted exactly once."""
    from tests.apps.test_calltrack import make_calltrack

    events, order = schedule
    _world, app = make_calltrack(save_on_end=False)
    for sequence in order:
        app.process_event(_event(sequence, events[sequence]))
    histogram = app.histogram()
    expected = {}
    for busy in events.values():
        expected[busy] = expected.get(busy, 0) + 1
    for busy, count in expected.items():
        assert histogram[busy] == count
    assert app.events_processed() == len(events)
    state = app.state()
    assert state["duplicates_dropped"] == len(order) - len(events)
    assert state["seen_floor"] == max(events)
    assert state["seen_recent"] == []
