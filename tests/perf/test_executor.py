"""The executor contract: order-preserving, pure-task, jobs-invariant."""

from __future__ import annotations

import pytest

from repro.perf.executor import parallel_map, resolve_jobs
from repro.perf.grid import grid_points


def double(value: int) -> int:
    """Module-level so spawn workers can import it by reference."""
    return value * 2


def explode(value: int) -> int:
    if value == 3:
        raise RuntimeError("task 3 exploded")
    return value


def test_serial_path_maps_in_order():
    assert parallel_map(double, [3, 1, 2], jobs=1) == [6, 2, 4]


def test_parallel_results_keep_task_order():
    items = list(range(20))
    assert parallel_map(double, items, jobs=2) == [double(item) for item in items]


def test_parallel_matches_serial():
    items = [5, 4, 3, 2, 1, 0]
    assert parallel_map(double, items, jobs=2) == parallel_map(double, items, jobs=1)


def test_empty_input():
    assert parallel_map(double, [], jobs=4) == []


def test_worker_error_propagates_serial_and_parallel():
    with pytest.raises(RuntimeError, match="task 3 exploded"):
        parallel_map(explode, [1, 2, 3, 4], jobs=1)
    with pytest.raises(RuntimeError, match="task 3 exploded"):
        parallel_map(explode, [1, 2, 3, 4], jobs=2)


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(None) >= 1  # auto: host core count
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-1)


def test_grid_points_canonical_order():
    points = grid_points({"b": [2, 1], "a": ["y", "x"]})
    # Axis names sort ("a" before "b"); first sorted axis varies slowest,
    # and values keep their given order within an axis.
    assert points == [
        {"a": "y", "b": 2},
        {"a": "y", "b": 1},
        {"a": "x", "b": 2},
        {"a": "x", "b": 1},
    ]


def test_grid_points_rejects_empty_axis():
    with pytest.raises(ValueError):
        grid_points({"a": []})
