"""Planted LIFE002: heartbeat watch registered, never unwatched."""


class PeerGuard:
    def __init__(self, monitor):
        self.monitor = monitor
        self.running = False

    def start(self):
        self.monitor.watch("peer", 500.0)  # expect: LIFE002
        self.running = True

    def stop(self):
        self.running = False
