"""Byte-compatibility gates for the trace fast paths.

The fingerprint pipeline was rewritten for speed (template-built wire
payloads, per-record memoization, incremental log digests).  These tests
pin the *bytes*: golden hex values that must never drift, the fast
payload checked against a reference ``json.dumps(as_wire())`` encoding,
the incremental log digest checked against from-scratch hashing, and
``first``/``last``/``count`` checked against a ``select()``-based
reference.  A drift here silently breaks replay comparison across
versions, so every assertion is exact.
"""

from __future__ import annotations

import copy
import hashlib
import json
import math
import pickle

import pytest

from repro.simnet.trace import TraceLog, TraceRecord

# -- golden fingerprints ---------------------------------------------------
# Computed from the wire format contract (sorted keys, compact JSON,
# floats quantized to 9 decimal places, sha256 truncated to 16 hex
# chars).  If one of these changes, replay logs recorded by older
# versions stop matching — that is a breaking change, not a refactor.

GOLDEN_RECORDS = [
    (TraceRecord(0.0, "proc", "node-1", "start"), "b1a0cffdee031e24"),
    (
        TraceRecord(1.5, "net", "link-a", "deliver", {"seq": 7, "payload": "héllo", "ok": True}),
        "a1d4398e7c04b397",
    ),
    (
        TraceRecord(2.25, "proc", "node-2", "crash", {"reason": None, "load": 0.123456789, "neg": -0.0}),
        "8834d56dee262abe",
    ),
    (
        TraceRecord(3.0, "vote", "mgr", "round", {"nested": {"b": [1, 2.5], "a": "x"}, "nan": float("nan")}),
        "dd35d3faa74da954",
    ),
]


@pytest.mark.parametrize("record, expected", GOLDEN_RECORDS, ids=lambda v: v if isinstance(v, str) else v.event)
def test_golden_record_fingerprints(record, expected):
    assert record.fingerprint() == expected


def test_golden_log_fingerprint():
    log = TraceLog()
    log.emit("proc", "node-1", "start")
    log.emit("net", "link-a", "deliver", seq=7, payload="héllo", ok=True)
    log.emit("proc", "node-2", "crash", reason=None, load=0.123456789)
    assert log.fingerprint() == "9de5d07592c782fd"


# -- fast payload vs reference encoding ------------------------------------


def reference_fingerprint(record):
    payload = json.dumps(record.as_wire(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


AWKWARD_DETAILS = [
    {},
    {"plain": "ascii", "n": 3, "f": 0.5},
    {"unicode": "snow☃man", "quote": 'say "hi"', "back": "a\\b"},
    {"control": "tab\there\nnewline"},
    {"big": 10**30, "tiny": 1e-300, "negzero": -0.0},
    {"inf": math.inf, "ninf": -math.inf, "nan": math.nan},
    {"nested": {"z": [1, {"k": (1, 2)}], "a": None}},
    {"bool": True, "none": None, "mixed": [True, None, "s", 2.5]},
    {"quantize": 0.1234567894999, "exact": 1.0},
]


@pytest.mark.parametrize("detail", AWKWARD_DETAILS, ids=range(len(AWKWARD_DETAILS)))
def test_fast_fingerprint_matches_reference_encoding(detail):
    record = TraceRecord(1.25, "cat", "comp", "ev", dict(detail))
    assert record.fingerprint() == reference_fingerprint(record)


# -- incremental log digest vs from-scratch --------------------------------


def scratch_fingerprint(log):
    digest = hashlib.sha256()
    for record in log.records:
        digest.update(record.fingerprint().encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()[:16]


def test_incremental_fingerprint_matches_scratch_across_interleavings():
    log = TraceLog()
    for round_no in range(5):
        for i in range(7):
            log.emit("cat", f"comp-{i % 2}", "ev", round=round_no, index=i)
        # fingerprint mid-stream folds the tail; later emits must extend
        # the digest, never restart or double-fold it
        assert log.fingerprint() == scratch_fingerprint(log)
    assert log.fingerprint() == scratch_fingerprint(log)


def test_fingerprint_of_empty_log_matches_scratch():
    log = TraceLog()
    assert log.fingerprint() == scratch_fingerprint(log)
    log.emit("cat", "comp", "ev")
    assert log.fingerprint() == scratch_fingerprint(log)


def test_fingerprint_stable_when_called_twice_without_new_emits():
    log = TraceLog()
    log.emit("cat", "comp", "ev", n=1)
    assert log.fingerprint() == log.fingerprint()


# -- pickle / deepcopy of fingerprinted logs -------------------------------
# hashlib digest objects cannot be pickled; the lazy incremental state
# must drop out of the serialized form and rebuild on demand.


def test_pickle_round_trip_after_fingerprint():
    log = TraceLog()
    for i in range(10):
        log.emit("cat", "comp", "ev", index=i)
    before = log.fingerprint()
    clone = pickle.loads(pickle.dumps(log))
    assert clone.fingerprint() == before
    # both halves keep evolving identically
    log.emit("cat", "comp", "late")
    clone.emit("cat", "comp", "late")
    assert clone.fingerprint() == log.fingerprint()


def test_deepcopy_round_trip_after_fingerprint():
    log = TraceLog()
    log.emit("cat", "comp", "ev", value=1.5)
    before = log.fingerprint()
    clone = copy.deepcopy(log)
    assert clone.fingerprint() == before


# -- first/last/count vs select reference ----------------------------------


def build_log(n=60):
    log = TraceLog()
    for i in range(n):
        log.emit(f"cat-{i % 3}", f"comp-{i % 4}", f"ev-{i % 5}", index=i)
    return log


FILTER_COMBOS = [
    {},
    {"category": "cat-1"},
    {"component": "comp-2"},
    {"event": "ev-3"},
    {"category": "cat-0", "component": "comp-0"},
    {"category": "cat-2", "event": "ev-2"},
    {"category": "cat-1", "component": "comp-3", "event": "ev-1"},
    {"since": 0.0, "until": 0.0},
    {"category": "no-such"},
]


@pytest.mark.parametrize("filters", FILTER_COMBOS, ids=range(len(FILTER_COMBOS)))
def test_first_last_count_match_select_reference(filters):
    log = build_log()
    selected = log.select(**filters)
    assert log.first(**filters) == (selected[0] if selected else None)
    assert log.last(**filters) == (selected[-1] if selected else None)
    assert log.count(**filters) == len(selected)


def test_first_last_on_empty_log():
    log = TraceLog()
    assert log.first() is None
    assert log.last() is None
    assert log.count() == 0
