"""Named replay subjects: the things ``oftt-replay`` knows how to check.

Two kinds:

* **trace** subjects build and drive a harness scenario (optionally with
  a fault campaign) and are checked by running twice with the same seed
  and diffing the canonical traces (:func:`run_twice_and_diff`).
* **roundtrip** subjects warm a scenario, then require one application's
  checkpoint to survive capture -> restore -> capture byte-identically
  (:func:`checkpoint_roundtrip`).

Subjects are plain factories so the self-tests can reuse them, and the
registry is ordered (cheapest first) so ``--gate`` fails fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Union

from repro.apps.synthetic import SyntheticStateApp
from repro.chaos.runner import ChaosRun
from repro.chaos.schedule import ScheduleGenerator
from repro.faults.campaign import Campaign
from repro.faults.faultlib import AppCrash, BlueScreen, MiddlewareCrash, NodeFailure, NodeReboot
from repro.faults.injector import FaultInjector
from repro.harness.scenario import (
    ChaosScenario,
    build_demo,
    build_integrated,
    build_pair_env,
    build_remote_monitoring,
)
from repro.simnet.random import RngStreams
from repro.replay.runner import (
    ReplayResult,
    RoundTripResult,
    checkpoint_roundtrip,
    run_twice_and_diff,
)

CheckResult = Union[ReplayResult, RoundTripResult]

#: Default sim time a trace subject runs for (ms).
DEFAULT_DURATION = 30_000.0
#: Warm-up before a round-trip capture or a fault campaign (ms).
DEFAULT_WARMUP = 15_000.0


@dataclass(frozen=True)
class Subject:
    """One named determinism check."""

    name: str
    kind: str  #: "trace" or "roundtrip"
    description: str
    check: Callable[[int], CheckResult]  #: seed -> result


# -- trace subjects ---------------------------------------------------------


def _demo_trace(seed: int):
    scenario = build_demo(seed=seed)
    scenario.start()
    scenario.run_for(DEFAULT_DURATION)
    return scenario.trace


def _remote_monitoring_trace(seed: int):
    scenario = build_remote_monitoring(seed=seed)
    scenario.start()
    scenario.run_for(DEFAULT_DURATION)
    return scenario.trace


def _integrated_trace(seed: int):
    scenario = build_integrated(seed=seed)
    scenario.start()
    scenario.run_for(DEFAULT_DURATION)
    return scenario.trace


def _demo_campaign_trace(seed: int):
    """The §4 failure demos (a)-(d) as a replay subject.

    Returns ``(trace, campaign signature)`` so the checker gates on both
    the event stream and the per-injection outcomes.
    """
    scenario = build_demo(seed=seed)
    scenario.start()
    scenario.run_for(DEFAULT_WARMUP)
    campaign = Campaign(scenario.kernel, scenario, settle_timeout=30_000.0, inter_fault_gap=5_000.0)
    for make_fault in (
        lambda node: NodeFailure(node),
        lambda node: BlueScreen(node),
        lambda node: AppCrash(node, "calltrack"),
        lambda node: MiddlewareCrash(node),
    ):
        primary = scenario.pair.primary_node()
        campaign.run_fault(make_fault(primary))
        # Repair between demos, as exp_failover_demos does: reboot a
        # downed machine (or reinstall a crashed middleware) so the next
        # demo starts from a healthy pair.
        failed_system = scenario.systems[primary]
        if failed_system.state.value in ("off", "bluescreen"):
            FaultInjector(scenario.kernel, scenario).inject_now(NodeReboot(primary, reinstall=True))
        elif not scenario.pair.engines[primary].alive:
            scenario.pair.reinstall_node(primary)
        scenario.run_for(5_000.0)
    return scenario.trace, campaign.replay_signature()


def _chaos_trace(seed: int):
    """One generated chaos schedule as a replay subject.

    Returns ``(trace, RunResult wire form)`` so the checker gates on the
    full event stream *and* the report payload (violations, stats) —
    the byte-identity the ``repro.chaos/v1`` JSON contract promises.
    """
    generator = ScheduleGenerator(
        nodes=list(ChaosScenario.PAIR_NODES),
        links=["lan0"],
        process=ChaosScenario.APP_NAME,
        rng=RngStreams(seed).stream("chaos.schedule"),
    )
    run = ChaosRun(seed=seed, schedule=generator.generate())
    result = run.execute()
    return run.scenario.trace, result.as_wire()


def _chaos_policy_trace(seed: int):
    """The mixed drifting fault-mix under the adaptive policy.

    The policy layer's whole decision loop — regime classification,
    backoff governor, proactive failover, runtime strategy switching —
    runs inside the simulation kernel, so it must be exactly as
    deterministic as everything else.  Same gate as ``chaos``: trace
    stream plus the ``RunResult`` wire payload, run twice and diffed.
    """
    from repro.chaos.schedule import drift_schedule
    from repro.core.config import OfttConfig, replace_config

    schedule = drift_schedule("mixed", list(ChaosScenario.PAIR_NODES), ChaosScenario.APP_NAME)
    config = replace_config(OfttConfig(), adaptive_policy=True)
    run = ChaosRun(seed=seed, schedule=schedule, config=config)
    result = run.execute()
    return run.scenario.trace, result.as_wire()


# -- checkpoint round-trip subjects ----------------------------------------


def _roundtrip_scada(seed: int) -> RoundTripResult:
    scenario = build_remote_monitoring(seed=seed)
    scenario.start()
    scenario.run_for(DEFAULT_WARMUP)
    return checkpoint_roundtrip(scenario, scenario.primary_app(), subject="roundtrip-scada", seed=seed)


def _roundtrip_calltrack(seed: int) -> RoundTripResult:
    scenario = build_demo(seed=seed)
    scenario.start()
    scenario.run_for(DEFAULT_WARMUP)
    return checkpoint_roundtrip(scenario, scenario.primary_app(), subject="roundtrip-calltrack", seed=seed)


def _roundtrip_synthetic(mode: str, subject: str):
    def check(seed: int) -> RoundTripResult:
        scenario = build_pair_env(
            seed=seed,
            app_factory=lambda: SyntheticStateApp(cold_kb=8, mode=mode),
        )
        scenario.start()
        scenario.run_for(DEFAULT_WARMUP)
        return checkpoint_roundtrip(scenario, scenario.primary_app(), subject=subject, seed=seed)

    return check


def _trace_subject(name: str, description: str, factory) -> Subject:
    def check(seed: int) -> ReplayResult:
        return run_twice_and_diff(factory, seed=seed, subject=name)

    return Subject(name=name, kind="trace", description=description, check=check)


SUBJECTS: Dict[str, Subject] = {
    subject.name: subject
    for subject in [
        _trace_subject("demo", "Figure 3 Call Track testbed, fault-free run", _demo_trace),
        _trace_subject("remote-monitoring", "Figure 1(a) SCADA pair over an OPC server", _remote_monitoring_trace),
        _trace_subject("integrated", "Figure 1(b) integrated server+client pair", _integrated_trace),
        _trace_subject("demo-campaign", "§4 failure demos (a)-(d) with outcome signature", _demo_campaign_trace),
        _trace_subject("chaos", "one generated chaos schedule with monitors and report payload", _chaos_trace),
        _trace_subject("chaos-policy", "the mixed drift schedule under the adaptive recovery policy", _chaos_policy_trace),
        Subject(
            name="roundtrip-scada",
            kind="roundtrip",
            description="SCADA checkpoint capture->restore->capture byte stability",
            check=_roundtrip_scada,
        ),
        Subject(
            name="roundtrip-calltrack",
            kind="roundtrip",
            description="Call Track checkpoint capture->restore->capture byte stability",
            check=_roundtrip_calltrack,
        ),
        Subject(
            name="roundtrip-synthetic-full",
            kind="roundtrip",
            description="Synthetic app (full walkthrough) image byte stability",
            check=_roundtrip_synthetic("full", "roundtrip-synthetic-full"),
        ),
        Subject(
            name="roundtrip-synthetic-selective",
            kind="roundtrip",
            description="Synthetic app (OFTTSelSave) image byte stability",
            check=_roundtrip_synthetic("selective", "roundtrip-synthetic-selective"),
        ),
    ]
}


def run_subject(name: str, seed: int = 0) -> CheckResult:
    """Run one named subject and return its result."""
    return SUBJECTS[name].check(seed)


def check_subject_task(task: Tuple[str, int]) -> CheckResult:
    """Executor entry point: one ``(subject_name, seed)`` task.

    Module-level (pickled by reference) so ``oftt-replay --jobs`` can fan
    subjects out over :func:`repro.perf.executor.parallel_map`; the
    worker resolves the name against its own freshly imported registry.
    """
    name, seed = task
    return SUBJECTS[name].check(seed)


def subject_names(kind: str = "") -> List[str]:
    """Registered subject names, optionally filtered by kind."""
    return [name for name, subject in SUBJECTS.items() if not kind or subject.kind == kind]
