"""Teardown regression tests: nothing stays armed after orderly shutdown.

These back the lifecycle pass (LIFE001-006) with runtime proof: the
acquire/release pairs the linter checks statically really do balance at
the kernel level.  A leaked timer or watch here would keep a dead
engine's callbacks firing into fleet-scale campaign runs.
"""

from __future__ import annotations

from repro.core.config import RecoveryRule
from repro.core.status import ComponentKind

from tests.core.util import make_pair_world


def started_world():
    world = make_pair_world()
    world.start()
    world.run_for(3_000.0)
    return world


def make_component_process(world, node, name="userapp"):
    process = world.pair.contexts[node].system.create_process(name)
    process.start()
    return process


def test_shutdown_cancels_engine_timers_and_watches():
    world = started_world()
    for node in ("alpha", "beta"):
        engine = world.pair.engines[node]
        assert engine._hb_timer is not None  # armed while running
        engine.shutdown()
        assert engine._hb_timer is None
        assert engine._report_timer is None
        assert engine.monitor._timer is None
        assert engine.monitor.watched() == []


def test_unregister_component_releases_watch_hook_and_history():
    world = started_world()
    node = world.primary
    engine = world.pair.engines[node]
    process = make_component_process(world, node)

    engine.register_component(
        "userapp", ComponentKind.APPLICATION, process, rule=RecoveryRule()
    )
    assert "userapp" in engine.monitor.watched()
    hooks_before = len(process.on_exit)
    assert hooks_before >= 1  # exit hook installed

    engine.unregister_component("userapp")
    assert "userapp" not in engine.monitor.watched()
    assert len(process.on_exit) == hooks_before - 1
    assert "userapp" not in engine.components

    # The unhooked process can now exit without triggering recovery.
    process.exit(0)
    world.run_for(2_000.0)
    assert engine.alive

    # Idempotent, and a fresh registration works after the cycle.
    engine.unregister_component("userapp")
    replacement = make_component_process(world, node, name="userapp2")
    engine.register_component("userapp2", ComponentKind.APPLICATION, replacement)
    assert "userapp2" in engine.monitor.watched()


def test_full_pair_teardown_drains_the_kernel():
    world = started_world()
    for node in ("alpha", "beta"):
        world.pair.engines[node].shutdown()
    world.run_for(2_000.0)  # in-flight network deliveries drain
    for node in ("alpha", "beta"):
        world.pair.contexts[node].qmgr.stop()
    assert world.kernel.pending == 0


def test_monitor_detach_after_engine_death():
    world = started_world()
    node = world.primary
    engine = world.pair.engines[node]
    world.systems[node].power_off()
    world.run_for(100.0)
    assert not engine.alive
    # Death path releases the same resources the orderly path does.
    assert engine._hb_timer is None
    assert engine._report_timer is None
    assert engine.monitor.watched() == []
