"""Planted HOT001: constant container literal rebuilt on every hot call.

The corpus gate declares ``Hot.run`` as the hot root.
"""


class Hot:
    def run(self, value):
        return value in ["alpha", "beta", "gamma"]  # expect: HOT001
