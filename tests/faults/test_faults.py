"""Unit tests for the fault library, injector and campaign."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    AppCrash,
    AppHang,
    BlueScreen,
    Campaign,
    FaultInjector,
    FieldbusFailure,
    LinkDown,
    MiddlewareCrash,
    NetworkPartition,
    NicDown,
    NodeFailure,
    NodeReboot,
)
from repro.nt.system import SystemState

from tests.core.util import make_pair_world


def started_world(seed=0):
    world = make_pair_world(seed=seed)
    world.start()
    return world


def test_node_failure_powers_off():
    world = started_world()
    FaultInjector(world.kernel, world).inject_now(NodeFailure("alpha"))
    assert world.systems["alpha"].state is SystemState.OFF
    # Idempotent on an already-dead node.
    FaultInjector(world.kernel, world).inject_now(NodeFailure("alpha"))


def test_unknown_node_rejected():
    world = started_world()
    with pytest.raises(FaultInjectionError):
        FaultInjector(world.kernel, world).inject_now(NodeFailure("ghost"))


def test_bluescreen():
    world = started_world()
    FaultInjector(world.kernel, world).inject_now(BlueScreen("alpha"))
    assert world.systems["alpha"].state is SystemState.BLUESCREEN


def test_app_crash_and_hang():
    world = started_world()
    primary = world.primary
    injector = FaultInjector(world.kernel, world)
    injector.inject_now(AppHang(primary, "synthetic"))
    assert world.systems[primary].find_process("synthetic").state.value == "hung"
    injector.inject_now(AppCrash(primary, "synthetic"))
    # AppCrash on a hung (still alive) process kills it.
    assert not world.systems[primary].find_process("synthetic").alive


def test_middleware_crash():
    world = started_world()
    primary = world.primary
    FaultInjector(world.kernel, world).inject_now(MiddlewareCrash(primary))
    assert not world.pair.engines[primary].alive


def test_link_and_nic_faults():
    world = started_world()
    injector = FaultInjector(world.kernel, world)
    injector.inject_now(NicDown("alpha", "lan0"))
    assert not world.network.nodes["alpha"].nics["lan0"]
    injector.inject_now(LinkDown("lan0"))
    assert not world.network.links["lan0"].up
    with pytest.raises(FaultInjectionError):
        injector.inject_now(LinkDown("ghost"))


def test_network_partition_fault():
    world = started_world()
    FaultInjector(world.kernel, world).inject_now(NetworkPartition(["alpha"], ["beta"]))
    assert world.network.usable_path("alpha", "beta") is None


def test_fieldbus_fault():
    world = started_world()
    from repro.devices.fieldbus import Fieldbus

    bus = Fieldbus("bus0")
    world.fieldbuses["bus0"] = bus
    FaultInjector(world.kernel, world).inject_now(FieldbusFailure("bus0"))
    assert not bus.up
    with pytest.raises(FaultInjectionError):
        FaultInjector(world.kernel, world).inject_now(FieldbusFailure("ghost"))


def test_scheduled_injection():
    world = started_world()
    injector = FaultInjector(world.kernel, world)
    record = injector.inject_at(world.kernel.now + 1_000.0, NodeFailure("alpha"))
    assert not record.applied
    world.run_for(500.0)
    assert world.systems["alpha"].is_up
    world.run_for(600.0)
    assert record.applied
    assert world.systems["alpha"].state is SystemState.OFF
    assert len(injector.applied_faults()) == 1


def test_node_reboot_reinstalls_pair_member():
    world = started_world()
    world.run_for(2_000.0)
    victim = world.primary
    injector = FaultInjector(world.kernel, world)
    injector.inject_now(NodeFailure(victim))
    world.run_for(2_000.0)
    injector.inject_now(NodeReboot(victim, reinstall=True))
    world.run_for(5_000.0)
    assert world.systems[victim].is_up
    assert world.pair.engines[victim].role.value == "backup"


def test_campaign_measures_recovery():
    world = started_world()
    world.run_for(2_000.0)
    campaign = Campaign(world.kernel, world, settle_timeout=15_000.0)
    record = campaign.run_fault(NodeFailure(world.primary))
    assert record.recovered
    assert record.switched_over
    assert record.recovery_latency is not None
    assert 0 < record.recovery_latency < 5_000.0
    assert campaign.all_recovered()
    assert campaign.latencies()


def test_campaign_schedule_runs_multiple():
    world = started_world()
    world.run_for(2_000.0)
    campaign = Campaign(world.kernel, world, settle_timeout=15_000.0, inter_fault_gap=2_000.0)
    primary = world.primary
    records = campaign.run_schedule(
        [
            AppCrash(primary, "synthetic"),  # local restart
        ]
    )
    assert len(records) == 1
    assert records[0].recovered
    assert not records[0].switched_over  # default rule restarts locally first


def test_fault_descriptions_and_demo_ids():
    assert NodeFailure("n").demo_id == "a"
    assert BlueScreen("n").demo_id == "b"
    assert AppCrash("n", "p").demo_id == "c"
    assert MiddlewareCrash("n").demo_id == "d"
    assert "power-off" in NodeFailure("n").describe()
    assert "bluescreen" in BlueScreen("n").describe()


def test_sticky_app_crash_keeps_killing_until_expiry():
    from repro.faults import StickyAppCrash

    world = started_world()
    world.run_for(1_000.0)
    FaultInjector(world.kernel, world).inject_now(
        StickyAppCrash("alpha", "synthetic", duration=1_000.0, recheck=50.0)
    )
    # Mid-duration any relaunched process is re-killed within a recheck.
    world.run_for(500.0)
    process = world.systems["alpha"].find_process("synthetic")
    assert process is None or not process.alive
    # After expiry the stomp loop has disarmed: a fresh launch survives.
    world.run_for(1_000.0)
    world.systems["alpha"].create_process("synthetic").start()
    world.run_for(500.0)
    survivor = world.systems["alpha"].find_process("synthetic")
    assert survivor is not None and survivor.alive


def test_sticky_app_crash_validates_parameters():
    from repro.faults import StickyAppCrash

    with pytest.raises(FaultInjectionError):
        StickyAppCrash("alpha", "synthetic", duration=0.0)
    with pytest.raises(FaultInjectionError):
        StickyAppCrash("alpha", "synthetic", recheck=-1.0)


def test_sticky_app_crash_apply_is_one_shot():
    from repro.faults import StickyAppCrash

    world = started_world()
    fault = StickyAppCrash("alpha", "synthetic", duration=500.0)
    fault.apply(world)
    fault.apply(world)  # re-arming must not schedule a second stomp loop
    world.run_for(2_000.0)
