"""Clean twin of life003: close() reaps the process it launched."""


class AppHost:
    def __init__(self, system):
        self.system = system
        self.process = None
        self.launches = 0

    def launch(self):
        self.process = self.system.create_process("app")
        self.launches += 1
        return self.process

    def close(self):
        if self.process is not None:
            self.process.kill()
            self.process = None
