"""Tests for the durable-save extension (OFTTSaveDurable)."""

from repro.simnet.events import Timeout

from tests.core.util import make_pair_world


def drive(world, generator, duration=10_000.0):
    outcome = {}

    def runner():
        outcome["value"] = yield from generator

    world.kernel.spawn(runner())
    world.run_for(duration)
    return outcome


def test_durable_save_confirms_replication():
    world = make_pair_world(seed=95)
    world.start()
    world.run_for(2_000.0)
    app = world.pair.apps[world.primary]
    backup_engine = world.pair.engines[world.backup]

    def save():
        confirmed = yield app.api.OFTTSaveDurable()
        return confirmed

    outcome = drive(world, save())
    assert outcome["value"] is True
    # The backup really holds it.
    assert backup_engine.peer_store.latest_sequence("synthetic") >= app.api.ftim.last_sequence


def test_durable_save_times_out_without_backup():
    world = make_pair_world(seed=96)
    world.start()
    world.run_for(2_000.0)
    backup = world.backup
    world.systems[backup].power_off()
    world.run_for(2_000.0)
    app = world.pair.apps[world.primary]

    def save():
        confirmed = yield app.api.OFTTSaveDurable(timeout=1_500.0)
        return confirmed

    outcome = drive(world, save())
    assert outcome["value"] is False  # degraded: no ack arrived


def test_durable_save_already_acked_fires_immediately():
    world = make_pair_world(seed=97)
    world.start()
    world.run_for(3_000.0)
    engine = world.pair.engines[world.primary]
    # Some sequence long acked.
    event = engine.ack_event_for(1)
    assert event.fired and event.value is True


def test_state_durably_saved_survives_immediate_failover():
    """Write state, durably save, kill the node the instant the save
    confirms: the survivor must have that exact state."""
    world = make_pair_world(seed=98)
    world.start()
    world.run_for(2_000.0)
    primary = world.primary
    app = world.pair.apps[primary]
    space = app.process.address_space

    def mutate_and_save():
        space.write("hot_00", 777_777)
        confirmed = yield app.api.OFTTSaveDurable()
        assert confirmed
        world.systems[primary].power_off()  # die right after confirmation

    world.kernel.spawn(mutate_and_save())
    world.run_for(5_000.0)
    survivor = world.primary
    assert survivor != primary
    # The survivor restored from the durably saved checkpoint (its copy
    # keeps ticking upward from there, so >= rather than ==).
    restored = world.pair.engines[survivor].peer_store.latest("synthetic")
    assert restored.image["globals"]["hot_00"] == 777_777
    assert world.pair.apps[survivor].process.address_space.read("hot_00") >= 777_777
