"""Clean twin of hot004: the digest is memoized behind a None guard."""

import hashlib


class Hot:
    def __init__(self):
        self._digest = None

    def run(self, payload):
        if self._digest is None:
            self._digest = hashlib.sha256(payload).hexdigest()
        return self._digest
