"""Plain-text rendering of experiment results.

Benchmarks print through these helpers so the console output of
``pytest benchmarks/ --benchmark-only`` doubles as the regenerated
"tables" recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    columns = [list(map(_fmt, column)) for column in zip(headers, *rows)] if rows else [[_fmt(h)] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: List[str] = []
    if title:
        lines.append(f"== {title} ==")
    header_line = "  ".join(h.ljust(w) for h, w in zip(map(_fmt, headers), widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, points: Sequence[Any], unit: str = "") -> str:
    """Render a one-line data series (for EXPERIMENTS.md snippets)."""
    rendered = ", ".join(_fmt(point) for point in points)
    suffix = f" {unit}" if unit else ""
    return f"{name}: [{rendered}]{suffix}"


def format_dict(title: str, data: Dict[str, Any]) -> str:
    """Render a key/value block."""
    width = max((len(key) for key in data), default=0)
    lines = [f"== {title} =="]
    for key in data:
        lines.append(f"{key.ljust(width)} : {_fmt(data[key])}")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)
