"""Unit tests for pair assembly (OfttPair)."""

import pytest

from repro.apps.synthetic import SyntheticStateApp
from repro.core.cluster import OfttPair
from repro.core.config import OfttConfig
from repro.errors import OfttError

from tests.conftest import make_world
from tests.core.util import make_pair_world


def test_pair_requires_exactly_two_systems():
    world = make_world()
    world.add_machine("only")
    with pytest.raises(OfttError):
        OfttPair(world.network, dict(world.systems), OfttConfig(), SyntheticStateApp)


def test_pair_requires_booted_machines():
    world = make_world()
    world.add_machine("a")
    world.add_machine("b", boot=False)
    with pytest.raises(OfttError):
        OfttPair(world.network, dict(world.systems), OfttConfig(), SyntheticStateApp)


def test_settle_reaches_stable_state():
    world = make_pair_world()
    world.pair.start()
    settled_at = world.pair.settle()
    assert world.pair.is_stable()
    assert settled_at < 5_000.0


def test_settle_times_out_when_unstable():
    world = make_pair_world()
    # Never started: can't stabilise.
    with pytest.raises(OfttError):
        world.pair.settle(max_time=1_000.0)


def test_queries():
    world = make_pair_world()
    world.start()
    primary = world.pair.primary_node()
    backup = world.pair.backup_node()
    assert {primary, backup} == {"alpha", "beta"}
    assert world.pair.running_app_nodes() == [primary]
    assert world.pair.engine(primary).role.value == "primary"
    assert world.pair.app(primary).running


def test_multi_app_pair_runs_all_apps_on_primary():
    world = make_pair_world(
        app_factory=lambda: [
            SyntheticStateApp(cold_kb=1, mode="selective"),
            _SecondApp(),
        ]
    )
    world.start()
    primary = world.primary
    apps = world.pair.all_apps[primary]
    assert len(apps) == 2
    assert all(app.running for app in apps)
    backup_apps = world.pair.all_apps[world.backup]
    assert not any(app.running for app in backup_apps)


def test_multi_app_failover_moves_both():
    world = make_pair_world(
        app_factory=lambda: [
            SyntheticStateApp(cold_kb=1, mode="selective"),
            _SecondApp(),
        ]
    )
    world.start()
    old_primary = world.primary
    world.run_for(3_000.0)
    world.systems[old_primary].power_off()
    world.run_for(3_000.0)
    new_primary = world.primary
    assert new_primary != old_primary
    assert all(app.running for app in world.pair.all_apps[new_primary])


def test_reinstall_node_rejoins_as_backup():
    world = make_pair_world()
    world.start()
    world.run_for(2_000.0)
    victim = world.primary
    world.systems[victim].power_off()
    world.run_for(2_000.0)
    world.systems[victim].reboot()
    world.run_for(2_000.0)
    world.pair.reinstall_node(victim)
    world.run_for(3_000.0)
    assert world.pair.engines[victim].role.value == "backup"
    assert world.pair.is_stable()
    # Checkpoints flow to the rejoined backup again.
    world.run_for(3_000.0)
    assert world.pair.engines[victim].peer_store.latest("synthetic") is not None


def test_reinstall_requires_up_machine():
    world = make_pair_world()
    world.start()
    victim = world.primary
    world.systems[victim].power_off()
    with pytest.raises(OfttError):
        world.pair.reinstall_node(victim)


class _SecondApp(SyntheticStateApp):
    """A second distinct managed application for multi-app tests."""

    name = "second"

    def __init__(self):
        super().__init__(cold_kb=1, mode="selective")
