"""Canonical event stream: sequence numbers, key identity, wire form."""

from __future__ import annotations

from repro.replay.canonical import CanonicalEvent, canonicalize_trace
from repro.simnet.trace import TraceLog


def _log_with(records):
    clock_value = [0.0]
    log = TraceLog(clock=lambda: clock_value[0])
    for time, category, component, event, detail in records:
        clock_value[0] = time
        log.emit(category, component, event, **detail)
    return log


def test_per_component_sequence_numbers():
    log = _log_with(
        [
            (1.0, "ft", "engine:a", "heartbeat", {}),
            (2.0, "ft", "engine:b", "heartbeat", {}),
            (3.0, "ft", "engine:a", "heartbeat", {}),
            (4.0, "ft", "engine:a", "takeover", {}),
        ]
    )
    events = canonicalize_trace(log)
    assert [e.component_seq for e in events] == [1, 1, 2, 3]
    assert [e.index for e in events] == [0, 1, 2, 3]


def test_detail_is_canonicalized():
    log = _log_with([(1.0, "ft", "engine", "tick", {"zeta": 0.1 + 0.2, "alpha": 1})])
    (event,) = canonicalize_trace(log)
    assert list(event.detail) == ["alpha", "zeta"]
    assert event.detail["zeta"] == 0.3


def test_key_ignores_global_index():
    a = CanonicalEvent(index=3, time=1.0, category="ft", component="c", event="e", component_seq=1, detail={})
    b = CanonicalEvent(index=9, time=1.0, category="ft", component="c", event="e", component_seq=1, detail={})
    assert a.key() == b.key()
    assert a.as_wire()["index"] != b.as_wire()["index"]


def test_render_names_component_and_seq():
    log = _log_with([(1.5, "ft", "engine:a", "takeover", {"why": "timeout"})])
    (event,) = canonicalize_trace(log)
    line = event.render()
    assert "engine:a" in line
    assert "takeover" in line
    assert "seq 1" in line
