"""The repro.bench/v1 contract: deterministic view, rendering, numbering."""

from __future__ import annotations

import json

from repro.bench.benches import bench_kernel_events, bench_trace_emits
from repro.bench.report import SCHEMA, build_report, deterministic_view, next_bench_path, render_json


def _report(benches):
    return build_report(benches, profile="quick", jobs=2,
                        host={"cpu_count": 1, "python": "3.11", "platform": "linux"})


def test_render_json_is_canonical():
    rendered = render_json(_report([]))
    assert rendered.endswith("\n")
    payload = json.loads(rendered)
    assert payload["schema"] == SCHEMA
    assert list(payload) == sorted(payload)


def test_deterministic_view_strips_measured_and_host():
    bench = {"name": "x", "work": {"n": 3}, "measured": {"wall_s": 0.5}}
    view = deterministic_view(_report([bench]))
    assert "host" not in view
    assert view["benches"] == [{"name": "x", "work": {"n": 3}}]


def test_micro_bench_work_is_byte_stable_across_runs():
    # The work half of a bench is a pure function of its parameters; only
    # the measured half may differ between two identical runs.
    def view(benches):
        return render_json(deterministic_view(_report(benches)))

    first = view([bench_kernel_events(2_000), bench_trace_emits(2_000)])
    second = view([bench_kernel_events(2_000), bench_trace_emits(2_000)])
    assert first == second


def test_bench_work_checks_pass():
    kernel = bench_kernel_events(2_000)
    assert kernel["work"]["drained"] is True
    assert kernel["work"]["fired"] == kernel["work"]["scheduled"] - kernel["work"]["cancelled"]
    trace = bench_trace_emits(2_000)
    assert trace["work"]["fingerprint_stable"] is True
    assert trace["work"]["emitted"] == 2_000


def test_next_bench_path_numbers_sequentially(tmp_path):
    assert next_bench_path(str(tmp_path)).endswith("BENCH_1.json")
    (tmp_path / "BENCH_1.json").write_text("{}")
    (tmp_path / "BENCH_7.json").write_text("{}")
    (tmp_path / "BENCH_notes.txt").write_text("ignored")
    assert next_bench_path(str(tmp_path)).endswith("BENCH_8.json")
