"""Deterministic parallel execution for independent seeded runs.

The subsystem has three parts (see PERF.md):

* :mod:`repro.perf.executor` — a process-pool fan-out whose merged
  results are byte-identical to the serial run regardless of worker
  count.  Wired into ``oftt-chaos --jobs``, ``oftt-replay --jobs`` and
  ``run_experiments --jobs``.
* :mod:`repro.perf.grid` — canonical-order parameter grids for sweeps.
* :mod:`repro.perf.sweep` — the detector-sensitivity sweep
  (``heartbeat_miss_threshold`` x ``heartbeat_timeout`` over chaos
  schedules; published in EXPERIMENTS.md).

``python -m repro.perf`` / ``oftt-perf`` exposes the parallel-equivalence
gate (``check-chaos``) used by ``make verify`` and the sweep CLI.
"""

from repro.perf.executor import parallel_map, resolve_jobs
from repro.perf.grid import grid_points

__all__ = ["parallel_map", "resolve_jobs", "grid_points"]
