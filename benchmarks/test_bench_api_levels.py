"""Benchmark X7: API transparency levels.

Paper design (§2.2.2): OFTT "allows the application to use the fault
tolerance in different levels of transparency" — from a single
``OFTTInitialize`` line, through ``OFTTSelSave`` designation, to
event-based ``OFTTSave``.

This harness runs the Call Track workload at three integration levels
and reports checkpoint traffic vs state lost at failover.

Expected shape: L1 (init-only) ships the biggest checkpoints; L2
(selective) shrinks them; L3 (event-based) checkpoints most often and
loses no completed calls at failover — the paper's argument for a
non-transparent, user-directed API.
"""

from repro.harness.experiments import exp_api_levels

from benchmarks.conftest import print_rows


def test_bench_api_levels(benchmark):
    rows = benchmark.pedantic(lambda: exp_api_levels(seed=23), rounds=1, iterations=1)
    print_rows("X7: integration level vs checkpoint cost and staleness", rows)
    levels = {row["level"]: row for row in rows}
    assert levels["L2 selective"]["mean_checkpoint_bytes"] < levels["L1 init-only"]["mean_checkpoint_bytes"]
    assert levels["L3 event-based"]["checkpoints_taken"] >= levels["L2 selective"]["checkpoints_taken"]
    assert levels["L3 event-based"]["events_lost"] == 0
