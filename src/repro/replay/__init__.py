"""Dynamic replay-divergence checking (the runtime counterpart to
:mod:`repro.analysis`).

The static linter flags *patterns* that tend to produce nondeterminism;
this package proves (or disproves) determinism dynamically: run a
scenario twice with the same seed, canonicalize both trace logs, and
diff them event-by-event.  The first divergence — time, component,
event, detail delta, plus surrounding context from both runs — is the
bug report.

Entry points:

* :func:`repro.replay.runner.run_twice_and_diff` — programmatic API.
* ``python -m repro.replay`` / ``oftt-replay`` — CLI with text and JSON
  (``repro.replay/v1``) reporters; ``--gate`` is the ``make verify``
  hook.
* ``python -m repro.harness.run_experiments --replay-check`` — the same
  idea applied to experiment *results* instead of traces.
"""

from repro.replay.canonical import CanonicalEvent, canonicalize_trace
from repro.replay.diff import Divergence, FieldDelta, first_divergence
from repro.replay.runner import (
    ReplayResult,
    RoundTripResult,
    checkpoint_roundtrip,
    run_twice_and_diff,
)

__all__ = [
    "CanonicalEvent",
    "canonicalize_trace",
    "Divergence",
    "FieldDelta",
    "first_divergence",
    "ReplayResult",
    "RoundTripResult",
    "checkpoint_roundtrip",
    "run_twice_and_diff",
]
