"""Yieldable synchronization primitives for simulation processes.

A :class:`~repro.simnet.kernel.Process` drives a generator.  The generator
yields one of the objects defined here (or another ``Process``) and is
resumed when that object *fires*.  The value the object fired with becomes
the result of the ``yield`` expression.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.errors import SimError


class Waitable:
    """Base class for everything a process may ``yield``.

    A waitable fires at most once.  Callbacks registered after it fired are
    invoked immediately (so late waiters do not hang).
    """

    def __init__(self) -> None:
        self._fired = False
        self._value: Any = None
        self._callbacks: List[Callable[["Waitable"], None]] = []

    @property
    def fired(self) -> bool:
        """Whether this waitable has already fired."""
        return self._fired

    @property
    def value(self) -> Any:
        """The value this waitable fired with (``None`` before firing)."""
        return self._value

    def add_callback(self, callback: Callable[["Waitable"], None]) -> None:
        """Invoke *callback(self)* when the waitable fires."""
        if self._fired:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self, value: Any = None) -> None:
        if self._fired:
            raise SimError(f"{self!r} fired twice")
        self._fired = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _arm(self, kernel) -> None:
        """Hook for the kernel: schedule whatever makes this fire.

        Most waitables are externally triggered and need nothing;
        :class:`Timeout` (and composites containing one) override this.
        """


class Timeout(Waitable):
    """Fires after *delay* units of simulated time.

    The kernel arms the timeout when the yielding process is suspended.
    """

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimError(f"negative timeout delay: {delay}")
        super().__init__()
        self.delay = delay
        self.timeout_value = value
        self._armed = False

    def _arm(self, kernel) -> None:
        if self._armed or self._fired:
            return
        self._armed = True
        kernel.schedule(self.delay, self._fire_if_needed)

    def _fire_if_needed(self) -> None:
        if not self._fired:
            self._fire(self.timeout_value)

    def __repr__(self) -> str:
        return f"Timeout({self.delay})"


class Event(Waitable):
    """A manually triggered event.

    Any number of processes may wait on the same event; all are resumed
    with the value passed to :meth:`succeed`.
    """

    def __init__(self, name: str = "") -> None:
        super().__init__()
        self.name = name

    def succeed(self, value: Any = None) -> None:
        """Fire the event, resuming all waiters."""
        self._fire(value)

    def __repr__(self) -> str:
        label = self.name or hex(id(self))
        return f"Event({label}, fired={self._fired})"


class AnyOf(Waitable):
    """Fires when the first of *waitables* fires.

    The value is a ``(index, value)`` pair identifying which child fired
    first and what it carried.  Children that fire later are ignored.
    """

    def __init__(self, waitables: List[Waitable]) -> None:
        if not waitables:
            raise SimError("AnyOf requires at least one waitable")
        super().__init__()
        self.waitables = list(waitables)
        for index, waitable in enumerate(self.waitables):
            waitable.add_callback(self._make_child_callback(index))

    def _arm(self, kernel) -> None:
        for waitable in self.waitables:
            waitable._arm(kernel)

    def _make_child_callback(self, index: int) -> Callable[[Waitable], None]:
        def on_child(child: Waitable) -> None:
            if not self._fired:
                self._fire((index, child.value))

        return on_child

    def __repr__(self) -> str:
        return f"AnyOf({len(self.waitables)} children, fired={self._fired})"


class AllOf(Waitable):
    """Fires when every one of *waitables* has fired.

    The value is the list of child values in construction order.
    """

    def __init__(self, waitables: List[Waitable]) -> None:
        if not waitables:
            raise SimError("AllOf requires at least one waitable")
        super().__init__()
        self.waitables = list(waitables)
        self._remaining = len(self.waitables)
        for waitable in self.waitables:
            waitable.add_callback(self._on_child)

    def _arm(self, kernel) -> None:
        for waitable in self.waitables:
            waitable._arm(kernel)

    def _on_child(self, _child: Waitable) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self._fired:
            self._fire([w.value for w in self.waitables])

    def __repr__(self) -> str:
        return f"AllOf({len(self.waitables)} children, fired={self._fired})"


class Condition(Waitable):
    """Fires the first time :meth:`poll` is called with the predicate true.

    Useful for level-triggered waits where the kernel has no edge to hook:
    the owner calls ``poll()`` whenever relevant state changes.
    """

    def __init__(self, predicate: Callable[[], bool], name: str = "") -> None:
        super().__init__()
        self.predicate = predicate
        self.name = name

    def poll(self) -> bool:
        """Evaluate the predicate; fire (once) if it holds.

        Returns whether the condition has fired (now or earlier).
        """
        if not self._fired and self.predicate():
            self._fire(True)
        return self._fired

    def __repr__(self) -> str:
        return f"Condition({self.name or 'anonymous'}, fired={self._fired})"


def first_fired(composite_value: Any) -> Optional[int]:
    """Return the child index from an :class:`AnyOf` yield value."""
    if composite_value is None:
        return None
    index, _value = composite_value
    return index
