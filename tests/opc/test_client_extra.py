"""Additional OPC client coverage: remote item management, writes,
activation flags, server status, and failure paths."""

import pytest

from repro.com.runtime import ComRuntime
from repro.errors import RpcError
from repro.opc.client import OpcClient
from repro.opc.server import OpcServer

from tests.conftest import make_world


def make_env():
    world = make_world()
    server_sys = world.add_machine("server")
    client_sys = world.add_machine("client")
    server_rt = ComRuntime(server_sys, world.network)
    client_rt = ComRuntime(client_sys, world.network)
    server = OpcServer(server_rt, "OPC.E.1")
    server.namespace.define_simple("a", 1.0)
    server.namespace.define_simple("b", 2.0)
    server.namespace.define_simple("sp", 0.0, access="read_write")
    server_ref = server_rt.export(server)
    return world, server, server_ref, client_rt


def drive(world, generator, duration=5_000.0):
    outcome = {}

    def runner():
        outcome["value"] = yield from generator

    world.kernel.spawn(runner())
    world.run_for(duration)
    return outcome


def test_remote_remove_items():
    world, server, server_ref, client_rt = make_env()
    client = OpcClient(client_rt, "c")

    def use():
        yield from client.connect_remote(server_ref)
        group = yield from client.add_group("g")
        handles = yield from group.add_items(["a", "b"])
        yield from group.remove_items([handles[0]])
        return group

    outcome = drive(world, use())
    group_handle = outcome["value"]
    assert list(group_handle.handles.values()) == ["b"]
    assert len(server.GetGroupByName("g").items) == 1


def test_remote_sync_write_through_group():
    world, server, server_ref, client_rt = make_env()
    writes = []
    server.namespace.on_write("sp", lambda item, value: writes.append(value))
    client = OpcClient(client_rt, "c")

    def use():
        yield from client.connect_remote(server_ref)
        group = yield from client.add_group("g")
        handles = yield from group.add_items(["sp"])
        yield from group.sync_write([(handles[0], 42.0)])

    drive(world, use())
    assert writes == [42.0]


def test_remote_set_active():
    world, server, server_ref, client_rt = make_env()
    client = OpcClient(client_rt, "c")

    def use():
        yield from client.connect_remote(server_ref)
        group = yield from client.add_group("g")
        yield from group.set_active(False)

    drive(world, use())
    assert server.GetGroupByName("g").active is False


def test_remote_server_status_and_write_items():
    world, server, server_ref, client_rt = make_env()
    writes = []
    server.namespace.on_write("sp", lambda item, value: writes.append(value))
    client = OpcClient(client_rt, "c")

    def use():
        yield from client.connect_remote(server_ref)
        status = yield from client.server_status()
        yield from client.write_items([("sp", 7.0)])
        return status

    outcome = drive(world, use())
    assert outcome["value"]["name"] == "OPC.E.1"
    assert writes == [7.0]


def test_connect_remote_to_dead_server_raises():
    world, server, server_ref, client_rt = make_env()
    world.systems["server"].power_off()
    client = OpcClient(client_rt, "c")

    def use():
        try:
            yield from client.connect_remote(server_ref)
            return "connected"
        except RpcError:
            return "failed"

    outcome = drive(world, use(), duration=10_000.0)
    assert outcome["value"] == "failed"


def test_group_handle_repr_modes():
    world, server, server_ref, client_rt = make_env()
    client = OpcClient(client_rt, "c")

    def use():
        yield from client.connect_remote(server_ref)
        group = yield from client.add_group("g")
        return group

    outcome = drive(world, use())
    assert outcome["value"].is_remote
    local_client = OpcClient(client_rt, "lc")
    local_client.connect_local(server)

    def use_local():
        group = yield from local_client.add_group("g2")
        return group

    outcome2 = drive(world, use_local())
    assert not outcome2["value"].is_remote
