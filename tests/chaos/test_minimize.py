"""ddmin minimizer tests."""

from repro.chaos.cli import SELF_TEST_ENTRIES, SELF_TEST_HORIZON, SELF_TEST_SABOTAGE
from repro.chaos.minimize import _split, minimize_schedule
from repro.chaos.schedule import ChaosSchedule


def test_split_contiguous_no_empties():
    assert _split([0, 1, 2, 3, 4], 2) == [[0, 1, 2], [3, 4]]
    assert _split([0, 1, 2], 3) == [[0], [1], [2]]
    assert _split([0, 1], 5) == [[0], [1]]
    assert _split([7], 1) == [[7]]


def test_split_covers_all_indices():
    indices = list(range(11))
    for parts in range(1, 14):
        chunks = _split(indices, parts)
        flat = [i for chunk in chunks for i in chunk]
        assert flat == indices
        assert all(chunks)


def test_minimize_self_test_schedule_to_partition_and_heal():
    schedule = ChaosSchedule(entries=list(SELF_TEST_ENTRIES), horizon=SELF_TEST_HORIZON)
    result = minimize_schedule(0, schedule, "split-brain", sabotage_name=SELF_TEST_SABOTAGE)
    assert result.reproduced
    assert result.original_size == len(SELF_TEST_ENTRIES)
    assert result.minimal_size <= 3
    kinds = sorted(entry.kind for entry in result.schedule.entries)
    assert kinds == ["heal-network", "partition"]
    assert result.runs_used >= 1


def test_minimize_reports_non_reproduction():
    schedule = ChaosSchedule(entries=list(SELF_TEST_ENTRIES), horizon=SELF_TEST_HORIZON)
    # Without the sabotage the pair recovers; split-brain never fires.
    result = minimize_schedule(0, schedule, "split-brain")
    assert not result.reproduced
    assert result.minimal_size == result.original_size
    assert result.runs_used == 1


def test_minimization_wire_form_is_json_safe():
    schedule = ChaosSchedule(entries=list(SELF_TEST_ENTRIES), horizon=SELF_TEST_HORIZON)
    result = minimize_schedule(0, schedule, "split-brain", sabotage_name=SELF_TEST_SABOTAGE)
    wire = result.as_wire()
    assert wire["invariant"] == "split-brain"
    assert wire["minimal_size"] == len(wire["schedule"]["entries"])
    assert wire["kept_indices"] == sorted(wire["kept_indices"])
