"""The OFTT application programming interface (§2.2.2).

"At the minimum, [``OFTTInitialize``] is the only API an application needs
to add in order to use the OFTT services" — the different levels of
transparency the paper describes map onto how much of this surface an
application touches:

1. **Init-only**: call :meth:`OfttApi.OFTTInitialize` and nothing else.
   Heartbeats and full periodic checkpoints happen automatically.
2. **Selective**: also designate variables with :meth:`OFTTSelSave`,
   reducing checkpoint size (the user-directed optimisation of [10, 11]).
3. **Event-based**: additionally call :meth:`OFTTSave` at semantically
   significant moments, and use watchdogs / :meth:`OFTTDistress`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.appdriver import NodeContext
from repro.core.config import RecoveryRule
from repro.core.ftim import ClientFtim, ServerFtim
from repro.core.roles import Role
from repro.core.status import ComponentKind
from repro.core.watchdog import WatchdogTimer
from repro.errors import NotInitialized, OfttError, WatchdogError
from repro.nt.process import NTProcess


class OfttApi:
    """Per-application handle to the OFTT services on its node.

    Construct one inside the application's ``launch`` with the hosting
    process, then call :meth:`OFTTInitialize`.
    """

    def __init__(self, context: NodeContext, app_name: str, process: NTProcess) -> None:
        self.context = context
        self.app_name = app_name
        self.process = process
        self.ftim: Optional[ServerFtim] = None
        self._watchdogs = {}

    # -- initialization ---------------------------------------------------------

    def OFTTInitialize(
        self,
        stateful: bool = True,
        checkpoint_period: Optional[float] = None,
        recovery_rule: Optional[RecoveryRule] = None,
    ) -> None:
        """Attach OFTT services to the application.

        Parameters
        ----------
        stateful:
            True links the checkpointing client FTIM; False links the
            stateless server FTIM (OPC servers).
        checkpoint_period:
            Override the configured checkpoint interval.
        recovery_rule:
            Static recovery rule for this component (the paper's
            compile-time option).
        """
        engine = self.context.engine
        if engine is None or not engine.alive:
            raise OfttError(f"no running OFTT engine on {self.context.node_name}")
        if self.ftim is not None:
            raise OfttError(f"{self.app_name}: OFTTInitialize called twice")
        if stateful:
            self.ftim = ClientFtim(engine, self.app_name, self.process, checkpoint_period=checkpoint_period)
            kind = ComponentKind.APPLICATION
        else:
            self.ftim = ServerFtim(engine, self.app_name, self.process)
            kind = ComponentKind.OPC_SERVER
        engine.register_component(self.app_name, kind, self.process, rule=recovery_rule)

    def _require_init(self) -> ServerFtim:
        if self.ftim is None:
            raise NotInitialized(f"{self.app_name}: call OFTTInitialize first")
        return self.ftim

    def _require_client_ftim(self) -> ClientFtim:
        ftim = self._require_init()
        if not isinstance(ftim, ClientFtim):
            raise OfttError(f"{self.app_name}: checkpoint APIs need a stateful FTIM")
        return ftim

    # -- checkpoint control -------------------------------------------------------

    def OFTTSelSave(self, region: str, variables: Optional[List[str]] = None) -> None:
        """Designate checkpoint content (variables of a memory region)."""
        self._require_client_ftim().select_variables(region, variables)

    def OFTTSave(self) -> int:
        """Checkpoint immediately, without waiting for the period.

        Returns the checkpoint sequence number.
        """
        sequence = self._require_client_ftim().TakeCheckpoint()
        assert sequence is not None
        return sequence

    def OFTTSaveDurable(self, timeout: Optional[float] = None):
        """Checkpoint now and wait for the peer's acknowledgement.

        Returns a waitable the calling thread ``yield``s: it fires True
        once the backup has stored this checkpoint (the state change is
        then provably replicated), or False after *timeout* — e.g. while
        running degraded with no backup.  This closes the window plain
        :meth:`OFTTSave` leaves between taking a checkpoint and the peer
        actually holding it.
        """
        sequence = self.OFTTSave()
        return self.context.engine.ack_event_for(sequence, timeout=timeout)

    # -- role query ------------------------------------------------------------------

    def OFTTGetMyRole(self) -> str:
        """Role of this node: ``"primary"`` / ``"backup"`` / ..."""
        self._require_init()
        engine = self.context.engine
        return engine.role.value if engine is not None else Role.UNDECIDED.value

    # -- watchdogs ----------------------------------------------------------------------

    def OFTTWatchdogCreate(self, name: str) -> WatchdogTimer:
        """Create a reliable watchdog owned by this application."""
        self._require_init()
        engine = self.context.engine
        watchdog = engine.watchdog_create(f"{self.app_name}:{name}", self.app_name)
        self._watchdogs[name] = watchdog
        return watchdog

    def OFTTWatchdogSet(self, name: str, period: float) -> None:
        """Arm the named watchdog."""
        self._watchdog(name).set(period)

    def OFTTWatchdogReset(self, name: str) -> None:
        """Pet the named watchdog."""
        self._watchdog(name).reset()

    def OFTTWatchdogDelete(self, name: str) -> None:
        """Destroy the named watchdog."""
        self._watchdog(name).delete()
        del self._watchdogs[name]

    def close(self) -> None:
        """Destroy every watchdog this API handle still owns.

        Applications normally delete their own watchdogs; close() is the
        backstop for teardown paths (app unload, component unregister)
        so no armed watchdog outlives the application that pets it.
        """
        for name in sorted(self._watchdogs):
            watchdog = self._watchdogs[name]
            if not watchdog.deleted:
                watchdog.delete()
        self._watchdogs.clear()

    def _watchdog(self, name: str) -> WatchdogTimer:
        if name not in self._watchdogs:
            raise WatchdogError(f"{self.app_name}: no watchdog {name}")
        return self._watchdogs[name]

    # -- recovery rules -----------------------------------------------------------------------

    def OFTTSetRecoveryRule(self, rule: RecoveryRule) -> None:
        """Change this application's recovery rule at run time.

        §2.2.1 allows the rule "either statically at compilation time or
        dynamically at run-time" but notes "the current implementation
        only supports static decision" — this is that future work,
        implemented.
        """
        self._require_init()
        self.context.engine.set_recovery_rule(self.app_name, rule)

    # -- distress --------------------------------------------------------------------------

    def OFTTDistress(self, reason: str) -> None:
        """Report a significant problem and request a switchover
        (honoured only "if application on the peer node is functional")."""
        self._require_init()
        engine = self.context.engine
        engine.request_switchover(f"distress from {self.app_name}: {reason}")

    def __repr__(self) -> str:
        state = "initialized" if self.ftim is not None else "uninitialized"
        return f"OfttApi({self.app_name} on {self.context.node_name}, {state})"
