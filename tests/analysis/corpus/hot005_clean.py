"""Clean twin of hot005: the per-event class declares __slots__."""


class Item:
    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key


class Hot:
    def run(self, key):
        return Item(key)
