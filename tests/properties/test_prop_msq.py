"""Property-based tests of the MSMQ transport under adverse networks.

Invariant (matching DESIGN.md): every persistent message accepted by the
sender is eventually delivered to the destination queue exactly once, for
any combination of frame loss and transient outages — as long as the
destination is reachable again for long enough afterwards.
"""

from hypothesis import given, settings, strategies as st

from repro.msq.manager import QueueManager

from tests.conftest import make_world


@given(
    loss=st.floats(min_value=0.0, max_value=0.6),
    count=st.integers(min_value=1, max_value=25),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_persistent_delivery_exactly_once_under_loss(loss, count, seed):
    world = make_world(seed=seed)
    world.add_machine("sender")
    world.add_machine("receiver")
    sender = QueueManager(world.kernel, world.network, world.network.nodes["sender"])
    receiver = QueueManager(world.kernel, world.network, world.network.nodes["receiver"])
    receiver.create_queue("inbox")
    world.network.links["lan0"].loss = loss
    for index in range(count):
        sender.send("receiver", "inbox", index)
    # Generous drain time: retry interval 250 ms, loss up to 60 %.
    world.run_for(60_000.0)
    queue = receiver.open_queue("inbox")
    bodies = []
    while True:
        message = queue.receive()
        if message is None:
            break
        bodies.append(message.body)
    assert sorted(bodies) == list(range(count))
    assert sender.pending_count() == 0


@given(
    outage_start=st.floats(min_value=0.0, max_value=2_000.0),
    outage_length=st.floats(min_value=100.0, max_value=8_000.0),
    count=st.integers(min_value=1, max_value=15),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_persistent_delivery_across_receiver_outage(outage_start, outage_length, count, seed):
    world = make_world(seed=seed)
    world.add_machine("sender")
    world.add_machine("receiver")
    sender = QueueManager(world.kernel, world.network, world.network.nodes["sender"])
    receiver = QueueManager(world.kernel, world.network, world.network.nodes["receiver"])
    receiver.attach_to_system(world.systems["receiver"])
    receiver.create_queue("inbox")
    world.kernel.schedule(outage_start, world.systems["receiver"].power_off)
    world.kernel.schedule(outage_start + outage_length, world.systems["receiver"].reboot)
    for index in range(count):
        sender.send("receiver", "inbox", index)
    world.run_for(outage_start + outage_length + 30_000.0)
    queue = receiver.open_queue("inbox")
    bodies = []
    while True:
        message = queue.receive()
        if message is None:
            break
        bodies.append(message.body)
    assert sorted(bodies) == list(range(count))
