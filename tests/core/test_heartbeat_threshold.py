"""Miss-threshold behaviour of the heartbeat failure detector."""

import pytest

from repro.core.config import OfttConfig
from repro.core.heartbeat import HeartbeatMonitor
from repro.simnet.kernel import SimKernel

from tests.core.util import make_pair_world


def make_monitor(miss_threshold, sweep_period=100.0, timeout=250.0):
    kernel = SimKernel()
    failures = []
    monitor = HeartbeatMonitor(
        kernel,
        sweep_period=sweep_period,
        on_failure=lambda component, silence: failures.append((component, silence)),
        miss_threshold=miss_threshold,
    )
    monitor.watch("app", timeout=timeout)
    monitor.start()
    return kernel, monitor, failures


def test_threshold_one_fails_on_first_late_sweep():
    kernel, monitor, failures = make_monitor(miss_threshold=1)
    kernel.run(until=300.0)  # sweeps at 100, 200, 300; silence 300 > 250
    assert [component for component, _ in failures] == ["app"]
    assert monitor.is_suspected("app")


def test_higher_threshold_needs_consecutive_misses():
    kernel, monitor, failures = make_monitor(miss_threshold=3)
    kernel.run(until=400.0)  # two late sweeps (300, 400): not yet
    assert failures == []
    kernel.run(until=500.0)  # third consecutive late sweep
    assert len(failures) == 1
    assert monitor.is_suspected("app")


def test_beat_resets_the_miss_counter():
    kernel, monitor, failures = make_monitor(miss_threshold=3)
    kernel.schedule(350.0, lambda: monitor.beat("app"))
    kernel.run(until=600.0)  # misses at 300, reset at 350, silent again
    assert failures == []
    kernel.run(until=900.0)  # misses at 700, 800, 900 relative to 350 beat
    assert len(failures) == 1


def test_resume_clears_misses():
    kernel, monitor, failures = make_monitor(miss_threshold=2)
    kernel.run(until=300.0)  # one miss banked
    monitor.pause("app")
    monitor.resume("app")
    kernel.run(until=500.0)  # silence restarts at 300; sweep 500 < 300+250... one miss
    assert failures == []
    kernel.run(until=700.0)
    assert len(failures) == 1


def test_constructor_rejects_bad_threshold():
    kernel = SimKernel()
    with pytest.raises(ValueError):
        HeartbeatMonitor(kernel, 100.0, lambda c, s: None, miss_threshold=0)


def test_config_validation():
    OfttConfig(heartbeat_miss_threshold=2).validate()
    with pytest.raises(ValueError):
        OfttConfig(heartbeat_miss_threshold=0).validate()


def test_engine_wires_config_threshold():
    world = make_pair_world(config=OfttConfig(heartbeat_miss_threshold=3))
    for name in ("alpha", "beta"):
        assert world.pair.engines[name].monitor.miss_threshold == 3


def test_desensitised_pair_still_fails_over():
    world = make_pair_world(config=OfttConfig(heartbeat_miss_threshold=3))
    world.start()
    primary, backup = world.primary, world.backup
    world.systems[primary].power_off()
    world.run_for(8_000.0)
    assert world.pair.engines[backup].role.value == "primary"
