"""Edge-case tests: lost handoffs, demotion windows, checkpoint info,
the error hierarchy, and partition scheduling."""

import pytest

import repro.errors as errors
from repro.core.engine import ENGINE_PORT
from repro.core.roles import Role

from tests.core.util import make_pair_world


# -- dual-backup self-healing ---------------------------------------------------


def test_lost_takeover_message_resolves_via_dual_backup_rule():
    """Deliberate switchover whose takeover message is lost: both nodes
    end up BACKUP; the tie-break winner must promote itself."""
    world = make_pair_world(seed=71)
    world.start()
    world.run_for(3_000.0)
    primary = world.primary
    backup = world.backup
    engine = world.pair.engines[primary]

    # Drop exactly the takeover message by unbinding the peer port for an
    # instant around the handoff.
    peer_node = world.network.nodes[backup]
    saved_handler = peer_node.handler_for(ENGINE_PORT)

    def drop_takeover(message):
        if message.payload.get("kind") == "takeover":
            return  # lost in transit
        saved_handler(message)

    peer_node.bind(ENGINE_PORT, drop_takeover)
    engine.request_switchover("handoff that will be lost")
    world.run_for(200.0)
    peer_node.bind(ENGINE_PORT, saved_handler)

    # Both are backup now...
    roles = {world.pair.engines[n].role for n in world.pair.node_names}
    assert roles == {Role.BACKUP}
    # ...until the dual-backup streak rule promotes the tie-break winner.
    world.run_for(5_000.0)
    assert world.pair.is_stable()
    assert world.primary is not None


# -- checkpoint info / acks --------------------------------------------------------


def test_checkpoint_info_tracks_local_peer_and_acks():
    world = make_pair_world(seed=72)
    world.start()
    world.run_for(5_000.0)
    primary_engine = world.pair.engines[world.primary]
    backup_engine = world.pair.engines[world.backup]
    info = primary_engine.GetCheckpointInfo()
    assert info["local_latest"] >= 3
    assert info["acked_sequence"] >= info["local_latest"] - 1
    peer_info = backup_engine.GetCheckpointInfo()
    assert peer_info["peer_latest"] >= 3
    # The backup mirrors what the primary produced.
    assert abs(peer_info["peer_latest"] - info["local_latest"]) <= 1


def test_checkpoints_stop_flowing_when_backup_dies_and_resume_on_rejoin():
    world = make_pair_world(seed=73)
    world.start()
    world.run_for(3_000.0)
    backup = world.backup
    primary_engine = world.pair.engines[world.primary]
    world.systems[backup].power_off()
    world.run_for(2_000.0)
    acked_at_outage = primary_engine.acked_sequence
    world.run_for(3_000.0)
    # No acks while the backup is gone (local sequence keeps rising).
    assert primary_engine.acked_sequence == acked_at_outage
    assert primary_engine.local_store.latest_sequence("synthetic") > acked_at_outage
    world.systems[backup].reboot()
    world.run_for(2_000.0)
    world.pair.reinstall_node(backup)
    world.run_for(5_000.0)
    assert primary_engine.acked_sequence > acked_at_outage  # flow resumed


# -- diverter demotion window --------------------------------------------------------

def test_diverter_buffers_during_demotion_window():
    from repro.core.diverter import DiverterClient
    from repro.msq.manager import QueueManager

    world = make_pair_world(seed=74, subscriber_nodes=["ext"])
    world.add_machine("ext")
    qmgr = QueueManager(world.kernel, world.network, world.network.nodes["ext"])
    client = DiverterClient(
        node=world.network.nodes["ext"],
        qmgr=qmgr,
        unit="test",
        pair_nodes=["alpha", "beta"],
    )
    world.start()
    world.run_for(2_000.0)
    assert client.primary is not None
    # Simulate hearing a demotion notice with no new primary yet.
    client._on_notice(
        type("M", (), {"payload": {"kind": "role-change", "node": client.primary, "role": "backup"}})()
    )
    assert client.primary is None
    client.send({"during": "gap"})
    assert client.buffered_count == 1
    world.run_for(3_000.0)  # the real primary's next broadcast arrives
    assert client.primary is not None
    assert client.buffered_count == 0


# -- error hierarchy --------------------------------------------------------------------


def test_every_layer_error_derives_from_reproerror():
    layer_errors = [
        errors.SimError,
        errors.NTError,
        errors.ComError,
        errors.RpcError,
        errors.MsqError,
        errors.OpcError,
        errors.OfttError,
        errors.CheckpointError,
        errors.RoleError,
        errors.WatchdogError,
        errors.FaultInjectionError,
    ]
    for error_type in layer_errors:
        assert issubclass(error_type, errors.ReproError)
    assert issubclass(errors.RpcError, errors.ComError)
    assert issubclass(errors.QueueNotFound, errors.MsqError)
    assert issubclass(errors.NotInitialized, errors.OfttError)


def test_com_error_formats_hresult():
    error = errors.ComError(0x80004005)
    assert "80004005" in str(error)
    assert error.hresult == 0x80004005


# -- partition scheduling -----------------------------------------------------------------


def test_scheduled_partition_and_heal():
    world = make_pair_world(seed=75)
    world.start()
    world.run_for(1_000.0)
    now = world.kernel.now
    world.partitions.schedule_split(now + 1_000.0, "lan0", ["alpha"], ["beta"])
    world.partitions.schedule_heal(now + 3_000.0, "lan0")
    world.run_for(1_500.0)
    assert world.network.usable_path("alpha", "beta") is None
    world.run_for(2_000.0)
    assert world.network.usable_path("alpha", "beta") is not None
    assert [action for _t, _l, action in world.partitions.history] == ["split", "heal"]
