"""Process-variable waveform models.

Each model maps simulated time to a physical value; sensors sample them.
Models are pure given (time, rng) so device scans are reproducible.
"""

from __future__ import annotations

import math
from typing import Optional


class SignalModel:
    """Base class: override :meth:`sample`."""

    def sample(self, time: float, rng) -> float:
        """The signal value at *time* (rng for stochastic models)."""
        raise NotImplementedError


class Constant(SignalModel):
    """A flat signal."""

    def __init__(self, value: float) -> None:
        self.value = value

    def sample(self, time: float, rng) -> float:
        return self.value


class Sine(SignalModel):
    """Sinusoid: offset + amplitude * sin(2*pi*time/period + phase)."""

    def __init__(self, offset: float = 0.0, amplitude: float = 1.0, period: float = 10_000.0, phase: float = 0.0) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.offset = offset
        self.amplitude = amplitude
        self.period = period
        self.phase = phase

    def sample(self, time: float, rng) -> float:
        return self.offset + self.amplitude * math.sin(2.0 * math.pi * time / self.period + self.phase)


class Square(SignalModel):
    """Square wave between *low* and *high*."""

    def __init__(self, low: float = 0.0, high: float = 1.0, period: float = 10_000.0) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.low = low
        self.high = high
        self.period = period

    def sample(self, time: float, rng) -> float:
        return self.high if (time % self.period) < self.period / 2.0 else self.low


class Step(SignalModel):
    """Jumps from *before* to *after* at *at_time*."""

    def __init__(self, before: float, after: float, at_time: float) -> None:
        self.before = before
        self.after = after
        self.at_time = at_time

    def sample(self, time: float, rng) -> float:
        return self.after if time >= self.at_time else self.before


class RandomWalk(SignalModel):
    """Mean-reverting random walk, clamped to [minimum, maximum].

    Stateful: successive samples move by a Gaussian step plus a pull back
    towards *mean*.  Sampling must therefore be monotone in time.
    """

    def __init__(
        self,
        start: float = 0.0,
        step: float = 1.0,
        mean: Optional[float] = None,
        reversion: float = 0.02,
        minimum: float = float("-inf"),
        maximum: float = float("inf"),
    ) -> None:
        self.current = start
        self.step = step
        self.mean = mean if mean is not None else start
        self.reversion = reversion
        self.minimum = minimum
        self.maximum = maximum

    def sample(self, time: float, rng) -> float:
        drift = (self.mean - self.current) * self.reversion
        self.current += drift + rng.gauss(0.0, self.step)
        self.current = min(self.maximum, max(self.minimum, self.current))
        return self.current
