"""Benchmark X1: checkpoint cost — full vs selective vs incremental.

Paper claim (§2.2.2): the OFTT API is "not totally transparent" because
"in some cases, user directed checkpointing mechanism can improve the
performance" [10, 11] — i.e. ``OFTTSelSave`` designation should beat the
full memory walkthrough.  This harness sweeps application state size and
reports mean bytes per checkpoint for each capture mode.

Expected shape: selective is constant and tiny regardless of state size;
full grows linearly; incremental tracks the change rate, far below full.
"""

from repro.harness.experiments import exp_checkpoint_cost

from benchmarks.conftest import print_rows


def test_bench_checkpoint_cost(benchmark):
    rows = benchmark.pedantic(
        lambda: exp_checkpoint_cost(seed=11, cold_sizes_kb=[16, 64, 256]),
        rounds=1,
        iterations=1,
    )
    print_rows("X1: checkpoint bytes by capture mode and state size", rows)
    by_key = {(row["cold_kb"], row["mode"]): row["mean_bytes"] for row in rows}
    for size in (16, 64, 256):
        assert by_key[(size, "selective")] < by_key[(size, "full")] / 10
        assert by_key[(size, "incremental")] < by_key[(size, "full")] / 2
    # Full grows with the state; selective does not.
    assert by_key[(256, "full")] > by_key[(16, "full")] * 4
    assert by_key[(256, "selective")] == by_key[(16, "selective")]
