"""Unit tests for the simulated network."""

import pytest

from repro.errors import SimError
from repro.simnet.kernel import SimKernel
from repro.simnet.network import Network
from repro.simnet.partitions import PartitionController
from repro.simnet.random import RngStreams


def build(seed=0, loss=0.0, links=1):
    kernel = SimKernel()
    network = Network(kernel, RngStreams(seed))
    for index in range(links):
        network.add_link(f"lan{index}", latency=1.0, jitter=0.0, loss=loss)
    for name in ("a", "b", "c"):
        network.add_node(name)
        for index in range(links):
            network.attach(name, f"lan{index}")
    return kernel, network


def test_basic_delivery_with_latency():
    kernel, network = build()
    received = []
    network.nodes["b"].bind("svc", lambda m: received.append((kernel.now, m.payload)))
    assert network.send("a", "b", "svc", {"x": 1})
    kernel.run()
    assert received == [(1.0, {"x": 1})]


def test_delivery_to_closed_port_is_dropped():
    kernel, network = build()
    network.send("a", "b", "nothing-bound", "data")
    kernel.run()
    assert network.delivered_count == 0
    assert network.dropped_count == 1


def test_unbind_stops_delivery():
    kernel, network = build()
    received = []
    network.nodes["b"].bind("svc", received.append)
    network.nodes["b"].unbind("svc")
    network.send("a", "b", "svc", "data")
    kernel.run()
    assert received == []


def test_powered_off_receiver_gets_nothing():
    kernel, network = build()
    received = []
    network.nodes["b"].bind("svc", received.append)
    network.nodes["b"].powered = False
    assert network.usable_path("a", "b") is None
    network.send("a", "b", "svc", "data")
    kernel.run()
    assert received == []


def test_power_off_in_flight_drops_frame():
    kernel, network = build()
    received = []
    network.nodes["b"].bind("svc", received.append)
    network.send("a", "b", "svc", "data")
    network.nodes["b"].powered = False  # dies while frame is in flight
    kernel.run()
    assert received == []


def test_lossy_link_drops_some_frames():
    kernel, network = build(seed=5, loss=0.5)
    received = []
    network.nodes["b"].bind("svc", lambda m: received.append(m))
    for _ in range(200):
        network.send("a", "b", "svc", "x")
    kernel.run()
    assert 40 < len(received) < 160  # roughly half, seeded


def test_dual_network_survives_single_nic_failure():
    kernel, network = build(links=2)
    received = []
    network.nodes["b"].bind("svc", lambda m: received.append(m.link))
    network.nodes["a"].nic_down("lan0")
    network.send("a", "b", "svc", "x")
    kernel.run()
    assert received == ["lan1"]


def test_dual_network_survives_link_failure():
    kernel, network = build(links=2)
    received = []
    network.nodes["b"].bind("svc", lambda m: received.append(m.link))
    network.links["lan0"].up = False
    network.send("a", "b", "svc", "x")
    kernel.run()
    assert received == ["lan1"]


def test_no_path_when_both_links_down():
    kernel, network = build(links=2)
    network.links["lan0"].up = False
    network.nodes["a"].nic_down("lan1")
    assert not network.send("a", "b", "svc", "x")


def test_partition_blocks_cross_group_traffic():
    kernel, network = build()
    controller = PartitionController(network)
    received = []
    network.nodes["b"].bind("svc", lambda m: received.append(m))
    network.nodes["c"].bind("svc", lambda m: received.append(m))
    controller.split("lan0", ["a"], ["b", "c"])
    network.send("a", "b", "svc", "x")
    network.send("b", "c", "svc", "y")  # same side still works
    kernel.run()
    assert len(received) == 1
    controller.heal("lan0")
    network.send("a", "b", "svc", "x2")
    kernel.run()
    assert len(received) == 2


def test_partition_isolate_and_heal_all():
    kernel, network = build(links=2)
    controller = PartitionController(network)
    controller.split_all(["a"], ["b", "c"])
    assert network.usable_path("a", "b") is None
    controller.heal_all()
    assert network.usable_path("a", "b") is not None


def test_duplicate_node_and_link_rejected():
    kernel, network = build()
    with pytest.raises(SimError):
        network.add_node("a")
    with pytest.raises(SimError):
        network.add_link("lan0")


def test_double_attach_rejected():
    kernel, network = build()
    with pytest.raises(SimError):
        network.attach("a", "lan0")


def test_bandwidth_adds_serialisation_delay():
    kernel = SimKernel()
    network = Network(kernel, RngStreams(0))
    network.add_link("lan", latency=1.0, jitter=0.0, bandwidth=100.0)  # bytes/ms
    for name in ("a", "b"):
        network.add_node(name)
        network.attach(name, "lan")
    times = []
    network.nodes["b"].bind("svc", lambda m: times.append(kernel.now))
    network.send("a", "b", "svc", "x", size=1000)
    kernel.run()
    assert times == [1.0 + 10.0]
