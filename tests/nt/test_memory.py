"""Unit tests for address spaces and the memory walkthrough."""

import pytest

from repro.errors import AccessViolation
from repro.nt.memory import GLOBAL, HEAP, STACK, AddressSpace, MemoryRegion


def test_globals_region_always_present():
    space = AddressSpace("app")
    assert space.has_region("globals")
    assert space.globals.kind == GLOBAL


def test_write_read_roundtrip():
    space = AddressSpace("app")
    space.write("x", {"nested": [1, 2, 3]})
    assert space.read("x") == {"nested": [1, 2, 3]}


def test_read_unmapped_variable_faults():
    space = AddressSpace("app")
    with pytest.raises(AccessViolation):
        space.read("missing")


def test_region_management():
    space = AddressSpace("app")
    space.map_region("heap1", HEAP)
    space.write("v", 1, region="heap1")
    assert space.read("v", region="heap1") == 1
    space.unmap_region("heap1")
    with pytest.raises(AccessViolation):
        space.region("heap1")
    with pytest.raises(AccessViolation):
        space.unmap_region("heap1")


def test_duplicate_region_rejected():
    space = AddressSpace("app")
    space.map_region("r")
    with pytest.raises(AccessViolation):
        space.map_region("r")


def test_unknown_region_kind_rejected():
    with pytest.raises(AccessViolation):
        MemoryRegion("r", kind="exotic")


def test_protected_region_rejects_writes():
    region = MemoryRegion("r")
    region.write("a", 1)
    region.protected = True
    with pytest.raises(AccessViolation):
        region.write("a", 2)
    with pytest.raises(AccessViolation):
        region.delete("a")
    assert region.read("a") == 1


def test_snapshot_is_deep_copy():
    region = MemoryRegion("r")
    region.write("list", [1, 2])
    snapshot = region.snapshot()
    snapshot["list"].append(3)
    assert region.read("list") == [1, 2]


def test_restore_replaces_contents():
    region = MemoryRegion("r")
    region.write("old", 1)
    region.restore({"new": 2})
    assert "old" not in region
    assert region.read("new") == 2


def test_walkthrough_covers_all_kinds_by_default():
    space = AddressSpace("app")
    space.write("g", 1)
    space.map_region("h", HEAP).write("hv", 2)
    space.map_region("s", STACK).write("sv", 3)
    image = space.walkthrough()
    assert image == {"globals": {"g": 1}, "h": {"hv": 2}, "s": {"sv": 3}}


def test_walkthrough_kind_filter():
    space = AddressSpace("app")
    space.write("g", 1)
    space.map_region("s", STACK).write("sv", 3)
    image = space.walkthrough(kinds=[STACK])
    assert image == {"s": {"sv": 3}}


def test_restore_walkthrough_creates_missing_regions():
    space = AddressSpace("app")
    space.restore_walkthrough({"globals": {"a": 1}, "extra": {"b": 2}})
    assert space.read("a") == 1
    assert space.read("b", region="extra") == 2


def test_walkthrough_restore_roundtrip():
    source = AddressSpace("src")
    source.write("counter", 41)
    source.map_region("heap", HEAP).write("data", {"k": [1, 2]})
    image = source.walkthrough()

    target = AddressSpace("dst")
    target.restore_walkthrough(image)
    assert target.walkthrough() == image


def test_size_estimate_grows_with_content():
    space = AddressSpace("app")
    empty = space.size_bytes()
    space.write("blob", "x" * 10_000)
    assert space.size_bytes() > empty + 9_000


def test_region_variables_sorted():
    region = MemoryRegion("r")
    for name in ("zeta", "alpha", "mid"):
        region.write(name, 0)
    assert region.variables() == ["alpha", "mid", "zeta"]
