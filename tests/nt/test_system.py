"""Unit tests for the NT machine model: boot, crash modes, registry."""

import pytest

from repro.errors import NTError
from repro.nt.registry import NTRegistry
from repro.nt.system import SystemState

from tests.conftest import make_world


def test_boot_has_randomized_duration():
    world = make_world(seed=1)
    system = world.add_machine("host", boot=False)
    eta = system.boot()
    assert eta >= system.boot_time
    world.run(eta + 1.0)
    assert system.is_up
    assert system.boot_count == 1


def test_boot_durations_vary_across_machines():
    world = make_world(seed=1)
    etas = set()
    for name in ("m1", "m2", "m3", "m4"):
        system = world.add_machine(name, boot=False)
        etas.add(system.boot())
    assert len(etas) > 1  # §3.2 non-determinism


def test_double_boot_rejected():
    world = make_world()
    system = world.add_machine("host")
    with pytest.raises(NTError):
        system.boot()


def test_power_off_kills_processes_and_network_presence():
    world = make_world()
    system = world.add_machine("host")
    process = system.create_process("app")
    process.create_thread("main", dynamic=False)
    process.start()
    system.power_off()
    assert system.state is SystemState.OFF
    assert not process.alive
    assert not system.node.powered


def test_bluescreen_kills_everything_and_requires_reboot():
    world = make_world()
    system = world.add_machine("host")
    process = system.create_process("app")
    process.create_thread("main", dynamic=False)
    process.start()
    system.bluescreen()
    assert system.state is SystemState.BLUESCREEN
    assert not process.alive
    with pytest.raises(NTError):
        system.create_process("new")
    eta = system.reboot()
    world.run(eta + 1.0)
    assert system.is_up
    assert system.boot_count == 2


def test_bluescreen_only_from_up():
    world = make_world()
    system = world.add_machine("host")
    system.power_off()
    with pytest.raises(NTError):
        system.bluescreen()


def test_power_off_while_booting_aborts_boot():
    world = make_world()
    system = world.add_machine("host", boot=False)
    system.boot()
    system.power_off()
    world.run(10_000.0)
    assert system.state is SystemState.OFF


def test_on_boot_callbacks_fire():
    world = make_world()
    system = world.add_machine("host", boot=False)
    booted = []
    system.on_boot.append(lambda s: booted.append(s.node.name))
    eta = system.boot()
    world.run(eta + 1.0)
    assert booted == ["host"]


def test_duplicate_live_process_name_rejected():
    world = make_world()
    system = world.add_machine("host")
    process = system.create_process("app")
    process.create_thread("main", dynamic=False)
    process.start()
    with pytest.raises(NTError):
        system.create_process("app")
    process.kill()
    replacement = system.create_process("app")  # dead one may be replaced
    assert replacement is not process


def test_uptime_tracks_boot():
    world = make_world()
    system = world.add_machine("host")
    world.run(500.0)
    assert system.uptime() == 500.0
    system.power_off()
    assert system.uptime() == 0.0


# -- registry ---------------------------------------------------------------


def test_registry_set_get_value():
    registry = NTRegistry()
    registry.set_value("SOFTWARE\\SoHaR\\OFTT", "HeartbeatPeriod", 100)
    assert registry.get_value("SOFTWARE\\SoHaR\\OFTT", "HeartbeatPeriod") == 100
    assert registry.get_value("SOFTWARE\\SoHaR\\OFTT", "Missing", "default") == "default"
    assert registry.get_value("No\\Such\\Key", "x", 42) == 42


def test_registry_keys_and_subkeys():
    registry = NTRegistry()
    registry.create_key("CLSID\\{AAA}\\InprocServer32")
    registry.create_key("CLSID\\{BBB}")
    assert registry.has_key("CLSID\\{AAA}")
    assert registry.subkeys("CLSID") == ["{AAA}", "{BBB}"]


def test_registry_delete_key():
    registry = NTRegistry()
    registry.create_key("A\\B\\C")
    registry.delete_key("A\\B")
    assert not registry.has_key("A\\B")
    assert registry.has_key("A")
    with pytest.raises(NTError):
        registry.delete_key("A\\B")


def test_registry_values_listing():
    registry = NTRegistry()
    registry.set_value("K", "a", 1)
    registry.set_value("K", "b", 2)
    registry.create_key("K\\sub")
    assert registry.values("K") == {"a": 1, "b": 2}


def test_registry_empty_path_rejected():
    registry = NTRegistry()
    with pytest.raises(NTError):
        registry.create_key("")


def test_perfmon_snapshot_counts():
    world = make_world()
    system = world.add_machine("host")
    process = system.create_process("app")
    process.create_thread("t1", dynamic=False)
    process.create_thread("t2", dynamic=False)
    process.start()
    snapshot = system.perfmon.snapshot()
    assert snapshot["processes"] == 1
    assert snapshot["threads"] == 2
    assert system.perfmon.process_names() == ["app"]
