"""Clean twin of pure003: a seeded private RNG, derived per item."""

import random

from repro.perf.executor import parallel_map


def sample(value, seed=0):
    rng = random.Random(seed)
    return value + rng.random()


def main(values):
    return parallel_map(sample, values)
