"""Unit and pair-level tests for the adaptive recovery policy layer."""

from repro.core.config import OfttConfig, RecoveryAction, RecoveryRule, replace_config
from repro.core.policy import FaultRegime
from repro.core.roles import Role
from repro.core.strategy import PEER
from repro.faults.faultlib import AppCrash

from tests.core.util import make_pair_world

APP = "synthetic"


def policy_world(**overrides):
    config = replace_config(OfttConfig(), adaptive_policy=True, **overrides)
    world = make_pair_world(config=config)
    world.start()
    return world


def primary_engine(world):
    return world.pair.engines[world.primary]


# -- wiring -----------------------------------------------------------------


def test_policy_only_exists_when_enabled():
    world = make_pair_world()
    world.start()
    assert all(engine.policy is None for engine in world.pair.engines.values())


def test_policy_attached_and_running_when_enabled():
    world = policy_world()
    engine = primary_engine(world)
    assert engine.policy is not None
    world.run_for(1_000.0)
    assert engine.policy.classifier.regime is FaultRegime.HEALTHY


# -- restart governance ------------------------------------------------------


def test_backoff_grows_exponentially_between_spaced_restarts():
    world = policy_world(default_rule=RecoveryRule(max_local_restarts=5))
    policy = primary_engine(world).policy
    first = policy.decide(APP, "crash")
    assert first.action is RecoveryAction.LOCAL_RESTART
    assert first.delay == 100.0
    world.run_for(2_000.0)  # outside the thrash window, inside the transient window
    second = policy.decide(APP, "crash")
    assert second.action is RecoveryAction.LOCAL_RESTART
    assert second.delay == 200.0
    world.run_for(2_000.0)
    third = policy.decide(APP, "crash")
    assert third.delay == 400.0


def test_backoff_is_capped():
    world = policy_world(
        default_rule=RecoveryRule(max_local_restarts=50),
        policy_cooldown_max=500.0,
        policy_thrash_threshold=100,  # keep the thrash detector out of the way
    )
    policy = primary_engine(world).policy
    delays = []
    for _ in range(6):
        delays.append(policy.decide(APP, "crash").delay)
        world.run_for(10.0)
    assert max(delays) == 500.0


def test_thrash_detector_escalates_rapid_failures():
    world = policy_world(default_rule=RecoveryRule(max_local_restarts=10))
    policy = primary_engine(world).policy
    first = policy.decide(APP, "crash")
    assert first.action is RecoveryAction.LOCAL_RESTART
    second = policy.decide(APP, "crash")  # same instant: inside the thrash window
    assert second.action is RecoveryAction.FAILOVER
    assert "thrash" in second.reason


def test_governor_disabled_keeps_static_behaviour():
    world = policy_world(default_rule=RecoveryRule(max_local_restarts=10))
    policy = primary_engine(world).policy
    policy.governor_enabled = False
    decisions = [policy.decide(APP, "crash") for _ in range(3)]
    assert all(d.action is RecoveryAction.LOCAL_RESTART for d in decisions)
    assert [d.delay for d in decisions] == [100.0, 100.0, 100.0]


def test_ladder_reaches_reinstall_when_peer_is_gone():
    world = policy_world(default_rule=RecoveryRule(max_local_restarts=10))
    engine = primary_engine(world)
    policy = engine.policy
    engine.peer_present = False
    policy.decide(APP, "crash")
    # Thrash escalation wants FAILOVER, but the peer is gone: deferred.
    second = policy.decide(APP, "crash")
    assert second.action is RecoveryAction.LOCAL_RESTART
    assert "deferred: peer stale" in second.reason
    # Stage 1 was recorded; with the peer still absent the next rung is
    # the middleware reinstall, which needs no peer.
    third = policy.decide(APP, "crash")
    assert third.action is RecoveryAction.REINSTALL


def test_failover_deferred_while_peer_stale():
    world = policy_world(default_rule=RecoveryRule.always_failover())
    engine = primary_engine(world)
    engine.peer_present = False
    decision = engine.policy.decide(APP, "crash")
    assert decision.action is RecoveryAction.LOCAL_RESTART
    assert "deferred: peer stale" in decision.reason


def test_stability_sweep_clears_history_and_ladder_stage():
    world = policy_world(
        default_rule=RecoveryRule(max_local_restarts=10),
        policy_stability_window=1_000.0,
    )
    engine = primary_engine(world)
    policy = engine.policy
    policy.decide(APP, "crash")
    policy.decide(APP, "crash")  # escalates: stage 1
    assert policy._stage[APP] == 1
    assert engine.recovery.failure_count(APP) >= 1
    world.run_for(2_000.0)
    assert APP not in policy._stage
    assert engine.recovery.failure_count(APP) == 0
    assert any(d.kind == "clear" for d in policy.decisions)


def test_decision_log_is_ring_buffered():
    world = policy_world(decision_log_limit=4, default_rule=RecoveryRule.local_only())
    policy = primary_engine(world).policy
    policy.governor_enabled = False
    for index in range(10):
        policy.decide(APP, f"crash-{index}")
    assert len(policy.decisions) == 4
    assert policy.decisions[-1].detail.endswith("crash-9")


# -- classifier --------------------------------------------------------------


def test_classifier_healthy_by_default():
    world = policy_world()
    classifier = primary_engine(world).policy.classifier
    classifier.sample()
    assert classifier.classify() is FaultRegime.HEALTHY


def test_classifier_crashy_after_repeated_failures():
    world = policy_world()
    classifier = primary_engine(world).policy.classifier
    classifier.note_component_failure(APP)
    classifier.note_component_failure(APP)
    assert classifier.classify() is FaultRegime.CRASHY


def test_classifier_crash_evidence_expires():
    world = policy_world(policy_anomaly_window=1_000.0)
    classifier = primary_engine(world).policy.classifier
    classifier.note_component_failure(APP)
    classifier.note_component_failure(APP)
    world.run_for(1_500.0)
    classifier.sample()
    assert classifier.classify() is FaultRegime.HEALTHY


def test_classifier_partitioned_when_peer_absent():
    world = policy_world()
    engine = primary_engine(world)
    engine.peer_present = False
    classifier = engine.policy.classifier
    # Partition evidence dominates crash evidence.
    classifier.note_component_failure(APP)
    classifier.note_component_failure(APP)
    assert classifier.classify() is FaultRegime.PARTITIONED


def test_classifier_gray_on_heartbeat_gap_skew():
    world = policy_world()
    world.run_for(500.0)  # let a few peer beats arrive
    engine = primary_engine(world)
    classifier = engine.policy.classifier
    # Simulate a delayed-but-alive peer: a beat-to-beat gap far past the
    # send period, injected at the monitor level.
    watch = engine.monitor._watches[PEER]
    watch.last_gap = 4 * world.config.peer_heartbeat_period
    watch.last_gap_at = world.kernel.now
    classifier.sample()
    assert classifier.classify() is FaultRegime.GRAY


def test_gray_regime_desensitises_peer_watch_only():
    world = policy_world()
    engine = primary_engine(world)
    policy = engine.policy
    policy._apply_regime(FaultRegime.GRAY)
    peer_watch = engine.monitor._watches[PEER]
    assert peer_watch.miss_tolerance == world.config.policy_gray_miss_tolerance
    assert peer_watch.timeout == peer_watch.base_timeout  # never tightened
    app_watch = engine.monitor._watches[APP]
    assert app_watch.timeout == app_watch.base_timeout * world.config.policy_tighten_scale
    policy._apply_regime(FaultRegime.HEALTHY)
    assert peer_watch.miss_tolerance is None
    assert app_watch.timeout == app_watch.base_timeout


# -- proactive failover ------------------------------------------------------


def test_proactive_failover_catches_silent_process_death():
    world = policy_world(use_exit_hooks=False)
    engine = primary_engine(world)
    AppCrash(world.primary, APP).apply(world)
    world.run_for(250.0)  # two policy ticks; well under the 500ms timeout
    assert world.trace.select(event="policy-proactive", component=world.primary)
    assert any(d.kind == "proactive" for d in engine.policy.decisions)


# -- runtime strategy switching ----------------------------------------------


def test_switch_strategy_rebases_ftim_and_emits_trace():
    world = policy_world()
    engine = primary_engine(world)
    assert engine.strategy_name == "cold-passive"
    engine.switch_strategy("leader-follower", "test")
    assert engine.strategy_name == "leader-follower"
    assert engine.strategy_switch_count == 1
    ftim = engine.applications[APP].api.ftim
    assert ftim.incremental is True
    assert ftim.checkpoint_period == world.config.lf_update_period
    records = world.trace.select(event="strategy-switched", component=world.primary)
    assert records and records[0].detail["previous"] == "cold-passive"


def test_switch_back_restores_requested_checkpoint_policy():
    world = policy_world()
    engine = primary_engine(world)
    ftim = engine.applications[APP].api.ftim
    original_period = ftim.checkpoint_period
    engine.switch_strategy("leader-follower", "out")
    engine.switch_strategy("cold-passive", "back")
    assert ftim.incremental is False
    assert ftim.checkpoint_period == original_period


def test_backup_follows_primary_strategy():
    # policy_switch_strategies off: the regime loop must not revert the
    # manual switch; following the primary is independent of it.
    world = policy_world(policy_switch_strategies=False)
    engine = primary_engine(world)
    backup = world.pair.engines[world.backup]
    engine.switch_strategy("leader-follower", "test")
    world.run_for(500.0)  # a few peer heartbeats
    assert backup.strategy_name == "leader-follower"
    assert backup.role is Role.BACKUP


def test_crashy_regime_switches_to_hot_standby_with_dwell():
    world = policy_world(policy_switch_dwell=5_000.0)
    engine = primary_engine(world)
    policy = engine.policy
    policy._maybe_switch_strategy(FaultRegime.CRASHY)
    assert engine.strategy_name == "leader-follower"
    # Back to healthy immediately: inside the dwell, no flap.
    policy._maybe_switch_strategy(FaultRegime.HEALTHY)
    assert engine.strategy_name == "leader-follower"
    world.run_for(6_000.0)
    policy._maybe_switch_strategy(FaultRegime.HEALTHY)
    assert engine.strategy_name == "cold-passive"


def test_backup_never_initiates_switch():
    world = policy_world()
    backup = world.pair.engines[world.backup]
    backup.policy._maybe_switch_strategy(FaultRegime.CRASHY)
    assert backup.strategy_name == "cold-passive"


def test_partitioned_regime_never_switches():
    world = policy_world()
    engine = primary_engine(world)
    engine.policy._maybe_switch_strategy(FaultRegime.PARTITIONED)
    assert engine.strategy_name == "cold-passive"
