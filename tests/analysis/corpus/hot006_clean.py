"""Clean twin of hot006: the module attribute is bound once at import."""

import math

_sqrt = math.sqrt


class Hot:
    def run(self, values):
        total = 0.0
        for value in values:
            total += _sqrt(value)
        return total
