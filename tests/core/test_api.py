"""Unit tests for the OFTT public API (§2.2.2)."""

import pytest

from repro.core.api import OfttApi
from repro.core.config import RecoveryRule
from repro.core.ftim import ClientFtim, ServerFtim
from repro.errors import NotInitialized, OfttError, WatchdogError
from repro.simnet.events import Timeout

from tests.core.util import make_pair_world


def make_app_process(world, node):
    context = world.pair.contexts[node]
    process = context.system.create_process("userapp")

    def body(_thread):
        def loop():
            while True:
                yield Timeout(100.0)

        return loop()

    process.create_thread("main", body=body, dynamic=False)
    process.start()
    process.address_space.write("state", 1)
    return context, process


def started_world():
    world = make_pair_world()
    world.start()
    return world


def test_initialize_links_client_ftim_and_registers():
    world = started_world()
    context, process = make_app_process(world, world.primary)
    api = OfttApi(context, "userapp", process)
    api.OFTTInitialize(stateful=True)
    assert isinstance(api.ftim, ClientFtim)
    assert "userapp" in context.engine.components
    assert "userapp" in context.engine.monitor.watched()


def test_initialize_stateless_links_server_ftim():
    world = started_world()
    context, process = make_app_process(world, world.primary)
    api = OfttApi(context, "userapp", process)
    api.OFTTInitialize(stateful=False)
    assert isinstance(api.ftim, ServerFtim)
    assert not isinstance(api.ftim, ClientFtim)


def test_initialize_twice_rejected():
    world = started_world()
    context, process = make_app_process(world, world.primary)
    api = OfttApi(context, "userapp", process)
    api.OFTTInitialize()
    with pytest.raises(OfttError):
        api.OFTTInitialize()


def test_apis_require_initialize_first():
    world = started_world()
    context, process = make_app_process(world, world.primary)
    api = OfttApi(context, "userapp", process)
    with pytest.raises(NotInitialized):
        api.OFTTSave()
    with pytest.raises(NotInitialized):
        api.OFTTGetMyRole()
    with pytest.raises(NotInitialized):
        api.OFTTWatchdogCreate("wd")
    with pytest.raises(NotInitialized):
        api.OFTTDistress("help")


def test_initialize_without_engine_rejected():
    world = started_world()
    context, process = make_app_process(world, world.primary)
    context.engine.process.kill()
    api = OfttApi(context, "userapp", process)
    with pytest.raises(OfttError):
        api.OFTTInitialize()


def test_selsave_and_save():
    world = started_world()
    context, process = make_app_process(world, world.primary)
    api = OfttApi(context, "userapp", process)
    api.OFTTInitialize()
    api.OFTTSelSave("globals", ["state"])
    sequence = api.OFTTSave()
    assert sequence >= 1
    stored = context.engine.local_store.latest("userapp")
    assert stored.image == {"globals": {"state": 1}}
    assert stored.selective


def test_save_on_stateless_ftim_rejected():
    world = started_world()
    context, process = make_app_process(world, world.primary)
    api = OfttApi(context, "userapp", process)
    api.OFTTInitialize(stateful=False)
    with pytest.raises(OfttError):
        api.OFTTSave()
    with pytest.raises(OfttError):
        api.OFTTSelSave("globals", ["state"])


def test_get_my_role():
    world = started_world()
    context, process = make_app_process(world, world.primary)
    api = OfttApi(context, "userapp", process)
    api.OFTTInitialize()
    assert api.OFTTGetMyRole() == "primary"


def test_watchdog_lifecycle_through_api():
    world = started_world()
    context, process = make_app_process(world, world.primary)
    api = OfttApi(context, "userapp", process)
    api.OFTTInitialize()
    api.OFTTWatchdogCreate("task")
    api.OFTTWatchdogSet("task", 500.0)
    api.OFTTWatchdogReset("task")
    api.OFTTWatchdogDelete("task")
    with pytest.raises(WatchdogError):
        api.OFTTWatchdogReset("task")


def test_unknown_watchdog_name_rejected():
    world = started_world()
    context, process = make_app_process(world, world.primary)
    api = OfttApi(context, "userapp", process)
    api.OFTTInitialize()
    with pytest.raises(WatchdogError):
        api.OFTTWatchdogSet("ghost", 100.0)


def test_distress_requests_switchover():
    world = started_world()
    world.run_for(3_000.0)
    primary = world.primary
    app = world.pair.apps[primary]
    app.api.OFTTDistress("sensor disagreement")
    world.run_for(2_000.0)
    assert world.primary != primary


def test_static_recovery_rule_via_initialize():
    world = started_world()
    context, process = make_app_process(world, world.primary)
    api = OfttApi(context, "userapp", process)
    rule = RecoveryRule(max_local_restarts=7)
    api.OFTTInitialize(recovery_rule=rule)
    assert context.engine.recovery.config.rule_for("userapp") is rule
