"""Unit tests for seeded random streams."""

from repro.simnet.random import RngStreams


def test_same_seed_same_sequence():
    a = RngStreams(42).stream("network")
    b = RngStreams(42).stream("network")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = RngStreams(1).stream("network")
    b = RngStreams(2).stream("network")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_streams_are_independent():
    """Drawing from one stream must not perturb another."""
    reference_stream = RngStreams(7).stream("b")
    reference = [reference_stream.random() for _ in range(5)]

    streams = RngStreams(7)
    for _ in range(100):
        streams.stream("a").random()  # heavy use of an unrelated stream
    values = [streams.stream("b").random() for _ in range(5)]
    assert values == reference


def test_stream_is_cached():
    streams = RngStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_fork_gives_independent_family():
    parent = RngStreams(3)
    fork_a = parent.fork("child")
    fork_b = RngStreams(3).fork("child")
    assert fork_a.seed == fork_b.seed
    assert fork_a.seed != parent.seed
    assert fork_a.stream("s").random() == fork_b.stream("s").random()
