"""Integration smoke tests for every X-series experiment runner.

These assert the *shape* of each result — who wins, in which direction —
with small parameters; the benchmarks run the full versions.
"""

from repro.harness import experiments as E


def test_x1_checkpoint_cost_shape():
    rows = E.exp_checkpoint_cost(seed=41, cold_sizes_kb=[16, 64], run_time=10_000.0)
    by_key = {(row["cold_kb"], row["mode"]): row for row in rows}
    # Selective is dramatically smaller than full and does not grow with
    # the cold payload.
    assert by_key[(16, "selective")]["mean_bytes"] < by_key[(16, "full")]["mean_bytes"] / 10
    assert by_key[(64, "selective")]["mean_bytes"] == by_key[(16, "selective")]["mean_bytes"]
    # Full grows roughly linearly with the state size.
    assert by_key[(64, "full")]["mean_bytes"] > by_key[(16, "full")]["mean_bytes"] * 2
    # Incremental sits between: far below full, above selective here
    # (it re-ships every changed hot variable plus region overhead).
    assert by_key[(64, "incremental")]["mean_bytes"] < by_key[(64, "full")]["mean_bytes"] / 5
    # Checkpoints actually reached the peer (acks flowed).
    assert all(row["acked_seq"] > 0 for row in rows)


def test_x2_detection_latency_scales_with_timeout():
    rows = E.exp_detection_latency(
        seed=42,
        settings=[
            {"period": 50.0, "timeout": 200.0},
            {"period": 250.0, "timeout": 1_000.0},
        ],
    )
    assert all(row["detected"] for row in rows)
    fast, slow = rows
    # Detection happens after the timeout but within timeout + a few sweeps.
    assert fast["detection_ms"] >= fast["timeout_ms"]
    assert fast["detection_ms"] <= fast["timeout_ms"] + 4 * fast["heartbeat_period_ms"]
    assert slow["detection_ms"] > fast["detection_ms"]


def test_x3_retries_eliminate_false_shutdowns():
    rows = E.exp_startup(seeds=list(range(12)), retry_settings=[0, 5])
    original, fixed = rows
    assert original["retries"] == 0
    # §3.2: the original logic frequently shuts the first node down...
    assert original["false_shutdowns"] > 0
    # ...and the retry fix eliminates it.
    assert fixed["false_shutdowns"] == 0
    assert fixed["stable_pairs"] == fixed["runs"]


def test_x4_diverter_beats_naive_sender():
    rows = E.exp_diverter(seeds=[0, 1, 2])
    diverter, naive = rows
    assert diverter["variant"] == "diverter"
    assert diverter["events_lost"] <= naive["events_lost"]
    assert naive["events_lost"] > 0
    assert diverter["loss_rate"] < 0.01


def test_x5_rules_drive_recovery_style():
    rows = E.exp_recovery_rules(seed=43)
    local, failover = rows
    assert local["recovered"] and failover["recovered"]
    assert not local["switched_over"]
    assert local["local_restarts"] == 1
    assert failover["switched_over"]
    assert failover["local_restarts"] == 0


def test_x6_oftt_detects_faster_than_dcom_rpc():
    result = E.exp_dcom(seed=44)
    # Dead process: quick, explicit disconnect.
    assert result["dead_process_latency_ms"] < 100.0
    # Dead node: raw DCOM burns the whole RPC timeout...
    assert result["dead_node_rpc_latency_ms"] >= result["rpc_timeout_config_ms"]
    # ...while OFTT's heartbeats detect it within the short timeout.
    assert result["oftt_detection_latency_ms"] < result["dead_node_rpc_latency_ms"] / 2
    assert result["oftt_failover_latency_ms"] is not None


def test_x7_api_levels_tradeoff():
    rows = E.exp_api_levels(seed=45, warmup=20_000.0)
    levels = {row["level"]: row for row in rows}
    l1 = levels["L1 init-only"]
    l2 = levels["L2 selective"]
    l3 = levels["L3 event-based"]
    # Selective designation shrinks checkpoints.
    assert l2["mean_checkpoint_bytes"] < l1["mean_checkpoint_bytes"]
    # Event-based saving checkpoints more often...
    assert l3["checkpoints_taken"] >= l2["checkpoints_taken"]
    # ...and loses no completed work on failover.
    assert l3["events_lost"] == 0
