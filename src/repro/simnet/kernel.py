"""The discrete-event simulation kernel.

:class:`SimKernel` maintains a priority queue of timestamped events and a
monotonically increasing simulated clock.  Work is expressed either as a
plain scheduled callback (:meth:`SimKernel.schedule`) or as a cooperative
:class:`Process` wrapping a generator that yields
:mod:`repro.simnet.events` waitables.

Determinism: events at equal timestamps run in insertion order (a strictly
increasing sequence number breaks ties), and all randomness flows through
:class:`repro.simnet.random.RngStreams`.  Two runs with the same seed
produce identical traces.

Hot-path notes (``SimKernel.run``/``step``/``_maybe_compact`` are hot
roots in ``repro/analysis/hotpath.manifest``): the heap holds
``(time, seq, call)`` tuples rather than bare :class:`_ScheduledCall`
objects so sift comparisons stay in C (tuple ``<``) instead of calling a
Python-level ``__lt__`` per comparison — profiling showed that ``__lt__``
alone was ~40% of drain time.  ``seq`` is unique, so the ``call`` slot is
never compared.  Compaction rewrites ``self._queue`` in place, keeping
the list identity stable so the drain loops can bind it locally.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimError
from repro.simnet.events import Timeout, Waitable

# Bound once at import so the per-event loops skip the module-attribute
# lookup (HOT006 dogfood; see ANALYSIS.md "Hot-path rules").
_heappush = heapq.heappush
_heappop = heapq.heappop
_heapify = heapq.heapify


class Interrupt(Exception):
    """Raised inside a process generator when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class _ScheduledCall:
    """A callback armed at an absolute simulated time.

    Instances ride the kernel heap inside ``(time, seq, call)`` tuples;
    ``time``/``seq`` are duplicated here so handles stay meaningful
    after they leave the heap (and for ``repr``/debugging).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_kernel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        kernel: Optional["SimKernel"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._kernel = kernel

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent).

        Cancellation is lazy — the entry stays in the kernel heap and is
        skipped on pop — but the kernel counts cancelled entries so it
        can compact the heap when they dominate (see
        :meth:`SimKernel._maybe_compact`).
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._kernel is not None:
            self._kernel._note_cancelled()


class Process(Waitable):
    """A cooperative process driving a generator.

    The process is itself a :class:`Waitable`: it fires with the
    generator's return value when the generator finishes, so processes can
    ``yield`` other processes to join them.
    """

    def __init__(self, kernel: "SimKernel", generator: Generator[Waitable, Any, Any], name: str = "") -> None:
        super().__init__()
        self.kernel = kernel
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.alive = True
        self.error: Optional[BaseException] = None
        self._waiting_on: Optional[Waitable] = None
        self._pending_interrupt: Optional[Interrupt] = None

    # -- lifecycle -------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the generator at its next step.

        Interrupting a finished process is a no-op, matching the semantics
        of signalling a dead thread.
        """
        if not self.alive:
            return
        self._pending_interrupt = Interrupt(cause)
        # Detach from whatever we were waiting on and resume immediately.
        self._waiting_on = None
        self.kernel.schedule(0.0, self._step, None)

    def kill(self) -> None:
        """Terminate the process without running any more of its body.

        Unlike :meth:`interrupt`, the generator gets no chance to clean up
        via ``except Interrupt`` — this models an OS-level kill.  The
        process fires with value ``None``.  A process may kill itself (a
        thread tearing down its own process): the generator is then
        abandoned at its next yield instead of closed in place.
        """
        if not self.alive:
            return
        self.alive = False
        self._waiting_on = None
        try:
            self.generator.close()
        except ValueError:
            # "generator already executing": self-kill from inside the
            # body.  _step() checks `alive` after each resume and will
            # drop the generator at its next yield.
            pass
        if not self.fired:
            self._fire(None)

    # -- stepping --------------------------------------------------------

    def _start(self) -> None:
        self.kernel.schedule(0.0, self._step, None)

    # The _waiting_on handshake with _step IS the stale-resume guard;
    # the same-tick write/read below is the designed protocol.
    # The interprocedural write-writes (alive/error/_value/... via
    # _step -> _fire from both entry points) are the same protocol:
    # _step is re-entered only through the _waiting_on guard.
    def _on_wait_fired(self, waitable: Waitable) -> None:  # oftt-lint: ok[race-write-read,ip-race-write-write]
        if self._waiting_on is waitable:
            self._waiting_on = None
            self._step(waitable.value)

    def _step(self, send_value: Any) -> None:
        if not self.alive:
            return
        if self._waiting_on is not None:
            # A stale scheduled resume (e.g. cancelled interrupt path).
            return
        try:
            if self._pending_interrupt is not None:
                interrupt, self._pending_interrupt = self._pending_interrupt, None
                target = self.generator.throw(interrupt)
            else:
                target = self.generator.send(send_value)
        except StopIteration as stop:
            self.alive = False
            self._fire(stop.value)
            return
        except Interrupt:
            # Generator chose not to handle the interrupt: it dies quietly.
            self.alive = False
            self._fire(None)
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced via kernel policy
            self.alive = False
            self.error = exc
            self.kernel._on_process_error(self, exc)
            if not self.fired:
                self._fire(None)
            return
        if not self.alive:
            return  # killed itself (or was killed) while executing
        self._wait_on(target)

    def _wait_on(self, target: Waitable) -> None:
        if not isinstance(target, Waitable):
            raise SimError(f"process {self.name} yielded non-waitable {target!r}")
        target._arm(self.kernel)
        self._waiting_on = target
        target.add_callback(self._on_wait_fired)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"Process({self.name}, {state})"


class SimKernel:
    """Event loop and simulated clock.

    Parameters
    ----------
    on_error:
        Policy for uncaught exceptions inside processes: ``"raise"``
        (default; the exception propagates out of :meth:`run`) or
        ``"record"`` (stored on :attr:`process_errors`, simulation
        continues — used by fault-injection campaigns where application
        crashes are the point).
    """

    #: Compaction only kicks in past this queue size (small heaps are
    #: cheap to scan; rebuilding them would cost more than it saves).
    COMPACT_MIN_SIZE = 512

    def __init__(self, on_error: str = "raise") -> None:
        if on_error not in ("raise", "record"):
            raise SimError(f"unknown error policy {on_error!r}")
        self.now: float = 0.0
        self.on_error = on_error
        self.process_errors: List[Tuple[Process, BaseException]] = []
        #: Heap of ``(time, seq, call)`` — compared as tuples in C.
        self._queue: List[Tuple[float, int, _ScheduledCall]] = []
        self._seq = 0
        self._cancelled = 0
        self._raised: Optional[BaseException] = None
        self._running = False

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> _ScheduledCall:
        """Run *callback(*args)* after *delay* simulated time units."""
        if delay < 0:
            raise SimError(f"negative delay: {delay}")
        seq = self._seq + 1
        self._seq = seq
        time = self.now + delay
        call = _ScheduledCall(time, seq, callback, args, self)
        _heappush(self._queue, (time, seq, call))
        return call

    def _note_cancelled(self) -> None:
        """A queued call was cancelled; compact if cancellations dominate.

        The threshold test is inlined here (rather than delegating
        straight to :meth:`_maybe_compact`) because this runs once per
        cancellation and almost always concludes "not yet".
        """
        cancelled = self._cancelled + 1
        self._cancelled = cancelled
        if cancelled * 2 >= len(self._queue) >= self.COMPACT_MIN_SIZE:
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Drop lazily-cancelled entries once they are half the heap.

        Rebuilding is O(n) and resets the cancelled fraction to zero, so
        the amortized cost per cancellation is O(1).  Execution order is
        unaffected: the heap pops in strict ``(time, seq)`` order (seq is
        unique), which is independent of the heap's internal layout.  The
        queue list is rewritten *in place* so aliases bound by the drain
        loops in :meth:`run`/:meth:`step` stay valid.
        """
        queue = self._queue
        if len(queue) < self.COMPACT_MIN_SIZE or self._cancelled * 2 < len(queue):
            return
        survivors = []
        for entry in queue:
            if entry[2].cancelled:
                entry[2]._kernel = None
            else:
                survivors.append(entry)
        queue[:] = survivors
        _heapify(queue)
        self._cancelled = 0

    def spawn(self, generator: Generator[Waitable, Any, Any], name: str = "") -> Process:
        """Create and start a :class:`Process` around *generator*."""
        process = Process(self, generator, name=name)
        process._start()
        return process

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Convenience constructor for a :class:`Timeout` yieldable."""
        return Timeout(delay, value)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or the clock passes *until*.

        Returns the final simulated time.  With ``until`` set, the clock is
        advanced exactly to ``until`` even if the last event fired earlier,
        so back-to-back ``run`` calls tile the timeline predictably.
        """
        if self._running:
            raise SimError("kernel is not reentrant")
        self._running = True
        # Compaction rewrites the queue in place, so this local alias
        # stays correct across callbacks that schedule/cancel.  The
        # unbounded drain duplicates the loop body to skip the peek and
        # deadline test per event — this is the hottest loop in the
        # whole simulator.
        queue = self._queue
        try:
            if until is None:
                while queue:
                    time, _, call = _heappop(queue)
                    call._kernel = None
                    if call.cancelled:
                        self._cancelled -= 1
                        continue
                    if time < self.now:
                        raise SimError("time went backwards")
                    self.now = time
                    call.callback(*call.args)
                    if self._raised is not None:
                        error, self._raised = self._raised, None
                        raise error
            else:
                while queue:
                    time = queue[0][0]
                    if time > until:
                        break
                    call = _heappop(queue)[2]
                    call._kernel = None
                    if call.cancelled:
                        self._cancelled -= 1
                        continue
                    if time < self.now:
                        raise SimError("time went backwards")
                    self.now = time
                    call.callback(*call.args)
                    if self._raised is not None:
                        error, self._raised = self._raised, None
                        raise error
                if self.now < until:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def step(self) -> bool:
        """Execute the single next event.  Returns False if queue is empty."""
        queue = self._queue
        while queue:
            call = _heappop(queue)[2]
            call._kernel = None
            if call.cancelled:
                self._cancelled -= 1
                continue
            self.now = call.time
            call.callback(*call.args)
            if self._raised is not None:
                error, self._raised = self._raised, None
                raise error
            return True
        return False

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) calls still queued.

        O(1): the kernel counts cancellations instead of scanning the heap.
        """
        return len(self._queue) - self._cancelled

    # -- error policy ----------------------------------------------------

    def _on_process_error(self, process: Process, error: BaseException) -> None:
        self.process_errors.append((process, error))
        if self.on_error == "raise":
            self._raised = error

    def __repr__(self) -> str:
        return f"SimKernel(now={self.now}, pending={self.pending})"
