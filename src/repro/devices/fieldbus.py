"""The industrial automation network segment (Devicenet/Fieldbus).

The fieldbus connects a PLC to its field devices.  It is modelled simply:
a registry of devices plus an up/down state — when the bus is down every
read/write raises, which the PLC turns into BAD-quality points, which the
OPC server then reports to clients.
"""

from __future__ import annotations

from typing import Dict, List

from repro.devices.device import Actuator, Device, Sensor, Valve


class Fieldbus:
    """A fieldbus segment with attached devices."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.up = True
        self.devices: Dict[str, Device] = {}
        self.read_count = 0
        self.write_count = 0

    def attach(self, device: Device) -> None:
        """Put a device on the bus (names must be unique)."""
        if device.name in self.devices:
            raise ValueError(f"device {device.name} already on {self.name}")
        self.devices[device.name] = device

    def device(self, name: str) -> Device:
        """Look up a device."""
        if name not in self.devices:
            raise KeyError(f"no device {name} on {self.name}")
        return self.devices[name]

    def sensors(self) -> List[Sensor]:
        """All attached sensors, sorted by name."""
        return sorted(
            (device for device in self.devices.values() if isinstance(device, Sensor)),
            key=lambda device: device.name,
        )

    def actuators(self) -> List[Actuator]:
        """All attached actuators, sorted by name."""
        return sorted(
            (device for device in self.devices.values() if isinstance(device, Actuator)),
            key=lambda device: device.name,
        )

    def read_sensor(self, name: str, time: float, rng) -> float:
        """Read through the bus (raises when the bus is down)."""
        if not self.up:
            raise IOError(f"fieldbus {self.name} down")
        self.read_count += 1
        device = self.device(name)
        if not isinstance(device, Sensor):
            raise TypeError(f"{name} is not a sensor")
        return device.read(time, rng)

    def write_actuator(self, name: str, value: float) -> None:
        """Write through the bus (raises when the bus is down)."""
        if not self.up:
            raise IOError(f"fieldbus {self.name} down")
        self.write_count += 1
        device = self.device(name)
        if not isinstance(device, Actuator):
            raise TypeError(f"{name} is not an actuator")
        device.write(value)

    def command_valve(self, name: str, open_valve: bool, time: float) -> None:
        """Command a valve through the bus."""
        if not self.up:
            raise IOError(f"fieldbus {self.name} down")
        self.write_count += 1
        device = self.device(name)
        if not isinstance(device, Valve):
            raise TypeError(f"{name} is not a valve")
        device.command(open_valve, time)

    def fail(self) -> None:
        """Take the bus down (comm failure)."""
        self.up = False

    def repair(self) -> None:
        """Bring the bus back."""
        self.up = True

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"Fieldbus({self.name}, {state}, devices={len(self.devices)})"
