"""Unit tests for MSMQ queues."""

from repro.msq.queue import MsmqQueue, QueueMessage


def message(message_id, body="b", persistent=True):
    return QueueMessage(message_id=message_id, sender="s", body=body, persistent=persistent)


def test_fifo_order():
    queue = MsmqQueue("q", "node")
    for index in range(5):
        queue.enqueue(message(f"m{index}", body=index), now=float(index))
    received = [queue.receive().body for _ in range(5)]
    assert received == [0, 1, 2, 3, 4]


def test_duplicate_ids_dropped():
    queue = MsmqQueue("q", "node")
    assert queue.enqueue(message("m1"), now=0.0)
    assert not queue.enqueue(message("m1"), now=1.0)
    assert len(queue) == 1
    assert queue.total_enqueued == 1


def test_receive_empty_returns_none():
    queue = MsmqQueue("q", "node")
    assert queue.receive() is None
    assert queue.peek() is None


def test_peek_does_not_consume():
    queue = MsmqQueue("q", "node")
    queue.enqueue(message("m1"), now=0.0)
    assert queue.peek().message_id == "m1"
    assert len(queue) == 1


def test_subscribe_drains_existing_and_future():
    queue = MsmqQueue("q", "node")
    queue.enqueue(message("m1"), now=0.0)
    seen = []
    queue.subscribe(lambda m: seen.append(m.message_id))
    assert seen == ["m1"]
    queue.enqueue(message("m2"), now=1.0)
    assert seen == ["m1", "m2"]


def test_unsubscribe_accumulates_again():
    queue = MsmqQueue("q", "node")
    seen = []
    queue.subscribe(lambda m: seen.append(m.message_id))
    queue.unsubscribe()
    queue.enqueue(message("m1"), now=0.0)
    assert seen == []
    assert len(queue) == 1


def test_journal_keeps_consumed_messages():
    queue = MsmqQueue("q", "node", journal=True)
    queue.enqueue(message("m1"), now=0.0)
    queue.receive()
    assert [m.message_id for m in queue.journal] == ["m1"]


def test_purge_express_drops_only_nonpersistent():
    queue = MsmqQueue("q", "node")
    queue.enqueue(message("p1", persistent=True), now=0.0)
    queue.enqueue(message("e1", persistent=False), now=0.0)
    queue.enqueue(message("p2", persistent=True), now=0.0)
    dropped = queue.purge_express()
    assert dropped == 1
    assert [m.message_id for m in queue.messages] == ["p1", "p2"]


def test_enqueue_timestamps_message():
    queue = MsmqQueue("q", "node")
    msg = message("m1")
    queue.enqueue(msg, now=123.0)
    assert msg.enqueued_at == 123.0
