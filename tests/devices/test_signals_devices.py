"""Unit tests for signal models and field devices."""

import random

import pytest

from repro.devices.device import Actuator, Sensor, Valve
from repro.devices.signals import Constant, RandomWalk, Sine, Square, Step


def rng():
    return random.Random(0)


def test_constant():
    assert Constant(5.0).sample(123.0, rng()) == 5.0


def test_sine_period_and_offset():
    signal = Sine(offset=10.0, amplitude=2.0, period=100.0)
    r = rng()
    assert signal.sample(0.0, r) == pytest.approx(10.0)
    assert signal.sample(25.0, r) == pytest.approx(12.0)
    assert signal.sample(75.0, r) == pytest.approx(8.0)


def test_sine_invalid_period():
    with pytest.raises(ValueError):
        Sine(period=0.0)


def test_square_wave():
    signal = Square(low=0.0, high=1.0, period=10.0)
    r = rng()
    assert signal.sample(1.0, r) == 1.0
    assert signal.sample(6.0, r) == 0.0


def test_step():
    signal = Step(before=1.0, after=2.0, at_time=50.0)
    r = rng()
    assert signal.sample(49.9, r) == 1.0
    assert signal.sample(50.0, r) == 2.0


def test_random_walk_respects_bounds_and_reverts():
    signal = RandomWalk(start=0.0, step=1.0, mean=0.0, reversion=0.1, minimum=-5.0, maximum=5.0)
    r = rng()
    values = [signal.sample(float(t), r) for t in range(500)]
    assert all(-5.0 <= v <= 5.0 for v in values)
    # Mean reversion keeps the long-run average near the mean.
    assert abs(sum(values[100:]) / len(values[100:])) < 3.0


def test_sensor_reads_signal_with_noise():
    sensor = Sensor("s", Constant(10.0), noise=0.5)
    value = sensor.read(0.0, rng())
    assert 7.0 < value < 13.0
    assert sensor.last_value == value


def test_failed_sensor_raises():
    sensor = Sensor("s", Constant(1.0))
    sensor.fail()
    with pytest.raises(IOError):
        sensor.read(0.0, rng())
    sensor.repair()
    assert sensor.read(0.0, rng()) == 1.0


def test_actuator_holds_command():
    actuator = Actuator("a", initial=0.0)
    actuator.write(3.0)
    actuator.write(4.0)
    assert actuator.commanded == 4.0
    assert actuator.write_count == 2
    actuator.fail()
    with pytest.raises(IOError):
        actuator.write(5.0)


def test_valve_travel_takes_time():
    valve = Valve("v", travel_time=100.0, initially_open=False)
    valve.command(True, time=0.0)
    assert valve.position_at(50.0) == pytest.approx(0.5)
    assert not valve.fully_open
    assert valve.position_at(100.0) == pytest.approx(1.0)
    assert valve.fully_open


def test_valve_reversal_mid_travel():
    valve = Valve("v", travel_time=100.0)
    valve.command(True, time=0.0)
    valve.position_at(50.0)
    valve.command(False, time=50.0)
    assert valve.position_at(100.0) == pytest.approx(0.0)
    assert valve.fully_closed


def test_failed_valve_rejects_commands():
    valve = Valve("v")
    valve.fail()
    with pytest.raises(IOError):
        valve.command(True, time=0.0)
