"""Scenario builder knobs: single-LAN mode, workload sizing, configs."""

from repro.core.config import OfttConfig, replace_config
from repro.harness.scenario import build_demo, build_remote_monitoring


def test_single_lan_demo_still_works():
    demo = build_demo(seed=111, dual_lan=False)
    assert list(demo.network.links) == ["lan0"]
    demo.start()
    demo.run_for(20_000.0)
    assert demo.pair.is_stable()
    assert demo.primary_app().events_processed() > 0


def test_custom_telephone_sizing():
    demo = build_demo(seed=112, lines=3, callers=6, mean_idle=1_000.0, mean_call=2_000.0)
    demo.start()
    demo.run_for(60_000.0)
    assert demo.telephone.line_count == 3
    assert all(event.busy_lines <= 3 for event in demo.history.history)
    app = demo.primary_app()
    assert set(app.histogram()) == {0, 1, 2, 3}


def test_custom_config_flows_through_pair():
    config = replace_config(OfttConfig(), checkpoint_period=250.0)
    demo = build_demo(seed=113, config=config)
    demo.start()
    demo.run_for(10_000.0)
    app = demo.primary_app()
    # ~4 periodic checkpoints per second (plus event-based saves).
    assert app.api.ftim.checkpoint_period == 250.0
    assert app.api.ftim.checkpoints_taken >= 30


def test_remote_monitoring_update_rate_knob():
    fast = build_remote_monitoring(seed=114, update_rate=100.0)
    slow = build_remote_monitoring(seed=114, update_rate=1_000.0)
    for scenario in (fast, slow):
        scenario.start()
        scenario.run_for(20_000.0)
    assert fast.primary_app().updates_seen() > slow.primary_app().updates_seen() * 2


def test_demo_nodes_have_dual_nics_test_pc_single():
    demo = build_demo(seed=115)
    assert set(demo.network.nodes["node1"].nics) == {"lan0", "lan1"}
    assert set(demo.network.nodes["test-pc"].nics) == {"lan0"}
