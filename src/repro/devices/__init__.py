"""Plant-floor device simulation.

Figure 1 of the paper shows PLCs on an industrial automation network
(Devicenet/Fieldbus) reading "sensors, valves and other devices", with the
data surfaced to monitoring PCs through OPC servers.  This package
provides that world:

* :mod:`~repro.devices.signals` — process-variable waveform models.
* :mod:`~repro.devices.device` — sensors, actuators, valves.
* :mod:`~repro.devices.fieldbus` — the industrial network segment.
* :mod:`~repro.devices.plc` — scan-loop PLC plus the PLC→OPC bridge.
* :mod:`~repro.devices.telephone` — the §4 demo's small-office telephone
  system simulator (5 lines, 10 callers).
"""

from repro.devices.signals import Constant, RandomWalk, Sine, Square, Step, SignalModel
from repro.devices.device import Actuator, Device, Sensor, Valve
from repro.devices.fieldbus import Fieldbus
from repro.devices.plc import PLC, PlcOpcBridge
from repro.devices.telephone import CallEvent, TelephoneSystem

__all__ = [
    "Actuator",
    "CallEvent",
    "Constant",
    "Device",
    "Fieldbus",
    "PLC",
    "PlcOpcBridge",
    "RandomWalk",
    "Sensor",
    "SignalModel",
    "Sine",
    "Square",
    "Step",
    "TelephoneSystem",
    "Valve",
]
