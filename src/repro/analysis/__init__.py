"""Static-analysis toolkit guarding the simulation's reliability contracts.

The kernel promises that two runs with the same seed produce identical
traces (:mod:`repro.simnet.kernel`), and the COM layer promises that every
remotable object honours its declared interfaces
(:mod:`repro.com.object`).  Nothing in Python enforces either promise: one
stray ``time.time()`` or an undeclared CamelCase method silently breaks
replay or the marshalling contract.  This package machine-checks both,
plus a third hazard class — same-timestamp event handlers whose relative
order is fixed only by the kernel's sequence-number tiebreak.

Three passes run over the source tree (``python -m repro.analysis src/repro``):

* :mod:`repro.analysis.determinism` — wall-clock, ambient entropy,
  unordered fan-out, and other seed-replay hazards (``DET*`` rules).
* :mod:`repro.analysis.comcheck` — ``ComObject`` subclasses cross-checked
  against their ``InterfaceDecl``s, HRESULT discipline (``COM*`` rules).
* :mod:`repro.analysis.races` — approximate read/write sets for scheduled
  callbacks that can tie at equal sim time (``RACE*`` rules).

Findings carry a rule id, slug, severity and ``file:line``; deliberate
violations are silenced in place with ``# oftt-lint: ok[slug]`` comments
(see :mod:`repro.analysis.suppress`).  The rule catalogue lives in
``ANALYSIS.md`` at the repo root.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Rule, Severity, all_rules, rule
from repro.analysis.walker import SourceFile, load_sources, run_passes

__all__ = [
    "Finding",
    "Rule",
    "Severity",
    "SourceFile",
    "all_rules",
    "load_sources",
    "rule",
    "run_passes",
]
