"""An OFTT-protected OPC server application.

The "OPC Server App (device interface)" box of Figure 2: hosts an
:class:`~repro.opc.server.OpcServer` fed by a PLC bridge, linked with the
*stateless* server FTIM — "an OPC server is simply responsible for
converting data from different types of I/O devices into the standard
format.  In this aspect, it is stateless" (§2.2.2) — so it heartbeats but
never checkpoints; on failover the new node's copy rebuilds its cache
from the devices.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.com.marshal import ObjRef
from repro.core.api import OfttApi
from repro.core.appdriver import OfttApplication
from repro.devices.plc import PLC, PlcOpcBridge
from repro.nt.process import NTProcess
from repro.opc.server import OpcServer
from repro.simnet.events import Timeout


class OpcServerApp(OfttApplication):
    """Runs an OPC server (plus PLC bridge) under OFTT protection."""

    name = "opc-server"

    def __init__(self, plc: PLC, poll_period: float = 100.0, server_name: str = "OPC.Device.1") -> None:
        super().__init__()
        self.plc = plc
        self.poll_period = poll_period
        self.server_name = server_name
        self.api: Optional[OfttApi] = None
        self.server: Optional[OpcServer] = None
        self.bridge: Optional[PlcOpcBridge] = None
        self.server_ref: Optional[ObjRef] = None
        #: Observers told whenever a (re)launched server is exported.
        self.on_export: list = []

    def launch(self, image: Optional[Dict[str, Any]]) -> NTProcess:
        context = self.context
        assert context is not None, "install() must run before launch()"
        process = context.system.create_process(self.name)
        self.process = process

        server = OpcServer(context.runtime, self.server_name)
        server.host_process = process
        self.server = server
        bridge = PlcOpcBridge(context.kernel, self.plc, server, poll_period=self.poll_period)
        self.bridge = bridge

        def main_body(_thread):
            def loop():
                bridge.start()
                while True:
                    yield Timeout(1_000.0)

            return loop()

        process.create_thread("main", body=main_body, dynamic=False)
        process.start()
        process.on_exit.append(lambda _p: bridge.stop())

        # Stateless server FTIM: heartbeats only, no checkpoints.
        api = OfttApi(context, self.name, process)
        api.OFTTInitialize(stateful=False)
        self.api = api

        self.server_ref = context.runtime.export(server, label=self.server_name, process=process)
        for callback in self.on_export:
            callback(self.server_ref)
        self.launch_count += 1
        return process

    def stop(self) -> None:
        if self.bridge is not None:
            self.bridge.stop()
        super().stop()
