"""Edge cases for campaigns and the remaining fault paths."""

from repro.faults import NodeFailure
from repro.faults.campaign import Campaign

from tests.core.util import make_pair_world


def test_campaign_reports_unrecovered_when_both_nodes_die():
    world = make_pair_world(seed=101)
    world.start()
    world.run_for(2_000.0)
    campaign = Campaign(world.kernel, world, settle_timeout=5_000.0)
    # Kill the backup first (out-of-band), then campaign-kill the primary:
    # nothing is left to recover on.
    world.systems[world.backup].power_off()
    world.run_for(1_000.0)
    record = campaign.run_fault(NodeFailure(world.primary))
    assert not record.recovered
    assert record.recovery_latency is None
    assert not campaign.all_recovered()


def test_campaign_primary_tracking_fields():
    world = make_pair_world(seed=102)
    world.start()
    world.run_for(2_000.0)
    campaign = Campaign(world.kernel, world, settle_timeout=15_000.0)
    before = world.primary
    record = campaign.run_fault(NodeFailure(before))
    assert record.primary_before == before
    assert record.primary_after not in (None, before)
    assert record.switched_over
    assert record.demo_id == "a"


def test_engine_reports_reach_multiple_monitor_nodes():
    from repro.core.monitor import SystemMonitor

    world = make_pair_world(seed=103, monitor_nodes=["mon1", "mon2"])
    world.add_machine("mon1")
    world.add_machine("mon2")
    monitor1 = SystemMonitor(world.kernel, world.network.nodes["mon1"])
    monitor2 = SystemMonitor(world.kernel, world.network.nodes["mon2"])
    world.start()
    world.run_for(3_000.0)
    assert monitor1.reports_received > 0
    assert monitor2.reports_received > 0
    assert monitor1.current_primary() == monitor2.current_primary() == world.primary


def test_remote_group_on_dead_server_app_is_disconnected():
    """Groups exported by a dead hosting process answer disconnected."""
    from repro.com.hresult import RPC_E_DISCONNECTED
    from repro.com.runtime import ComRuntime
    from repro.opc.server import OpcServer

    from tests.conftest import make_world

    world = make_world()
    server_sys = world.add_machine("server")
    client_sys = world.add_machine("client")
    server_rt = ComRuntime(server_sys, world.network)
    client_rt = ComRuntime(client_sys, world.network)
    host = server_sys.create_process("opc-host")
    host.create_thread("main", dynamic=False)
    host.start()
    server = OpcServer(server_rt, "OPC.D.1")
    server.host_process = host
    server.namespace.define_simple("a", 0.0)
    group_ref = server.AddGroupRemote("g")
    host.kill()
    proxy = client_rt.proxy_for(group_ref)
    outcome = {}

    def caller():
        result = yield proxy.SyncRead([1])
        outcome["result"] = result

    world.kernel.spawn(caller())
    world.run_for(5_000.0)
    assert outcome["result"].hresult == RPC_E_DISCONNECTED
