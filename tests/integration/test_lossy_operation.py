"""Operation over realistic imperfect networks."""

from repro.harness.scenario import build_demo

from tests.core.util import make_pair_world


def test_pair_stable_on_mildly_lossy_link():
    """Default timeouts ride out 10 % frame loss: no false switchover in
    a minute of operation, and checkpoints keep flowing."""
    world = make_pair_world(seed=131)
    world.start()
    primary_at_start = world.primary
    world.network.links["lan0"].loss = 0.10
    world.run_for(60_000.0)
    assert world.primary == primary_at_start
    assert world.trace.count(category="engine", event="takeover") == 0
    assert world.pair.engines[world.backup].peer_store.latest("synthetic") is not None


def test_failover_still_works_on_lossy_link():
    world = make_pair_world(seed=132)
    world.start()
    world.network.links["lan0"].loss = 0.15
    world.run_for(10_000.0)
    victim = world.primary
    world.systems[victim].power_off()
    world.run_for(5_000.0)
    assert world.primary is not None
    assert world.primary != victim
    assert world.pair.is_stable()


def test_demo_testbed_with_jittery_slow_lan():
    """The Figure 3 demo keeps zero event loss on a slow, jittery LAN
    (10 ms ± 5 ms) — the MSMQ/diverter machinery hides the network."""
    demo = build_demo(seed=133)
    for link in demo.network.links.values():
        link.latency = 10.0
        link.jitter = 5.0
    demo.start()
    demo.run_for(40_000.0)
    primary = demo.pair.primary_node()
    demo.systems[primary].power_off()
    demo.run_for(20_000.0)
    app = demo.primary_app()
    assert app is not None
    assert app.events_processed() == demo.history.event_count
    assert app.histogram() == demo.history.histogram()
