"""DET006 must cover os.cpu_count: the executor's worker-count read is
ambient host state, legal only at its one sanctioned, suppressed site."""

from __future__ import annotations

from repro.analysis import determinism

from tests.analysis.util import analyze, rule_ids


def test_cpu_count_fires_as_ambient_io():
    findings = analyze(
        """
        import os

        def workers():
            return os.cpu_count()
        """,
        determinism.run,
    )
    assert rule_ids(findings) == ["DET006"]
    assert "os.cpu_count" in findings[0].message


def test_cpu_count_suppressible_at_the_sanctioned_site():
    findings = analyze(
        """
        import os

        def workers():
            return os.cpu_count() or 1  # oftt-lint: ok[ambient-io]
        """,
        determinism.run,
    )
    assert findings == []
