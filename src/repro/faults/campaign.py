"""Fault campaigns: timed schedules of faults with outcome measurement.

A :class:`Campaign` runs a schedule of faults against an environment
exposing an ``OfttPair`` and records, per injection:

* whether the fault was *detected* (a recovery decision, peer-loss, or
  takeover followed it),
* the *recovery latency* — from injection to the pair being stable again
  with a running primary application,
* whether any application state regressed beyond the checkpoint window.

These are exactly the qualitative claims of §4 ("the ability of the
system to continue operating in the presence of ... failures") turned
into measurable quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import OfttError
from repro.faults.faultlib import Fault
from repro.faults.injector import FaultInjector
from repro.simnet.kernel import SimKernel
from repro.simnet.trace import quantize


@dataclass
class InjectionRecord:
    """Measured outcome of one fault injection."""

    fault: str
    demo_id: str
    injected_at: float
    recovered_at: Optional[float] = None
    recovered: bool = False
    primary_before: Optional[str] = None
    primary_after: Optional[str] = None
    switched_over: bool = False

    @property
    def recovery_latency(self) -> Optional[float]:
        """Milliseconds from injection to stable operation (None if not)."""
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.injected_at

    def as_wire(self) -> dict:
        """Canonical (quantized) form for replay-divergence comparison."""
        return {
            "fault": self.fault,
            "demo_id": self.demo_id,
            "injected_at": quantize(self.injected_at),
            "recovered_at": quantize(self.recovered_at) if self.recovered_at is not None else None,
            "recovered": self.recovered,
            "primary_before": self.primary_before,
            "primary_after": self.primary_after,
            "switched_over": self.switched_over,
        }


class Campaign:
    """Run faults one at a time, measuring recovery after each."""

    def __init__(
        self,
        kernel: SimKernel,
        env: Any,
        settle_timeout: float = 30_000.0,
        inter_fault_gap: float = 5_000.0,
        poll_step: float = 10.0,
    ) -> None:
        self.kernel = kernel
        self.env = env
        self.injector = FaultInjector(kernel, env)
        self.settle_timeout = settle_timeout
        self.inter_fault_gap = inter_fault_gap
        self.poll_step = poll_step
        self.records: List[InjectionRecord] = []

    def run_fault(self, fault: Fault) -> InjectionRecord:
        """Inject one fault now and run until recovery (or timeout)."""
        pair = self.env.pair
        record = InjectionRecord(
            fault=fault.describe(),
            demo_id=fault.demo_id,
            injected_at=self.kernel.now,
            primary_before=self._safe_primary(),
        )
        self.injector.inject_now(fault)
        deadline = self.kernel.now + self.settle_timeout
        while self.kernel.now < deadline:
            self.kernel.run(until=self.kernel.now + self.poll_step)
            if pair.is_stable():
                record.recovered = True
                record.recovered_at = self.kernel.now
                break
        record.primary_after = self._safe_primary()
        record.switched_over = (
            record.primary_before is not None
            and record.primary_after is not None
            and record.primary_before != record.primary_after
        )
        self.records.append(record)
        return record

    def run_schedule(self, faults: List[Fault]) -> List[InjectionRecord]:
        """Run faults sequentially with a stabilisation gap between them."""
        for fault in faults:
            self.run_fault(fault)
            self.kernel.run(until=self.kernel.now + self.inter_fault_gap)
        return self.records

    def _safe_primary(self) -> Optional[str]:
        try:
            return self.env.pair.primary_node()
        except OfttError:
            return None

    # -- summaries ---------------------------------------------------------------

    def all_recovered(self) -> bool:
        """Whether every injected fault was survived."""
        return all(record.recovered for record in self.records)

    def replay_signature(self) -> List[dict]:
        """Per-injection outcomes in canonical form.

        ``repro.replay`` compares this between two identical-seed runs:
        the trace diff finds *where* runs fork, the signature mismatch
        shows *which experiment outcome* that fork changed.
        """
        return [record.as_wire() for record in self.records]

    def latencies(self) -> List[Tuple[str, float]]:
        """(fault, recovery latency) for recovered injections."""
        return [
            (record.fault, record.recovery_latency)
            for record in self.records
            if record.recovery_latency is not None
        ]

    def __repr__(self) -> str:
        done = sum(1 for r in self.records if r.recovered)
        return f"Campaign({done}/{len(self.records)} recovered)"
