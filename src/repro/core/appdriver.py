"""The contract between the OFTT engine and a protected application.

"The same copy of an application (either an OPC server, or an OPC client,
or both) resides on each node.  During normal operation, only the copy on
the primary node is executed" (§2.1).  The engine therefore needs a way
to *launch* the local copy (fresh, or from a checkpoint image after a
switchover or local restart) and to *stop* it.  Applications implement
:class:`OfttApplication`; the engine drives it.

:class:`NodeContext` bundles everything an application (and the engine)
needs on one node: the NT machine, COM runtime, queue manager, and the
shared trace/config.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.core.config import OfttConfig
from repro.msq.manager import QueueManager
from repro.nt.process import NTProcess
from repro.nt.system import NTSystem
from repro.com.runtime import ComRuntime
from repro.simnet.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import OfttEngine


@dataclass
class NodeContext:
    """Everything installed on one node of the pair."""

    system: NTSystem
    runtime: ComRuntime
    qmgr: QueueManager
    config: OfttConfig
    trace: TraceLog
    engine: Optional["OfttEngine"] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def kernel(self):
        """The simulation kernel (shared by everything)."""
        return self.system.kernel

    @property
    def node_name(self) -> str:
        """Network name of this node."""
        return self.system.node.name

    def __repr__(self) -> str:
        return f"NodeContext({self.node_name})"


class OfttApplication:
    """Base class for applications protected by OFTT.

    Subclasses implement :meth:`launch` — create the NT process, threads,
    construct the FTIM via :class:`~repro.core.api.OfttApi`, and (when
    *image* is not None) restore state from the checkpoint — and may
    override :meth:`stop` for orderly shutdown.

    One instance exists per *node*; the engine calls ``launch`` when the
    node becomes (or starts as) primary and ``stop`` when it must cease
    running (demotion, deliberate switchover).
    """

    #: Component name the engine monitors; subclasses usually override.
    name = "application"

    def __init__(self) -> None:
        self.context: Optional[NodeContext] = None
        self.process: Optional[NTProcess] = None
        self.launch_count = 0

    def install(self, context: NodeContext) -> None:
        """Bind this copy to its node (called by the pair builder)."""
        self.context = context

    # -- engine-driven lifecycle ------------------------------------------------

    def launch(self, image: Optional[Dict[str, Any]]) -> NTProcess:
        """Start the local copy; restore from *image* when provided.

        Must create the process, register with OFTT (``OFTTInitialize``),
        and return the :class:`NTProcess`.
        """
        raise NotImplementedError

    def stop(self) -> None:
        """Stop the local copy (default: kill the process)."""
        if self.process is not None and self.process.alive:
            self.process.kill()

    @property
    def running(self) -> bool:
        """Whether the local copy is currently alive."""
        return self.process is not None and self.process.alive

    def __repr__(self) -> str:
        where = self.context.node_name if self.context is not None else "uninstalled"
        return f"{type(self).__name__}({self.name} on {where}, running={self.running})"
