"""Figure 1(a): SCADA monitoring with a fault-tolerant operator station.

Plant floor: a fieldbus carrying temperature/pressure/flow sensors and a
cooling pump, scanned by a PLC.  An industrial PC exposes the PLC through
an OPC server.  The monitor/control PC pair runs an OFTT-protected SCADA
client that subscribes to the plant items, counts alarms, keeps trend
buffers, and writes the pump setpoint when temperature runs high.

The script demonstrates the two failure domains behaving differently:

* a **fieldbus failure** degrades data quality (BAD items) but must not
  fail the operator station over;
* a **monitoring-PC failure** triggers an OFTT switchover, after which
  alarm history and trends continue on the peer.

Run:  python examples/scada_monitoring.py
"""

from repro.harness.scenario import build_remote_monitoring


def show_state(scenario, label):
    app = scenario.primary_app()
    state = app.state()
    latest = {item: round(value[0], 1) for item, value in sorted(state["latest"].items())}
    print(f"{label}")
    print(f"  primary station : {scenario.pair.primary_node()}")
    print(f"  latest values   : {latest}")
    print(f"  updates applied : {app.updates_seen()}")
    print(f"  temp alarms     : {app.alarm_count('plc1.temp')}")
    print(f"  control writes  : {state['writes_issued']}")
    print()


def main() -> None:
    scenario = build_remote_monitoring(seed=77)
    scenario.start()
    scenario.run_for(30_000.0)
    show_state(scenario, "t=30s  steady state")

    print(">>> fieldbus failure (plant-side) — quality degrades, no failover\n")
    primary_before = scenario.pair.primary_node()
    scenario.fieldbuses["devicenet0"].fail()
    scenario.run_for(5_000.0)
    quality = scenario.opc_server.namespace.read("plc1.temp").quality
    print(f"  plc1.temp quality while bus down: {quality.value}")
    assert scenario.pair.primary_node() == primary_before, "no failover for plant faults"
    scenario.fieldbuses["devicenet0"].repair()
    scenario.run_for(5_000.0)
    show_state(scenario, "t=40s  bus repaired")

    print(">>> monitoring-PC failure — OFTT switchover\n")
    victim = scenario.pair.primary_node()
    alarms_before = scenario.primary_app().alarm_count("plc1.temp")
    scenario.systems[victim].power_off()
    scenario.run_for(20_000.0)
    show_state(scenario, "t=60s  after switchover")
    app = scenario.primary_app()
    assert scenario.pair.primary_node() != victim
    assert app.alarm_count("plc1.temp") >= alarms_before - 2, "alarm history survived"
    print("alarm history and trends survived the station failure.")


if __name__ == "__main__":
    main()
