"""Property-based test of the headline invariant: at most one live
primary application, and recovery after every random fault schedule.

A random sequence of faults and repairs is applied to a pair; after the
dust settles the pair must be stable (one primary, app running), and at
no sampled instant — absent a network partition — may *both* live nodes
run the application.
"""

from hypothesis import given, settings, strategies as st

from repro.core.roles import Role
from repro.faults import AppCrash, BlueScreen, MiddlewareCrash, NodeFailure, NodeReboot
from repro.faults.injector import FaultInjector

from tests.core.util import make_pair_world

FAULT_KINDS = ("node", "bluescreen", "app", "middleware")


@st.composite
def fault_plans(draw):
    steps = draw(st.integers(min_value=1, max_value=4))
    plan = []
    for _ in range(steps):
        kind = draw(st.sampled_from(FAULT_KINDS))
        target_primary = draw(st.booleans())
        gap = draw(st.floats(min_value=2_000.0, max_value=6_000.0))
        plan.append((kind, target_primary, gap))
    return plan


def make_fault(kind, node):
    if kind == "node":
        return NodeFailure(node)
    if kind == "bluescreen":
        return BlueScreen(node)
    if kind == "app":
        return AppCrash(node, "synthetic")
    return MiddlewareCrash(node)


@given(plan=fault_plans(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_single_primary_and_recovery_under_random_faults(plan, seed):
    world = make_pair_world(seed=seed)
    world.start()
    world.run_for(3_000.0)
    injector = FaultInjector(world.kernel, world)

    def sample_invariant():
        running = [
            name
            for name in world.pair.node_names
            if world.pair.apps[name].running and world.systems[name].is_up
        ]
        # Both copies running simultaneously would be a split brain; the
        # network here is never partitioned, so it must not happen.
        assert len(running) <= 1, f"dual execution: {running}"

    for kind, target_primary, gap in plan:
        target = world.primary if target_primary else world.backup
        if target is None:
            continue
        injector.inject_now(make_fault(kind, target))
        # Sample the invariant while recovery unfolds.
        for _ in range(10):
            world.run_for(gap / 10.0)
            sample_invariant()
        # Repair whatever machine is down so the pair can re-form.
        for name in world.pair.node_names:
            if not world.systems[name].is_up:
                injector.inject_now(NodeReboot(name, reinstall=True))
            elif not world.pair.engines[name].alive and world.systems[name].is_up:
                world.pair.reinstall_node(name)
        world.run_for(8_000.0)

    world.run_for(5_000.0)
    assert world.pair.is_stable(), {
        name: (world.pair.engines[name].role, world.pair.apps[name].running)
        for name in world.pair.node_names
    }
    roles = sorted(world.pair.engines[name].role.value for name in world.pair.node_names)
    assert roles == ["backup", "primary"]
