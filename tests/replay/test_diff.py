"""First-divergence diff: localization, field deltas, context windows."""

from __future__ import annotations

from repro.replay.canonical import CanonicalEvent
from repro.replay.diff import first_divergence


def _stream(n, component="engine", detail_for=None):
    events = []
    for index in range(n):
        events.append(
            CanonicalEvent(
                index=index,
                time=float(index),
                category="ft",
                component=component,
                event=f"event-{index}",
                component_seq=index + 1,
                detail=(detail_for(index) if detail_for else {}),
            )
        )
    return events


def test_identical_streams_have_no_divergence():
    assert first_divergence(_stream(20), _stream(20)) is None


def test_divergence_is_localized_to_first_mismatch():
    first = _stream(20, detail_for=lambda i: {"value": i})
    second = _stream(20, detail_for=lambda i: {"value": i if i < 7 else i + 100})
    divergence = first_divergence(first, second)
    assert divergence is not None
    assert divergence.index == 7
    assert divergence.component == "engine"
    assert divergence.event == "event-7"
    (delta,) = divergence.deltas
    assert delta.field == "detail.value"
    assert (delta.first, delta.second) == (7, 107)


def test_context_windows_surround_the_divergence():
    first = _stream(20, detail_for=lambda i: {"value": i})
    second = _stream(20, detail_for=lambda i: {"value": i if i != 10 else -1})
    divergence = first_divergence(first, second, context=3)
    assert [e.index for e in divergence.context_first] == [7, 8, 9, 10, 11, 12, 13]
    assert [e.index for e in divergence.context_second] == [7, 8, 9, 10, 11, 12, 13]


def test_length_mismatch_reports_stream_end():
    first = _stream(5)
    second = _stream(8)
    divergence = first_divergence(first, second)
    assert divergence.index == 5
    assert divergence.first is None
    assert divergence.second is not None
    assert "stream ended" in divergence.render()


def test_render_and_wire_name_component_and_event():
    first = _stream(4, detail_for=lambda i: {"value": i})
    second = _stream(4, detail_for=lambda i: {"value": -i})
    divergence = first_divergence(first, second)
    text = divergence.render()
    assert "component='engine'" in text
    assert "event='event-1'" in text
    wire = divergence.as_wire()
    assert wire["component"] == "engine"
    assert wire["event"] == "event-1"
    assert wire["deltas"][0]["field"] == "detail.value"
