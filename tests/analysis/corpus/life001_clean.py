"""Clean twin of life001: stop() releases the handle through a helper.

The cancel is one call hop from the teardown method, exercising the
k-bounded release search.
"""


class Looper:
    def __init__(self, kernel):
        self.kernel = kernel
        self.period = 100.0
        self._timer = None
        self.ticks = 0

    def start(self):
        self._cancel()
        self._timer = self.kernel.schedule(self.period, self._tick)

    def stop(self):
        self._cancel()

    def _cancel(self):
        if self._timer is not None:
            self.kernel.cancel(self._timer)
            self._timer = None

    def _tick(self):
        self.ticks += 1
        self._timer = self.kernel.schedule(self.period, self._tick)
