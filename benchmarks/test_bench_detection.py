"""Benchmark X2: failure-detection latency vs heartbeat settings.

Paper mechanism (§2.2.1): "If it does not receive the [heartbeat] message
after the pre-specified timeout, it considers the component fails and
initiates a recovery provision."  This harness hangs the application
(heartbeats stop, process stays alive, so only the heartbeat path can
detect it) and measures detection latency for a sweep of
(period, timeout) settings.

Expected shape: detection latency ≈ timeout + O(sweep period), scaling
linearly with the configured timeout.
"""

from repro.harness.experiments import exp_detection_latency

from benchmarks.conftest import print_rows


def test_bench_detection_latency(benchmark):
    rows = benchmark.pedantic(lambda: exp_detection_latency(seed=13), rounds=1, iterations=1)
    print_rows("X2: hang-detection latency vs heartbeat period/timeout", rows)
    assert all(row["detected"] for row in rows)
    latencies = [row["detection_ms"] for row in rows]
    assert latencies == sorted(latencies)  # monotone in the timeout
    for row in rows:
        assert row["timeout_ms"] <= row["detection_ms"] <= row["timeout_ms"] + 4 * row["heartbeat_period_ms"]
