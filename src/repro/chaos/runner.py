"""Executing one fault schedule against a fresh testbed.

A :class:`ChaosRun` is fully determined by ``(seed, schedule, sabotage)``:
it builds a :class:`~repro.harness.scenario.ChaosScenario` from the seed,
installs the invariant monitor suite, schedules every fault entry, runs
the kernel to the schedule's horizon and returns a :class:`RunResult`
whose wire form is byte-stable — the property both the minimizer (re-run
subsets and compare) and the replay gate (run twice and diff) rely on.

Sabotage hooks deliberately disable one recovery path before the run
starts; they exist so the harness can prove its own monitors fire (the
``--self-test`` CLI mode) and are never active in normal campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaos.invariants import InvariantMonitor, Violation, default_monitors
from repro.chaos.schedule import ChaosSchedule
from repro.core.config import OfttConfig
from repro.faults.injector import FaultInjector
from repro.harness.scenario import ChaosScenario

#: Monitor poll period (simulated ms).
TICK_PERIOD = 50.0

#: name -> sabotage(scenario).  Registered by name so reports stay JSON.
SABOTAGES: Dict[str, Callable[[ChaosScenario], None]] = {}


def sabotage(name: str) -> Callable:
    """Decorator registering a named sabotage hook."""

    def register(fn: Callable[[ChaosScenario], None]) -> Callable[[ChaosScenario], None]:
        SABOTAGES[name] = fn
        return fn

    return register


@sabotage("disable-dual-primary-resolution")
def _disable_dual_primary_resolution(scenario: ChaosScenario) -> None:
    """Break the incarnation tie-break: two primaries never reconcile.

    Models the class of bug where the §3.2 dual-primary resolution logic
    is missing or wrong — the exact failure the split-brain monitor
    exists to catch.
    """
    for name in scenario.pair.node_names:
        negotiator = scenario.pair.engines[name].negotiator
        negotiator._resolve_dual_primary = lambda peer_incarnation: None


@sabotage("drop-state-updates")
def _drop_state_updates(scenario: ChaosScenario) -> None:
    """Silently discard every replicated checkpoint/update.

    Models a broken replication stream: checkpoints are still submitted
    locally (hooks fire, stores advance) but nothing reaches the peer —
    the failure :class:`ReplicaFreshnessMonitor` exists to catch under
    the leader-follower strategy.
    """
    for name in scenario.pair.node_names:
        scenario.pair.engines[name].strategy.replicate = lambda checkpoint: None


@sabotage("disable-cooldown")
def _disable_cooldown(scenario: ChaosScenario) -> None:
    """Remove the adaptive policy's restart governor on both engines.

    With the governor off, back-off between local restarts and the
    thrash detector's early escalation are both gone: a persistent
    crash burns restarts at full speed — the failure
    :class:`RestartThrashMonitor` exists to catch.  Only meaningful
    when the run's config enables the adaptive policy (and a recovery
    rule with a local-restart budget worth burning).
    """
    for name in scenario.pair.node_names:
        policy = scenario.pair.engines[name].policy
        if policy is not None:
            policy.governor_enabled = False


@dataclass
class RunResult:
    """Outcome of one schedule execution."""

    seed: int
    schedule: ChaosSchedule
    violations: List[Violation]
    trace_fingerprint: str
    final_time: float
    workload_sent: int
    sabotage: str = ""
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """Whether every invariant held."""
        return not self.violations

    def violation_names(self) -> List[str]:
        """Sorted unique invariant names that fired."""
        return sorted({violation.invariant for violation in self.violations})

    def as_wire(self) -> Dict[str, Any]:
        """JSON-safe canonical form (stable across identical runs)."""
        return {
            "seed": self.seed,
            "schedule": self.schedule.as_wire(),
            "violations": [violation.as_wire() for violation in self.violations],
            "passed": self.passed,
            "trace_fingerprint": self.trace_fingerprint,
            "final_time": round(self.final_time, 3),
            "workload_sent": self.workload_sent,
            "sabotage": self.sabotage,
            "stats": self.stats,
        }


class ChaosRun:
    """One deterministic schedule execution."""

    def __init__(
        self,
        seed: int,
        schedule: ChaosSchedule,
        monitors: Optional[List[InvariantMonitor]] = None,
        sabotage_name: str = "",
        config: Optional[OfttConfig] = None,
    ) -> None:
        self.seed = seed
        self.schedule = schedule
        self.monitors = monitors if monitors is not None else default_monitors()
        self.sabotage_name = sabotage_name
        self.config = config
        #: The scenario of the last execute() — exposed for replay subjects
        #: that need the TraceLog, not just its fingerprint.
        self.scenario: Optional[ChaosScenario] = None
        self._seen_engines: List[int] = []

    def execute(self) -> RunResult:
        """Build the testbed, play the schedule, collect violations."""
        scenario = ChaosScenario(seed=self.seed, config=self.config)
        self.scenario = scenario
        if self.sabotage_name:
            hook = SABOTAGES.get(self.sabotage_name)
            if hook is None:
                raise ValueError(f"unknown sabotage {self.sabotage_name!r}")
            hook(scenario)
        for monitor in self.monitors:
            monitor.attach(scenario)
        self._scan_engines(scenario)
        injector = FaultInjector(scenario.kernel, scenario, trace=scenario.trace)
        for entry in self.schedule.sorted_entries():
            injector.inject_at(entry.at, entry.build())
        scenario.start(settle=True)
        self._tick_loop(scenario)
        scenario.run(until=self.schedule.horizon)
        now = scenario.kernel.now
        for monitor in self.monitors:
            monitor.finalize(scenario, now)
        for monitor in self.monitors:
            monitor.detach()
        violations = sorted(
            (v for monitor in self.monitors for v in monitor.violations),
            key=lambda v: (v.time, v.invariant),
        )
        qstats = dict(scenario.client_qmgr.stats)
        qstats["pending"] = scenario.client_qmgr.pending_count()
        return RunResult(
            seed=self.seed,
            schedule=self.schedule,
            violations=violations,
            trace_fingerprint=scenario.trace.fingerprint(),
            final_time=now,
            workload_sent=scenario.workload_sent,
            sabotage=self.sabotage_name,
            stats={
                "client_msq": qstats,
                "network": {
                    "delivered": scenario.network.delivered_count,
                    "dropped": scenario.network.dropped_count,
                    "corrupted": scenario.network.corrupted_count,
                    "duplicated": scenario.network.duplicated_count,
                },
            },
        )

    def _scan_engines(self, scenario: ChaosScenario) -> None:
        # Node reinstalls create brand-new engine objects; monitors must
        # hook every instance they have not seen yet.
        for name in scenario.pair.node_names:
            engine = scenario.pair.engines[name]
            if id(engine) not in self._seen_engines:
                self._seen_engines.append(id(engine))
                for monitor in self.monitors:
                    monitor.on_engine(engine)

    def _tick_loop(self, scenario: ChaosScenario) -> None:
        def tick() -> None:
            if scenario.kernel.now >= self.schedule.horizon:
                return
            self._scan_engines(scenario)
            for monitor in self.monitors:
                monitor.on_tick(scenario, scenario.kernel.now)
            scenario.kernel.schedule(TICK_PERIOD, tick)

        scenario.kernel.schedule(TICK_PERIOD, tick)


def run_schedule(
    seed: int,
    schedule: ChaosSchedule,
    sabotage_name: str = "",
    config: Optional[OfttConfig] = None,
) -> RunResult:
    """Convenience wrapper: execute one schedule with fresh monitors."""
    return ChaosRun(seed=seed, schedule=schedule, sabotage_name=sabotage_name, config=config).execute()


def run_schedule_task(task: Tuple[int, ChaosSchedule, str]) -> RunResult:
    """Executor entry point: one ``(seed, schedule, sabotage_name)`` task.

    Module-level (pickled by reference) so campaigns can fan schedules
    out over :func:`repro.perf.executor.parallel_map`; the run is a pure
    function of the task tuple, so worker placement cannot affect it.
    An optional fourth element carries an :class:`OfttConfig` (strategy
    campaigns); three-element tasks keep the default config.
    """
    seed, schedule, sabotage_name = task[0], task[1], task[2]
    config = task[3] if len(task) > 3 else None
    return run_schedule(seed, schedule, sabotage_name=sabotage_name, config=config)
