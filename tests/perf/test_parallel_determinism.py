"""Byte-identity of every --jobs surface: chaos, replay, experiments, sweep.

The executor's whole promise is that worker count is unobservable in the
output.  These tests render each CLI's report at jobs 1/2/4 and require
the exact same bytes — including the failing-campaign path, where the
report embeds a ddmin minimization whose result must not change either.
"""

from __future__ import annotations

from repro.chaos.cli import campaign
from repro.chaos.cli import main as chaos_main
from repro.chaos.report import render_json
from repro.harness.run_experiments import main as experiments_main
from repro.perf.cli import main as perf_main
from repro.perf.sweep import sweep_detectors
from repro.replay.cli import main as replay_main


def _capture(capsys, main, argv):
    code = main(argv)
    return code, capsys.readouterr().out


def test_chaos_campaign_bytes_stable_across_jobs():
    reports = {
        jobs: render_json(campaign(2, 1, 0, jobs=jobs))
        for jobs in (1, 2, 4)
    }
    assert reports[2] == reports[1]
    assert reports[4] == reports[1]


def test_failing_sabotaged_campaign_and_ddmin_stable_across_jobs(capsys):
    # Seed 0's first generated schedule fails under the self-test
    # sabotage, so this report includes violations AND the serial ddmin
    # minimization — the hardest thing to keep jobs-invariant.
    argv = ["--seeds", "1", "--schedules", "2", "--format", "json",
            "--sabotage", "disable-dual-primary-resolution"]
    outputs = {}
    for jobs in (1, 2, 4):
        code, out = _capture(capsys, chaos_main, argv + ["--jobs", str(jobs)])
        assert code == 1  # the sabotage must be caught at every jobs value
        outputs[jobs] = out
    assert '"minimization"' in outputs[1]
    assert outputs[2] == outputs[1]
    assert outputs[4] == outputs[1]


def test_replay_subjects_bytes_stable_across_jobs(capsys):
    argv = ["demo", "roundtrip-synthetic-selective", "--format", "json"]
    outputs = {}
    for jobs in (1, 2):
        code, out = _capture(capsys, replay_main, argv + ["--jobs", str(jobs)])
        assert code == 0
        outputs[jobs] = out
    assert outputs[2] == outputs[1]


def test_run_experiments_bytes_stable_across_jobs(capsys):
    outputs = {}
    for jobs in (1, 2):
        code, out = _capture(capsys, experiments_main, ["F3", "X1", "--jobs", str(jobs)])
        assert code == 0
        outputs[jobs] = out
    assert outputs[2] == outputs[1]


def test_sweep_rows_stable_across_jobs():
    kwargs = dict(thresholds=[2], timeouts=[500.0], seeds=1, schedules=1)
    assert sweep_detectors(jobs=2, **kwargs) == sweep_detectors(jobs=1, **kwargs)


def test_perf_check_chaos_gate_passes(capsys):
    code, out = _capture(
        capsys, perf_main,
        ["check-chaos", "--seeds", "1", "--schedules", "2", "--jobs", "2"],
    )
    assert code == 0
    assert "byte-identical" in out


def test_chaos_rejects_unknown_sabotage(capsys):
    assert chaos_main(["--sabotage", "no-such-hook", "--format", "json"]) == 2
