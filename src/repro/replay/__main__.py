"""``python -m repro.replay`` entry point."""

import sys

from repro.replay.cli import main

sys.exit(main())
