# Developer entry points.  `make verify` is the CI gate: tier-1 tests
# plus the static-analysis toolkit (see ANALYSIS.md).

PY := PYTHONPATH=src python

.PHONY: test lint lint-json verify

test:
	$(PY) -m pytest -x -q

lint:
	$(PY) -m repro.analysis src/repro --strict

lint-json:
	$(PY) -m repro.analysis src/repro --strict --format json

verify: test lint
