"""Unit tests for the lifecycle pass: manifest, matching, rules, CLI."""

from __future__ import annotations

import os

import pytest

from repro.analysis import cli, lifecycle
from repro.analysis.findings import AnalysisError
from repro.analysis.lifecycle import LifecycleSpec, PairSpec
from repro.analysis.walker import load_sources, run_passes

TIMER_SPEC = LifecycleSpec(
    pairs=(PairSpec("timer", "Kernel", "schedule", None, ("cancel",)),),
    teardowns=("close", "delete", "shutdown", "stop"),
    handler_prefixes=("on_", "_on_"),
)

SUBSCRIPTION_SPEC = LifecycleSpec(
    pairs=(PairSpec("subscription", "Bus", "subscribe", None, ("unsubscribe",)),),
    teardowns=("close", "delete", "shutdown", "stop"),
    handler_prefixes=("on_", "_on_"),
)


def _lint(tmp_path, source, spec, max_k=2, name="mod.py"):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    files, load_findings = load_sources([str(path)])
    assert load_findings == []
    return lifecycle.run_with_spec(files, spec, max_k)


def _ids(findings):
    return [(f.rule.rule_id, f.line) for f in findings]


# -- manifest parsing ------------------------------------------------------


def test_manifest_parses_pairs_teardowns_and_handlers(tmp_path):
    manifest = tmp_path / "life.manifest"
    manifest.write_text(
        "# comment\n"
        "pair timer Kernel.schedule -> cancel\n"
        "pair subscription Engine.on_boot.append -> remove, discard  # hooks\n"
        "teardown detach, retire\n"
        "handler handle_\n",
        encoding="utf-8",
    )
    spec = lifecycle.load_manifest(str(manifest))
    assert spec.pairs[0] == PairSpec("timer", "Kernel", "schedule", None, ("cancel",))
    assert spec.pairs[1] == PairSpec(
        "subscription", "Engine", "append", "on_boot", ("remove", "discard")
    )
    assert "detach" in spec.teardowns and "retire" in spec.teardowns
    assert "stop" in spec.teardowns  # defaults always included
    assert spec.handler_prefixes == ("handle_",)


@pytest.mark.parametrize(
    "line",
    [
        "pair gizmo Kernel.schedule -> cancel",  # unknown kind
        "pair timer Kernel.schedule",  # missing arrow
        "pair timer Kernel.schedule ->",  # no release
        "pair timer schedule -> cancel",  # no owner component
        "subscribe timer Kernel.schedule -> cancel",  # unknown directive
        "teardown",  # no names
    ],
)
def test_manifest_rejects_malformed_lines(tmp_path, line):
    manifest = tmp_path / "life.manifest"
    manifest.write_text(line + "\n", encoding="utf-8")
    with pytest.raises(AnalysisError):
        lifecycle.load_manifest(str(manifest))


def test_manifest_missing_file_is_a_usage_error():
    with pytest.raises(AnalysisError):
        lifecycle.load_manifest("/nonexistent/life.manifest")


def test_default_manifest_is_checked_in_and_parses():
    spec = lifecycle.load_manifest(lifecycle.DEFAULT_MANIFEST)
    acquires = {pair.acquire for pair in spec.pairs}
    assert {"schedule", "watch", "create_process", "subscribe"} <= acquires
    assert all(pair.kind in lifecycle.KINDS for pair in spec.pairs)
    assert "detach" in spec.teardowns


# -- handle rules (LIFE001/LIFE003/LIFE005) --------------------------------


LEAKED_TIMER = '''
class Looper:
    def __init__(self, kernel):
        self.kernel = kernel
        self._timer = None

    def start(self):
        self._timer = self.kernel.schedule(10.0, self._tick)

    def stop(self):
        pass

    def _tick(self):
        pass
'''


def test_stored_handle_without_release_is_flagged(tmp_path):
    assert _ids(_lint(tmp_path, LEAKED_TIMER, TIMER_SPEC)) == [("LIFE001", 8)]


RELEASED_VIA_HELPER = '''
class Looper:
    def __init__(self, kernel):
        self.kernel = kernel
        self._timer = None

    def start(self):
        self._cancel()
        self._timer = self.kernel.schedule(10.0, self._tick)

    def stop(self):
        self._cancel()

    def _cancel(self):
        if self._timer is not None:
            self.kernel.cancel(self._timer)
            self._timer = None

    def _tick(self):
        pass
'''


def test_release_through_helper_within_k_is_clean(tmp_path):
    assert _lint(tmp_path, RELEASED_VIA_HELPER, TIMER_SPEC) == []


def test_max_k_zero_cannot_see_the_helper_release(tmp_path):
    # With k=0 the search stops at the teardown bodies themselves, so
    # the cancel inside _cancel() is invisible: LIFE001, and LIFE005 on
    # the re-arm in start() whose own cancel helper is also out of reach.
    found = _ids(_lint(tmp_path, RELEASED_VIA_HELPER, TIMER_SPEC, max_k=0))
    assert ("LIFE001", 9) in found


def test_teardown_method_may_reacquire(tmp_path):
    source = LEAKED_TIMER.replace("def start(self)", "def stop2(self)")
    # Moving the acquire into a teardown-named method would exempt it;
    # renaming to a non-teardown name keeps the flag.
    assert _ids(_lint(tmp_path, source, TIMER_SPEC)) == [("LIFE001", 8)]


SELF_RESCHEDULING = '''
class Looper:
    def __init__(self, kernel):
        self.kernel = kernel

    def stop(self):
        pass

    def _tick(self):
        self.kernel.schedule(10.0, self._tick)
'''


def test_discarded_self_rescheduling_loop_is_flagged(tmp_path):
    assert _ids(_lint(tmp_path, SELF_RESCHEDULING, TIMER_SPEC)) == [("LIFE001", 10)]


def test_discarded_one_shot_is_assumed_self_limiting(tmp_path):
    source = SELF_RESCHEDULING.replace("self.kernel.schedule(10.0, self._tick)",
                                       "self.kernel.schedule(10.0, self._other)")
    assert _lint(tmp_path, source, TIMER_SPEC) == []


REARM = '''
class Watchdog:
    def __init__(self, kernel):
        self.kernel = kernel
        self._timer = None

    def rearm(self):
        self._timer = self.kernel.schedule(10.0, self._expired)

    def stop(self):
        if self._timer is not None:
            self.kernel.cancel(self._timer)

    def _expired(self):
        self._timer = self.kernel.schedule(10.0, self._expired)
'''


def test_rearm_without_cancel_is_flagged_outside_own_callback(tmp_path):
    # rearm() overwrites without cancelling -> LIFE005; the re-arm
    # inside _expired() (the handle's own callback) is exempt.
    assert _ids(_lint(tmp_path, REARM, TIMER_SPEC)) == [("LIFE005", 8)]


def test_super_chained_teardown_reaches_base_release(tmp_path):
    source = '''
class Base:
    def stop(self):
        if self.process is not None:
            self.process.kill()

class App(Base):
    def __init__(self, system):
        self.system = system
        self.process = None

    def launch(self):
        self.process = self.system.create_process("app")

    def stop(self):
        super().stop()
'''
    spec = LifecycleSpec(
        pairs=(PairSpec("process", "System", "create_process", None, ("kill",)),),
        teardowns=("stop",),
        handler_prefixes=("on_",),
    )
    assert _lint(tmp_path, source, spec) == []


# -- registration rules (LIFE002/LIFE004) ----------------------------------


def test_registration_release_must_match_self_rooted_chain(tmp_path):
    source = '''
class View:
    def __init__(self, bus_a, bus_b):
        self.bus_a = bus_a
        self.bus_b = bus_b

    def attach(self):
        self.bus_a.subscribe(self._on_event)

    def stop(self):
        self.bus_b.unsubscribe(self._on_event)

    def _on_event(self, event):
        pass
'''
    # unsubscribing a *different* self-rooted receiver does not balance.
    assert _ids(_lint(tmp_path, source, SUBSCRIPTION_SPEC)) == [("LIFE004", 8)]
    fixed = source.replace("self.bus_b.unsubscribe", "self.bus_a.unsubscribe")
    assert _lint(tmp_path, fixed, SUBSCRIPTION_SPEC) == []


def test_hook_list_qualifier_matching(tmp_path):
    source = '''
class Monitor:
    def __init__(self):
        self.notes = []

    def on_engine(self, engine):
        def on_boot(eng):
            pass
        engine.on_boot.append(on_boot)

    def _remember(self, note):
        self.notes.append(note)
'''
    spec = LifecycleSpec(
        pairs=(PairSpec("subscription", "Engine", "append", "on_boot", ("remove",)),),
        teardowns=("detach",),
        handler_prefixes=("on_",),
    )
    found = _ids(_lint(tmp_path, source, spec))
    # engine.on_boot.append matches the qualified pair; the plain
    # self.notes.append in _remember does not.
    assert found == [("LIFE004", 9)]


# -- growth rule (LIFE006) -------------------------------------------------


def test_handler_growth_without_prune_is_flagged(tmp_path):
    source = '''
class Collector:
    def __init__(self):
        self.log = []

    def _on_message(self, message):
        self.log.append(message)
'''
    assert _ids(_lint(tmp_path, source, TIMER_SPEC)) == [("LIFE006", 7)]


def test_growth_with_prune_anywhere_in_class_is_clean(tmp_path):
    source = '''
class Collector:
    def __init__(self):
        self.log = []

    def _on_message(self, message):
        self.log.append(message)

    def drain(self):
        self.log.clear()
'''
    assert _lint(tmp_path, source, TIMER_SPEC) == []


def test_bounded_deque_is_self_pruning(tmp_path):
    source = '''
from collections import deque


class Collector:
    def __init__(self):
        self.log = deque(maxlen=64)

    def _on_message(self, message):
        self.log.append(message)
'''
    assert _lint(tmp_path, source, TIMER_SPEC) == []


def test_growth_reached_through_handler_callee_is_flagged(tmp_path):
    source = '''
class Collector:
    def __init__(self):
        self.log = []

    def _on_message(self, message):
        self._note(message)

    def _note(self, message):
        self.log.append(message)
'''
    assert _ids(_lint(tmp_path, source, TIMER_SPEC)) == [("LIFE006", 10)]


def test_registered_callback_counts_as_handler(tmp_path):
    source = '''
class Poller:
    def __init__(self, kernel):
        self.kernel = kernel
        self.samples = []
        self._timer = None

    def stop(self):
        if self._timer is not None:
            self.kernel.cancel(self._timer)

    def _sample(self):
        self.samples.append(1)
        self._timer = self.kernel.schedule(10.0, self._sample)
'''
    assert _ids(_lint(tmp_path, source, TIMER_SPEC)) == [("LIFE006", 13)]


def test_suppression_comment_silences_lifecycle_finding(tmp_path):
    source = LEAKED_TIMER.replace(
        "self._timer = self.kernel.schedule(10.0, self._tick)",
        "self._timer = self.kernel.schedule(10.0, self._tick)  # oftt-lint: ok[leaked-timer]",
    )
    path = tmp_path / "mod.py"
    path.write_text(source, encoding="utf-8")
    files, load_findings = load_sources([str(path)])
    assert load_findings == []
    assert run_passes(files, [lambda fs: lifecycle.run_with_spec(fs, TIMER_SPEC)]) == []


# -- CLI wiring ------------------------------------------------------------


LEAKY_CLI_SOURCE = (
    "class Looper:\n"
    "    def __init__(self, kernel):\n"
    "        self.kernel = kernel\n"
    "        self._timer = None\n"
    "\n"
    "    def start(self):\n"
    "        self._timer = self.kernel.schedule(10.0, self._tick)\n"
    "\n"
    "    def stop(self):\n"
    "        pass\n"
    "\n"
    "    def _tick(self):\n"
    "        pass\n"
)


def test_cli_lifecycle_flag_runs_the_pass(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(LEAKY_CLI_SOURCE, encoding="utf-8")
    code = cli.main([str(target), "--passes", "life", "--strict", "--no-cache"])
    out = capsys.readouterr().out
    assert code == 1  # warnings gate under --strict
    assert "LIFE001" in out


def test_cli_only_family_selector(tmp_path, capsys):
    target = tmp_path / "mod.py"
    # wall-clock import (DET001 territory) + lifecycle leak in one file.
    target.write_text("import time\n\n\n" + LEAKY_CLI_SOURCE, encoding="utf-8")
    code = cli.main([str(target), "--only", "LIFE", "--strict", "--no-cache"])
    out = capsys.readouterr().out
    assert code == 1
    assert "LIFE001" in out
    assert "DET" not in out  # other families filtered out


def test_cli_only_rejects_unknown_family(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    assert cli.main([str(target), "--only", "BOGUS", "--no-cache"]) == 2


def test_list_rules_is_grouped_by_family(capsys):
    assert cli.main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "# LIFE" in out and "# HOT" in out and "# DET" in out
    for rule_id in ("LIFE001", "LIFE002", "LIFE003", "LIFE004", "LIFE005", "LIFE006"):
        assert rule_id in out


def test_cli_dogfood_lifecycle_is_clean_over_src():
    # The acceptance bar: the shipped manifest over src/repro yields zero
    # unsuppressed lifecycle findings (fixed or annotated reviewed-benign).
    files, load_findings = load_sources([os.path.join("src", "repro")])
    assert load_findings == []
    findings = run_passes(files, [lifecycle.run])
    assert findings == []
