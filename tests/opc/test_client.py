"""Unit tests for the OPC client helper (local and remote modes)."""

import pytest

from repro.com.runtime import ComRuntime
from repro.errors import OpcError
from repro.opc.client import OpcClient
from repro.opc.server import OpcServer

from tests.conftest import make_world


def make_env():
    world = make_world()
    server_sys = world.add_machine("server")
    client_sys = world.add_machine("client")
    server_rt = ComRuntime(server_sys, world.network)
    client_rt = ComRuntime(client_sys, world.network)
    server = OpcServer(server_rt, "OPC.T.1")
    for item_id in ("plc.a", "plc.b"):
        server.namespace.define_simple(item_id, 0.0)
    server.namespace.define_simple("plc.sp", 0.0, access="read_write")
    return world, server, server_rt, client_rt


def drive(world, generator, duration=5_000.0):
    outcome = {}

    def runner():
        outcome["value"] = yield from generator
    world.kernel.spawn(runner())
    world.run_for(duration)
    return outcome


def test_local_mode_read_write_and_groups():
    world, server, server_rt, _client_rt = make_env()
    client = OpcClient(server_rt, "local-client")
    client.connect_local(server)
    assert client.connected

    received = []

    def use():
        group = yield from client.add_group("g", update_rate=50.0)
        handles = yield from group.add_items(["plc.a"])
        group.set_callback(lambda name, batch: received.append(batch))
        values = yield from group.sync_read(handles)
        writes = []
        server.namespace.on_write("plc.sp", lambda item, value: writes.append(value))
        yield from client.write_items([("plc.sp", 9.0)])
        return values, writes

    outcome = drive(world, use())
    server.update_item("plc.a", 42.0)
    world.run_for(200.0)
    values, writes = outcome["value"]
    assert values[0].value == 0.0
    assert writes == [9.0]
    assert received and received[0][0][2].value == 42.0


def test_remote_mode_end_to_end():
    world, server, server_rt, client_rt = make_env()
    server_ref = server_rt.export(server, label="opc")
    client = OpcClient(client_rt, "remote-client")
    received = []

    def use():
        status = yield from client.connect_remote(server_ref)
        group = yield from client.add_group("g", update_rate=50.0)
        handles = yield from group.add_items(["plc.a", "plc.b"])
        group.set_callback(lambda name, batch: received.append(batch))
        values = yield from group.sync_read(handles)
        return status, values

    outcome = drive(world, use())
    status, values = outcome["value"]
    assert status["name"] == "OPC.T.1"
    assert [v.value for v in values] == [0.0, 0.0]
    server.update_item("plc.b", 7.0)
    world.run_for(500.0)
    assert received and received[0][0][2].value == 7.0


def test_remote_group_less_read():
    world, server, server_rt, client_rt = make_env()
    server.update_item("plc.a", 5.5)
    server_ref = server_rt.export(server)
    client = OpcClient(client_rt, "c")

    def use():
        yield from client.connect_remote(server_ref)
        values = yield from client.read_items(["plc.a"])
        return values

    outcome = drive(world, use())
    assert outcome["value"][0].value == 5.5


def test_disconnected_client_rejects_operations():
    world, _server, _server_rt, client_rt = make_env()
    client = OpcClient(client_rt, "c")
    with pytest.raises(OpcError):
        list(client.read_items(["plc.a"]))


def test_sink_routing_per_group():
    world, server, server_rt, _client_rt = make_env()
    client = OpcClient(server_rt, "c")
    client.connect_local(server)
    seen = {"g1": [], "g2": []}

    def use():
        group1 = yield from client.add_group("g1", update_rate=10.0)
        group2 = yield from client.add_group("g2", update_rate=10.0)
        yield from group1.add_items(["plc.a"])
        yield from group2.add_items(["plc.b"])
        group1.set_callback(lambda name, batch: seen["g1"].append(batch))
        group2.set_callback(lambda name, batch: seen["g2"].append(batch))

    drive(world, use())
    server.update_item("plc.a", 1.0)
    server.update_item("plc.b", 2.0)
    world.run_for(100.0)
    assert seen["g1"][0][0][1] == "plc.a"
    assert seen["g2"][0][0][1] == "plc.b"
