"""First-divergence diff between two canonical event streams.

The diff is deliberately *first*-divergence only: once two deterministic
runs fork, everything downstream differs for cascading reasons, so only
the earliest mismatch localizes the bug.  The report carries the
mismatching events from both runs, a field-level delta, and a window of
surrounding context from each stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.replay.canonical import CanonicalEvent

#: Events of surrounding context shown on each side of a divergence.
DEFAULT_CONTEXT = 5


@dataclass(frozen=True)
class FieldDelta:
    """One differing field between the two runs' events."""

    field: str
    first: Any
    second: Any

    def as_wire(self) -> Dict[str, Any]:
        return {"field": self.field, "first": self.first, "second": self.second}

    def render(self) -> str:
        return f"    {self.field}: run1={self.first!r}  run2={self.second!r}"


@dataclass(frozen=True)
class Divergence:
    """The earliest point where two runs' event streams disagree."""

    index: int  #: global stream position of the first mismatch
    first: Optional[CanonicalEvent]  #: run 1's event (None: run 1 ended early)
    second: Optional[CanonicalEvent]  #: run 2's event (None: run 2 ended early)
    deltas: List[FieldDelta] = field(default_factory=list)
    context_first: List[CanonicalEvent] = field(default_factory=list)
    context_second: List[CanonicalEvent] = field(default_factory=list)

    @property
    def component(self) -> str:
        """The component the divergence is attributed to."""
        event = self.first if self.first is not None else self.second
        return event.component if event is not None else ""

    @property
    def event(self) -> str:
        """The event name the divergence is attributed to."""
        event = self.first if self.first is not None else self.second
        return event.event if event is not None else ""

    def as_wire(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "component": self.component,
            "event": self.event,
            "first": self.first.as_wire() if self.first is not None else None,
            "second": self.second.as_wire() if self.second is not None else None,
            "deltas": [delta.as_wire() for delta in self.deltas],
            "context_first": [event.as_wire() for event in self.context_first],
            "context_second": [event.as_wire() for event in self.context_second],
        }

    def render(self) -> str:
        lines = [f"first divergence at event #{self.index}: component={self.component!r} event={self.event!r}"]
        if self.first is None:
            lines.append("  run 1: <stream ended>")
        else:
            lines.append(f"  run 1: {self.first.render()}")
        if self.second is None:
            lines.append("  run 2: <stream ended>")
        else:
            lines.append(f"  run 2: {self.second.render()}")
        if self.deltas:
            lines.append("  field deltas:")
            lines.extend(delta.render() for delta in self.deltas)
        if self.context_first:
            lines.append("  context (run 1):")
            lines.extend(f"    {event.render()}" for event in self.context_first)
        if self.context_second:
            lines.append("  context (run 2):")
            lines.extend(f"    {event.render()}" for event in self.context_second)
        return "\n".join(lines)


def _field_deltas(a: CanonicalEvent, b: CanonicalEvent) -> List[FieldDelta]:
    deltas: List[FieldDelta] = []
    for name in ("time", "category", "component", "event", "component_seq"):
        first, second = getattr(a, name), getattr(b, name)
        if first != second:
            deltas.append(FieldDelta(field=name, first=first, second=second))
    if a.detail != b.detail:
        keys = sorted(set(a.detail) | set(b.detail))
        for key in keys:
            first, second = a.detail.get(key), b.detail.get(key)
            if first != second:
                deltas.append(FieldDelta(field=f"detail.{key}", first=first, second=second))
    return deltas


def first_divergence(
    first: List[CanonicalEvent],
    second: List[CanonicalEvent],
    context: int = DEFAULT_CONTEXT,
) -> Optional[Divergence]:
    """Earliest mismatch between two canonical streams (None if equal)."""
    for index in range(max(len(first), len(second))):
        a = first[index] if index < len(first) else None
        b = second[index] if index < len(second) else None
        if a is not None and b is not None and a.key() == b.key():
            continue
        low = max(0, index - context)
        high = index + context + 1
        return Divergence(
            index=index,
            first=a,
            second=b,
            deltas=_field_deltas(a, b) if a is not None and b is not None else [],
            context_first=first[low:high],
            context_second=second[low:high],
        )
    return None
