"""Pluggable replication strategies (ROADMAP item 3).

The paper hard-codes one replication mode: the cold-passive
primary/backup pair (§2.2.1 role negotiation, §2.2.2 periodic
checkpoints, takeover on peer loss).  :class:`ReplicationStrategy`
factors that behaviour out of :class:`~repro.core.engine.OfttEngine`
into an overridable policy object so the same engine, FTIMs and
diverter can run alternative modes.  Three built-ins:

* :class:`ColdPassiveStrategy` — the paper's behaviour, extracted
  verbatim.  Selecting it (the default) is byte-identical to the
  pre-strategy engine on every scenario; the replay gate proves it.
* :class:`LeaderFollowerStrategy` — LLFT-style (arxiv 1004.1864):
  instead of full checkpoints every ``checkpoint_period``, the leader
  streams *incremental state updates* every ``lf_update_period`` (one
  delta per workload message at matching rates).  The follower's
  mirrored store merges each delta onto its latest image, so a failover
  promotes from a near-fresh image with no checkpoint gap to replay.
* :class:`LogReplayDRStrategy` — message-logging + checkpointing
  disaster recovery (arxiv 0911.3092): cold-passive behaviour within
  the pair, plus the primary mirrors every checkpoint to a remote
  disaster-recovery site (``config.dr_node``) over MSMQ
  store-and-forward, and both engines heartbeat the site.  Together
  with the diverter's sender-side message log (see
  :class:`~repro.core.diverter.DiverterClient` ``mirror``), the site's
  :class:`~repro.core.drsite.DRSite` can reconstruct the application
  state from last-checkpoint + log replay after *total pair loss* —
  the one failure the paper's pair cannot survive.

The strategy is selected by ``OfttConfig.replication_strategy`` and
instantiated per engine in ``OfttEngine.__init__``; the lifecycle hooks
it owns are documented on the base class and in DESIGN.md.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from repro.core.checkpoint import Checkpoint
from repro.core.drsite import DR_PORT, DR_QUEUE
from repro.core.roles import Role
from repro.errors import OfttError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import OfttEngine
    from repro.core.recovery import RecoveryDecision

#: Monitor name used for the peer engine's heartbeat watch.  Lives here
#: (not in engine.py) so strategies can reference it without an import
#: cycle; the engine module re-exports it for existing importers.
PEER = "peer-engine"


class ReplicationStrategy:
    """Policy object owning an engine's replication behaviour.

    One instance per engine (strategies may keep per-node state).  The
    engine calls :meth:`attach` once during construction, then drives
    the hooks below; everything not overridden inherits the cold-passive
    defaults documented per method.
    """

    name = "replication"

    def __init__(self) -> None:
        self.engine: Optional["OfttEngine"] = None

    def attach(self, engine: "OfttEngine") -> None:
        """Bind to the owning engine (called once from ``__init__``)."""
        self.engine = engine

    # -- checkpoint policy ---------------------------------------------------------

    def checkpoint_policy(self, app_name: str, requested: Optional[float]) -> Tuple[float, bool]:
        """``(period, incremental)`` for a new FTIM of *app_name*.

        *requested* is the application's explicit ``checkpoint_period``
        override (None = use the configured default).  The base policy
        is the paper's: the requested or configured period, full images.
        """
        period = requested if requested is not None else self.engine.config.checkpoint_period
        return period, False

    # -- replication stream --------------------------------------------------------

    def replicate(self, checkpoint: Checkpoint) -> None:
        """Ship a locally submitted checkpoint to the replica(s)."""
        raise NotImplementedError

    def on_peer_checkpoint(self, payload: Dict[str, Any]) -> None:
        """A ``ckpt`` wire message arrived from the peer."""
        raise NotImplementedError

    def on_resync_request(self, payload: Dict[str, Any]) -> None:
        """The peer cannot merge our incremental stream (``ckpt-resync``)."""

    # -- role lifecycle ------------------------------------------------------------

    def on_peer_lost(self, silence: float) -> None:
        """The peer engine's heartbeat went silent."""
        raise NotImplementedError

    def on_takeover_request(self, payload: Dict[str, Any]) -> None:
        """The peer asked us to take over (deliberate switchover)."""
        raise NotImplementedError

    def on_failover_escalation(self, component: str, decision: "RecoveryDecision") -> None:
        """The recovery manager escalated a component failure to failover."""
        raise NotImplementedError

    def on_heartbeat_tick(self) -> None:
        """Called every peer-heartbeat period (extra liveness traffic)."""

    def describe(self) -> Dict[str, Any]:
        """Strategy name + counters (for status surfaces and tests)."""
        return {"strategy": self.name}


class ColdPassiveStrategy(ReplicationStrategy):
    """The paper's primary/backup pair, extracted from the engine.

    Periodic full checkpoints mirrored to the peer; the backup promotes
    on peer heartbeat loss or an explicit takeover request; component
    failures past the local-restart budget switch over to the peer.
    """

    name = "cold-passive"

    def replicate(self, checkpoint: Checkpoint) -> None:
        self.engine._send_to_peer({"kind": "ckpt", "data": checkpoint.as_wire()})

    def on_peer_checkpoint(self, payload: Dict[str, Any]) -> None:
        engine = self.engine
        checkpoint = Checkpoint.from_wire(payload["data"])
        if checkpoint.incremental:
            base_sequence = engine.peer_store.latest_sequence(checkpoint.app_name)
            if base_sequence == 0 or checkpoint.sequence > base_sequence + 1:
                # A delta we cannot soundly merge: this store has no base
                # (fresh after a node reinstall) or intermediate deltas
                # were lost in transit.  Merging onto a stale base would
                # silently drop the variables only the missing deltas
                # carried, so reject it and ask the sender for a full
                # image instead.  (Sequences at or below the base are the
                # ordinary stale-duplicate case store() already rejects.)
                engine.peer_store.rejected_count += 1
                engine._stats["checkpoints_rx"] += 1
                engine._send_to_peer({"kind": "ckpt-resync", "app": checkpoint.app_name})
                return
        stored = engine.peer_store.store(checkpoint)
        engine._stats["checkpoints_rx"] += 1
        if stored:
            engine._send_to_peer(
                {"kind": "ckpt-ack", "app": checkpoint.app_name, "sequence": checkpoint.sequence}
            )
            for callback in list(engine.on_checkpoint_stored):
                callback(engine, checkpoint)

    def on_resync_request(self, payload: Dict[str, Any]) -> None:
        # Reset the named application's FTIM so its next capture is a
        # full image, re-basing the peer's incremental chain.
        app = self.engine.applications.get(payload.get("app", ""))
        ftim = getattr(getattr(app, "api", None), "ftim", None)
        if ftim is not None:
            ftim.force_full_capture()

    def on_peer_lost(self, silence: float) -> None:
        engine = self.engine
        if engine.role is Role.BACKUP:
            engine._promote("peer heartbeat loss")
        elif engine.role is Role.PRIMARY:
            engine.degraded = True
            engine._report_now(PEER)

    def on_takeover_request(self, payload: Dict[str, Any]) -> None:
        engine = self.engine
        if engine.role is Role.BACKUP:
            engine._promote(f"takeover request: {payload.get('reason', '')}")
        elif engine.role is Role.PRIMARY:
            # Already primary (e.g. raced with peer-loss promotion): fine.
            engine._broadcast_role_change()

    def on_failover_escalation(self, component: str, decision: "RecoveryDecision") -> None:
        self.engine._initiate_switchover(f"{component}: {decision.reason}")


class LeaderFollowerStrategy(ColdPassiveStrategy):
    """LLFT-style leader-follower replication (arxiv 1004.1864).

    Role lifecycle and takeover are inherited from cold-passive; what
    changes is the replication stream.  The checkpoint policy forces
    every FTIM onto ``config.lf_update_period`` with *incremental*
    capture, so the leader ships one small state delta per update period
    (per workload message, at matching rates) instead of a full image
    every ``checkpoint_period``.  The follower's store merges each delta
    onto its latest image at insertion, so its newest mirrored image is
    always a full, near-fresh replica — promotion restarts the
    application without the checkpoint gap a cold-passive takeover
    replays into.
    """

    name = "leader-follower"

    def __init__(self) -> None:
        super().__init__()
        self.updates_replicated = 0
        self.updates_applied = 0

    def checkpoint_policy(self, app_name: str, requested: Optional[float]) -> Tuple[float, bool]:
        return self.engine.config.lf_update_period, True

    def replicate(self, checkpoint: Checkpoint) -> None:
        self.updates_replicated += 1
        super().replicate(checkpoint)

    def on_peer_checkpoint(self, payload: Dict[str, Any]) -> None:
        before = self.engine.peer_store.stored_count
        super().on_peer_checkpoint(payload)
        self.updates_applied += self.engine.peer_store.stored_count - before

    def describe(self) -> Dict[str, Any]:
        return {
            "strategy": self.name,
            "update_period": self.engine.config.lf_update_period if self.engine else None,
            "updates_replicated": self.updates_replicated,
            "updates_applied": self.updates_applied,
        }


class LogReplayDRStrategy(ColdPassiveStrategy):
    """Message-logging + checkpointing disaster recovery (arxiv 0911.3092).

    Within the pair this is cold-passive.  Additionally, every submitted
    checkpoint is mirrored over MSMQ store-and-forward to the remote
    ``config.dr_node`` (persistent, retried — the site may be slow or
    briefly unreachable), and each peer-heartbeat tick also pings the DR
    site so it can tell "pair alive" from "total pair loss".  The
    receiving :class:`~repro.core.drsite.DRSite` journals checkpoint and
    message records and reconstructs last-checkpoint + log-replay state
    when the pair goes silent past ``config.dr_activation_timeout``.
    """

    name = "log-replay-dr"

    def __init__(self) -> None:
        super().__init__()
        self.checkpoints_mirrored = 0

    def replicate(self, checkpoint: Checkpoint) -> None:
        super().replicate(checkpoint)
        engine = self.engine
        if engine.config.dr_node:
            engine.context.qmgr.send(
                engine.config.dr_node,
                DR_QUEUE,
                {"kind": "ckpt", "data": checkpoint.as_wire()},
                persistent=True,
                label="dr-ckpt",
            )
            self.checkpoints_mirrored += 1

    def on_heartbeat_tick(self) -> None:
        engine = self.engine
        if engine.config.dr_node:
            engine.context.system.node.send(
                engine.config.dr_node,
                DR_PORT,
                {"kind": "hb", "node": engine.node_name, "role": engine.role.value},
                size=32,
            )

    def describe(self) -> Dict[str, Any]:
        return {
            "strategy": self.name,
            "dr_node": self.engine.config.dr_node if self.engine else "",
            "checkpoints_mirrored": self.checkpoints_mirrored,
        }


#: name -> class; keep in sync with ``config.REPLICATION_STRATEGIES``
#: (pinned by tests/core/test_strategy.py).
STRATEGIES: Dict[str, type] = {
    ColdPassiveStrategy.name: ColdPassiveStrategy,
    LeaderFollowerStrategy.name: LeaderFollowerStrategy,
    LogReplayDRStrategy.name: LogReplayDRStrategy,
}


def create_strategy(name: str) -> ReplicationStrategy:
    """Instantiate the strategy registered under *name*."""
    cls = STRATEGIES.get(name)
    if cls is None:
        raise OfttError(f"unknown replication strategy {name!r}; available: {sorted(STRATEGIES)}")
    return cls()
