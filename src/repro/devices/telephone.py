"""The §4 demo workload: a simulated small-office telephone system.

"The application keeps track of the usage of a simulated small office
telephone system that consists of 5 telephone lines and 10 callers.
Numbers of busy lines are displayed in the histogram."

:class:`TelephoneSystem` runs the callers as simulation processes: each
caller alternates idle periods and call attempts; an attempt seizes a free
line for an exponential call duration, or is *blocked* when all lines are
busy (an Erlang-B loss system).  Every start/end/blocked event is handed
to registered listeners — in the demo configuration the listener forwards
events through the Message Diverter to the Call Track application.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.simnet.events import Timeout
from repro.simnet.kernel import Process, SimKernel


@dataclass(frozen=True)
class CallEvent:
    """One telephone-system event."""

    kind: str  # "start" | "end" | "blocked"
    caller: int
    line: int  # -1 for blocked attempts
    time: float
    busy_lines: int  # busy count *after* the event
    sequence: int

    def as_wire(self) -> dict:
        """Marshalable form for queueing to the Call Track app."""
        return {
            "kind": self.kind,
            "caller": self.caller,
            "line": self.line,
            "time": self.time,
            "busy_lines": self.busy_lines,
            "sequence": self.sequence,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "CallEvent":
        """Inverse of :meth:`as_wire`."""
        return cls(
            kind=data["kind"],
            caller=data["caller"],
            line=data["line"],
            time=data["time"],
            busy_lines=data["busy_lines"],
            sequence=data["sequence"],
        )


class TelephoneSystem:
    """The 5-line / 10-caller simulator (both counts configurable)."""

    def __init__(
        self,
        kernel: SimKernel,
        rng,
        lines: int = 5,
        callers: int = 10,
        mean_idle: float = 8_000.0,
        mean_call: float = 4_000.0,
    ) -> None:
        self.kernel = kernel
        self.rng = rng
        self.line_count = lines
        self.caller_count = callers
        self.mean_idle = mean_idle
        self.mean_call = mean_call
        self.line_busy: List[bool] = [False] * lines
        self.listeners: List[Callable[[CallEvent], None]] = []
        self.events: List[CallEvent] = []
        self.running = False
        self.blocked_count = 0
        self.completed_count = 0
        self._sequence = itertools.count(1)
        self._processes: List[Process] = []

    # -- wiring ------------------------------------------------------------

    def add_listener(self, listener: Callable[[CallEvent], None]) -> None:
        """Receive every event as it happens."""
        self.listeners.append(listener)

    @property
    def busy_lines(self) -> int:
        """Number of currently busy lines."""
        return sum(self.line_busy)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start all caller processes."""
        if self.running:
            return
        self.running = True
        for caller in range(self.caller_count):
            process = self.kernel.spawn(self._caller_loop(caller), name=f"caller:{caller}")
            self._processes.append(process)

    def stop(self) -> None:
        """Stop the simulator (lines are freed)."""
        self.running = False
        for process in self._processes:
            process.kill()
        self._processes.clear()
        self.line_busy = [False] * self.line_count

    # -- caller behaviour --------------------------------------------------------

    def _caller_loop(self, caller: int):
        while self.running:
            yield Timeout(self.rng.expovariate(1.0 / self.mean_idle))
            if not self.running:
                return
            line = self._seize_line()
            if line is None:
                self.blocked_count += 1
                self._emit("blocked", caller, -1)
                continue
            self._emit("start", caller, line)
            yield Timeout(self.rng.expovariate(1.0 / self.mean_call))
            self._release_line(line)
            self.completed_count += 1
            self._emit("end", caller, line)

    def _seize_line(self) -> Optional[int]:
        for line, busy in enumerate(self.line_busy):
            if not busy:
                self.line_busy[line] = True
                return line
        return None

    def _release_line(self, line: int) -> None:
        self.line_busy[line] = False

    def _emit(self, kind: str, caller: int, line: int) -> None:
        event = CallEvent(
            kind=kind,
            caller=caller,
            line=line,
            time=self.kernel.now,
            busy_lines=self.busy_lines,
            sequence=next(self._sequence),
        )
        self.events.append(event)
        for listener in self.listeners:
            listener(event)

    # -- reference statistics (ground truth for recovery checks) -----------------

    def busy_histogram(self) -> Dict[int, int]:
        """Distribution of busy-line counts over emitted events."""
        histogram: Dict[int, int] = {k: 0 for k in range(self.line_count + 1)}
        for event in self.events:
            histogram[event.busy_lines] += 1
        return histogram

    def __repr__(self) -> str:
        return (
            f"TelephoneSystem(lines={self.line_count}, callers={self.caller_count}, "
            f"busy={self.busy_lines}, events={len(self.events)})"
        )
