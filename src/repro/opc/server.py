"""The OPC server COM object.

"A hardware vendor encapsulates details of the device driver into a COM
object (called OPC server) that provides standard interfaces ... to any
application (called an OPC client) in a consistent manner" (§1).

The server owns an :class:`~repro.opc.items.ItemNamespace`, manages
:class:`~repro.opc.group.OpcGroup` subscriptions, and is fed by the device
layer through :meth:`OpcServer.update_item`.  Per the paper (§2.2.2) the
OPC server is *stateless* from OFTT's perspective — its cache is rebuilt
from the devices — which is why it gets the non-checkpointing server FTIM.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional

from repro.com.interfaces import declare_interface
from repro.com.object import ComObject
from repro.com.runtime import ComRuntime
from repro.com.hresult import OPC_E_DUPLICATENAME
from repro.errors import OpcError
from repro.opc.group import OpcGroup
from repro.opc.items import ItemNamespace
from repro.opc.types import OpcValue, Quality

IOPC_SERVER = declare_interface(
    "IOPCServer",
    ("AddGroup", "AddGroupRemote", "RemoveGroup", "GetGroupByName", "GetStatus", "Browse"),
)

IOPC_ITEM_IO = declare_interface("IOPCItemIO", ("Read", "WriteVQT"))


class ServerState(enum.Enum):
    """OPC server status values (OPC_STATUS_*)."""

    RUNNING = "running"
    FAILED = "failed"
    SUSPENDED = "suspended"
    NO_CONFIG = "noConfig"


class OpcServer(ComObject):
    """An OPC-DA server."""

    IMPLEMENTS = (IOPC_SERVER, IOPC_ITEM_IO)

    def __init__(self, runtime: ComRuntime, name: str, vendor: str = "SoHaR Simulated Devices") -> None:
        super().__init__()
        self.runtime = runtime
        self.kernel = runtime.system.kernel
        self.name = name
        self.vendor = vendor
        self.namespace = ItemNamespace()
        self.groups: Dict[str, OpcGroup] = {}
        self.state = ServerState.NO_CONFIG
        self.started_at = self.kernel.now
        self.update_count = 0
        # Optional hosting process: exports die with it (DCOM liveness).
        self.host_process = None

    # -- device-side feed ------------------------------------------------------

    def update_item(self, item_id: str, value: Any, quality: Quality = Quality.GOOD) -> OpcValue:
        """Push a new device reading into the cache and notify groups."""
        new_value = self.namespace.update(item_id, value, quality, self.kernel.now)
        self.update_count += 1
        if self.state is ServerState.NO_CONFIG:
            self.state = ServerState.RUNNING
        for group in self.groups.values():
            group._on_item_update(item_id, new_value)
        return new_value

    def mark_comm_failure(self) -> None:
        """Stamp every item BAD (fieldbus lost) and flag the server."""
        self.namespace.mark_all(Quality.BAD_COMM_FAILURE, self.kernel.now)
        self.state = ServerState.FAILED

    def resume(self) -> None:
        """Return to RUNNING after a comm failure."""
        self.state = ServerState.RUNNING

    # -- IOPCServer ----------------------------------------------------------------

    def AddGroup(self, name: str, update_rate: float = 100.0, deadband: float = 0.0) -> OpcGroup:
        """Create a subscription group (error on duplicate names)."""
        if name in self.groups:
            raise OpcError(f"server {self.name}: group {name} exists", hresult=OPC_E_DUPLICATENAME)
        group = OpcGroup(self, name, update_rate=update_rate, deadband=deadband)
        self.groups[name] = group
        return group

    def AddGroupRemote(self, name: str, update_rate: float = 100.0, deadband: float = 0.0):
        """Remote-activation variant of :meth:`AddGroup`.

        Returns the new group's ObjRef so DCOM clients can proxy it.
        """
        group = self.AddGroup(name, update_rate=update_rate, deadband=deadband)
        return self.runtime.export(group, label=f"{self.name}.{name}", process=self.host_process)

    def RemoveGroup(self, name: str) -> None:
        """Destroy a group."""
        if name not in self.groups:
            raise OpcError(f"server {self.name}: no group {name}")
        group = self.groups.pop(name)
        group.clear_callback()
        group.Release()

    def _on_group_collected(self, name: str) -> None:
        """A group's remote sink died (ping GC): drop the group."""
        group = self.groups.pop(name, None)
        if group is not None:
            group.Release()

    def GetGroupByName(self, name: str) -> OpcGroup:
        """Look up a group."""
        if name not in self.groups:
            raise OpcError(f"server {self.name}: no group {name}")
        return self.groups[name]

    def GetStatus(self) -> dict:
        """Server status block (IOPCServer::GetStatus)."""
        return {
            "vendor": self.vendor,
            "name": self.name,
            "state": self.state.value,
            "start_time": self.started_at,
            "current_time": self.kernel.now,
            "group_count": len(self.groups),
            "item_count": len(self.namespace),
            "update_count": self.update_count,
        }

    def Browse(self, branch: str = "") -> List[str]:
        """Browse the item hierarchy."""
        return self.namespace.browse(branch)

    # -- IOPCItemIO -------------------------------------------------------------------

    def Read(self, item_ids: List[str]) -> List[dict]:
        """Device-independent read of current values (wire form)."""
        return [self.namespace.read(item_id).as_wire() for item_id in item_ids]

    def WriteVQT(self, writes: List[Any]) -> None:
        """Write values to items (list of ``(item_id, value)`` pairs)."""
        for item_id, value in writes:
            self.namespace.client_write(item_id, value)

    def final_release(self) -> None:
        for group in list(self.groups.values()):
            group.clear_callback()
        self.groups.clear()

    def __repr__(self) -> str:
        return f"OpcServer({self.name}, {self.state.value}, items={len(self.namespace)}, groups={len(self.groups)})"
