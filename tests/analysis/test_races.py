"""Self-tests for the sim race detector."""

from __future__ import annotations

from repro.analysis import races

from tests.analysis.util import analyze, rule_ids


def race(source: str):
    return analyze(source, races.run)


# -- RACE001 write/write -------------------------------------------------


def test_write_write_fires_on_two_scheduled_writers():
    findings = race(
        """
        class Pump:
            def start(self):
                self.kernel.schedule(5.0, self._open_valve)
                self.kernel.schedule(5.0, self._close_valve)

            def _open_valve(self):
                self.valve = "open"

            def _close_valve(self):
                self.valve = "closed"
        """
    )
    assert rule_ids(findings) == ["RACE001"]
    assert "valve" in findings[0].message


def test_write_write_quiet_when_only_one_writer_is_scheduled():
    assert race(
        """
        class Pump:
            def start(self):
                self.kernel.schedule(5.0, self._open_valve)

            def _open_valve(self):
                self.valve = "open"

            def close_now(self):
                self.valve = "closed"
        """
    ) == []


# -- RACE002 write/read --------------------------------------------------


def test_write_read_fires_between_scheduled_handlers():
    findings = race(
        """
        class Gauge:
            def start(self):
                self.kernel.schedule(1.0, self._sample)
                self.kernel.schedule(1.0, self._report)

            def _sample(self):
                self.reading = 42

            def _report(self):
                self.trace.emit(self.reading)
        """
    )
    assert rule_ids(findings) == ["RACE002"]
    assert "reading" in findings[0].message


def test_write_read_quiet_on_disjoint_state():
    assert race(
        """
        class Gauge:
            def start(self):
                self.kernel.schedule(1.0, self._sample)
                self.kernel.schedule(1.0, self._report)

            def _sample(self):
                self.reading = 42

            def _report(self):
                self.trace.emit(self.report_count)
        """
    ) == []


# -- RACE003 container mutation vs iteration -----------------------------


def test_container_iter_fires():
    findings = race(
        """
        class Registry:
            def start(self):
                self.kernel.schedule(1.0, self._add_watch)
                self.kernel.schedule(1.0, self._sweep)

            def _add_watch(self):
                self.watches.append("w")

            def _sweep(self):
                for watch in self.watches:
                    watch.poll()
        """
    )
    ids = rule_ids(findings)
    assert "RACE003" in ids
    assert "watches" in [f.message for f in findings if f.rule.rule_id == "RACE003"][0]


def test_container_iter_quiet_on_snapshot_iteration_style():
    # Reading a scalar and mutating a different container do not collide.
    assert race(
        """
        class Registry:
            def start(self):
                self.kernel.schedule(1.0, self._add_watch)
                self.kernel.schedule(1.0, self._sweep)

            def _add_watch(self):
                self.pending.append("w")

            def _sweep(self):
                for watch in self.active:
                    watch.poll()
        """
    ) == []


# -- RACE004 loop-variable capture ---------------------------------------


def test_loop_capture_fires_on_lambda_in_loop():
    findings = race(
        """
        def arm(kernel, nodes):
            for node in nodes:
                kernel.schedule(1.0, lambda: node.poke())
        """
    )
    assert rule_ids(findings) == ["RACE004"]
    assert "node" in findings[0].message


def test_loop_capture_quiet_when_bound_as_default_or_args():
    assert race(
        """
        def arm(kernel, nodes):
            for node in nodes:
                kernel.schedule(1.0, lambda n=node: n.poke())
            for node in nodes:
                kernel.schedule(1.0, node.poke)
        """
    ) == []


# -- scoping -------------------------------------------------------------


def test_handlers_must_be_scheduled_to_pair():
    # Plain methods that are never registered with the kernel never race.
    assert race(
        """
        class Quiet:
            def _a(self):
                self.x = 1

            def _b(self):
                self.x = 2
        """
    ) == []
