"""Planted PURE003: the task draws from the global RNG and offers no
seed parameter, so workers and reruns diverge."""

import random

from repro.perf.executor import parallel_map


def sample(value):
    return value + random.random()


def main(values):
    return parallel_map(sample, values)  # expect: PURE003
