"""Named, seeded random-number streams.

Each subsystem draws from its own stream (``rng.stream("network")``,
``rng.stream("telephone")``...) so that adding randomness to one subsystem
does not perturb the draw sequence of another.  Streams are derived from
the master seed and the stream name, so the whole simulation is
reproducible from a single integer.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A factory of independent ``random.Random`` instances.

    Parameters
    ----------
    seed:
        Master seed.  The per-stream seed is derived by hashing the master
        seed together with the stream name, which keeps streams independent
        and stable across runs and Python versions.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RngStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode("utf-8")).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
