"""Smoke and shape tests for the detector-sensitivity sweep."""

from __future__ import annotations

from repro.perf.sweep import render_rows, sweep_detectors


def small_sweep():
    return sweep_detectors(thresholds=[1, 2], timeouts=[500.0], seeds=1, schedules=2)


def test_rows_follow_grid_order_and_shape():
    rows = small_sweep()
    assert [(row["miss_threshold"], row["timeout_ms"]) for row in rows] == [(1, 500.0), (2, 500.0)]
    for row in rows:
        assert row["runs"] == 2
        assert row["detected"] + row["missed"] == row["faults"]
        assert row["false_positives"] >= 0
        if row["detected"]:
            assert row["mean_latency_ms"] <= row["max_latency_ms"]
        else:
            assert row["mean_latency_ms"] is None


def test_higher_threshold_never_detects_faster():
    rows = small_sweep()
    fast, slow = rows[0], rows[1]
    if fast["detected"] and slow["detected"]:
        assert slow["mean_latency_ms"] >= fast["mean_latency_ms"]


def test_render_rows_text_and_markdown():
    rows = small_sweep()
    text = render_rows(rows)
    assert text.splitlines()[0].startswith("miss_threshold")
    markdown = render_rows(rows, markdown=True)
    lines = markdown.splitlines()
    assert lines[0].startswith("| miss_threshold")
    assert set(lines[1]) <= {"|", "-"}
    assert len(lines) == 2 + len(rows)
