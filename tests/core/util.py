"""Helpers for core-layer tests: a ready-made pair environment."""

from __future__ import annotations

from typing import Optional

from repro.apps.synthetic import SyntheticStateApp
from repro.core.cluster import OfttPair
from repro.core.config import OfttConfig

from tests.conftest import World, make_world


class PairWorld(World):
    """World + an assembled OfttPair, the common core-test environment."""

    def __init__(self, seed: int = 0, config: Optional[OfttConfig] = None, app_factory=None, **pair_kwargs):
        super().__init__(seed=seed)
        for name in ("alpha", "beta"):
            self.add_machine(name)
        self.config = config or OfttConfig()
        factory = app_factory or (lambda: SyntheticStateApp(cold_kb=2, mode="selective", tick_period=50.0))
        self.pair = OfttPair(
            network=self.network,
            systems=dict(self.systems),
            config=self.config,
            app_factory=factory,
            unit="test",
            trace=self.trace,
            **pair_kwargs,
        )

    def start(self, settle: bool = True) -> None:
        self.pair.start()
        if settle:
            self.pair.settle()

    @property
    def primary(self) -> str:
        return self.pair.primary_node()

    @property
    def backup(self) -> str:
        return self.pair.backup_node()


def make_pair_world(seed: int = 0, config: Optional[OfttConfig] = None, **kwargs) -> PairWorld:
    """Construct (without starting) a two-node pair world."""
    return PairWorld(seed=seed, config=config, **kwargs)
