"""OFTT-protected applications.

* :class:`CallTrackApp` — the paper's §4 demonstration application: an
  OPC-client-style monitoring program tracking a simulated small-office
  telephone system (5 lines, 10 callers) and maintaining a busy-line
  histogram.
* :class:`CallingHistoryGenerator` — the Table 1 "Calling History
  generator" on the test PC: the authoritative record of what actually
  happened, used to validate recovered application state.
* :class:`ScadaMonitorApp` — a Figure 1 style SCADA monitoring/control
  OPC client with alarm counting, trend buffers and setpoint writes.
"""

from repro.apps.calltrack import CallTrackApp
from repro.apps.history import CallingHistoryGenerator
from repro.apps.opcserver import OpcServerApp
from repro.apps.scada import ScadaMonitorApp

__all__ = ["CallTrackApp", "CallingHistoryGenerator", "OpcServerApp", "ScadaMonitorApp"]
