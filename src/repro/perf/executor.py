"""Process-pool fan-out that is byte-identical to the serial run.

Every workload this executor carries (chaos schedules, replay subjects,
experiment scenarios, sweep grid points) is a *pure function of its
picklable arguments*: a task rebuilds its whole world (kernel, network,
RNG streams) from the seed it is handed, so where and when it executes
cannot change its result.  The executor adds the remaining guarantees:

* **Canonical merge order** — results come back in input order
  (:func:`parallel_map` is order-preserving), so reports rendered from
  the merged list serialize byte-identically to the serial run.
* **No ambient inheritance** — workers are started with the ``spawn``
  method: each is a fresh interpreter that re-imports the code and
  receives nothing from the parent beyond the pickled task arguments
  (no forked RNG state, no module-global mutations, no open handles).
* **Serial path untouched** — ``jobs=1`` never touches
  :mod:`multiprocessing` at all; it is a plain in-process loop, so the
  existing single-core gates behave exactly as before.

Task functions must be module-level (pickled by reference) and their
arguments and results must be picklable.  Exceptions raised in a worker
propagate out of :func:`parallel_map` in the parent.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from typing import Any, Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Start method used for worker processes.  ``spawn`` (not ``fork``)
#: is deliberate: a forked worker would inherit the parent's entire
#: address space — exactly the ambient state the determinism contract
#: forbids.  The cost is one interpreter start per worker, amortized
#: over the whole task list.
START_METHOD = "spawn"


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 means "one per CPU".

    This is the toolkit's one sanctioned ambient-host read: worker-count
    *defaults* may follow the hardware because they cannot change any
    result, only how fast it arrives (see PERF.md).
    """
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)  # oftt-lint: ok[ambient-io]
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int = 1,
    chunksize: int = 1,
) -> List[R]:
    """Apply *fn* to every item, fanning out over *jobs* worker processes.

    Results are returned in input order regardless of completion order,
    which is what makes the merged output independent of worker count.
    With ``jobs=1`` (the default) this is a plain serial loop.
    """
    tasks: List[T] = list(items)
    workers = min(resolve_jobs(jobs), len(tasks))
    if workers <= 1:
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers, mp_context=get_context(START_METHOD)) as pool:
        return list(pool.map(fn, tasks, chunksize=chunksize))


def add_jobs_argument(parser: Any, default: int = 1) -> None:
    """Attach the standard ``--jobs`` option to an argparse parser."""
    parser.add_argument(
        "--jobs", type=int, default=default, metavar="N",
        help="worker processes for independent runs; 0 = one per CPU "
             f"(default: {default}; output is byte-identical for any value)",
    )
