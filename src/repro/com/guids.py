"""GUIDs: globally unique identifiers for interfaces and classes.

Real COM GUIDs are 128-bit values; we derive ours deterministically from
names (SHA-256 truncated) so that tests and traces are stable and the
canonical string form looks like the familiar registry format.
"""

from __future__ import annotations

import hashlib


class GUID:
    """An immutable 128-bit identifier with COM-style string rendering."""

    __slots__ = ("_value",)

    def __init__(self, value: int) -> None:
        self._value = value & ((1 << 128) - 1)

    @classmethod
    def parse(cls, text: str) -> "GUID":
        """Parse ``{XXXXXXXX-XXXX-XXXX-XXXX-XXXXXXXXXXXX}`` (braces optional)."""
        cleaned = text.strip().strip("{}").replace("-", "")
        if len(cleaned) != 32:
            raise ValueError(f"malformed GUID: {text!r}")
        return cls(int(cleaned, 16))

    @property
    def value(self) -> int:
        """The raw 128-bit integer."""
        return self._value

    def __str__(self) -> str:
        hex32 = f"{self._value:032X}"
        return "{" + "-".join([hex32[0:8], hex32[8:12], hex32[12:16], hex32[16:20], hex32[20:32]]) + "}"

    def __repr__(self) -> str:
        return f"GUID({self})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GUID) and other._value == self._value

    def __hash__(self) -> int:
        return hash(self._value)


def guid_from_name(name: str) -> GUID:
    """Deterministic GUID for *name* (namespaced hash)."""
    digest = hashlib.sha256(f"repro.oftt:{name}".encode("utf-8")).digest()
    return GUID(int.from_bytes(digest[:16], "big"))
