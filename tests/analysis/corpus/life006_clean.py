"""Clean twin of life006: teardown clears the container the handler fills."""


class Collector:
    def __init__(self):
        self.log = []
        self.seen = 0

    def _on_message(self, message):
        self.seen += 1
        self.log.append(message)

    def stop(self):
        self.seen = 0
        self.log.clear()
