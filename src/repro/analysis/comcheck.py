"""Pass 2 — COM contract checker (COM rules).

Cross-checks every :class:`repro.com.object.ComObject` subclass against
the :class:`repro.com.interfaces.InterfaceDecl`s it lists in
``IMPLEMENTS``.  The declarations are recovered statically from
``declare_interface(...)`` / ``InterfaceDecl(...)`` assignments anywhere
in the analysed tree, and class tables are resolved project-wide, so a
server class in ``repro.opc`` is checked against interfaces declared in
another module.

* COM001 ``com-missing-method``    — declared method with no implementation
* COM002 ``com-undeclared-method`` — public CamelCase (COM-style) method
  not covered by any declared interface: invisible to ``find_interface``
  yet reachable, so local and DCOM callers disagree on the contract
* COM003 ``com-unknown-interface`` — ``IMPLEMENTS`` names something that
  is not a resolvable ``InterfaceDecl``
* COM004 ``com-bare-raise``        — a declared COM method raises an
  exception type with no ``hresult``; it crosses the marshalling boundary
  in :mod:`repro.com.dcom` as an anonymous ``E_FAIL``
* COM005 ``com-iunknown-override`` — subclass re-implements
  ``QueryInterface``/``AddRef``/``Release``, subverting refcount discipline
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, Severity, rule
from repro.analysis.walker import SourceFile, dotted_name

MISSING_METHOD = rule(
    "COM001", "com-missing-method", Severity.ERROR, "com",
    "Class declares an interface but lacks one of its methods.",
)
UNDECLARED_METHOD = rule(
    "COM002", "com-undeclared-method", Severity.ERROR, "com",
    "CamelCase COM-style method is not part of any declared interface.",
)
UNKNOWN_INTERFACE = rule(
    "COM003", "com-unknown-interface", Severity.ERROR, "com",
    "IMPLEMENTS entry does not resolve to an InterfaceDecl.",
)
BARE_RAISE = rule(
    "COM004", "com-bare-raise", Severity.ERROR, "com",
    "COM method raises an exception without an hresult; callers see a bare E_FAIL.",
)
IUNKNOWN_OVERRIDE = rule(
    "COM005", "com-iunknown-override", Severity.ERROR, "com",
    "Subclass overrides QueryInterface/AddRef/Release.",
)

_IUNKNOWN_METHODS = ("QueryInterface", "AddRef", "Release")

#: Exception roots known to carry an hresult attribute (see repro.errors).
_HRESULT_ROOTS = {"ComError"}

#: Builtin exceptions provably lacking an hresult.  Classes outside the
#: analysed tree are skipped (a partial scan cannot prove anything about
#: them); the full-tree dogfood run sees every class and stays sound.
_BUILTIN_EXCEPTIONS = {
    "Exception", "ValueError", "TypeError", "KeyError", "IndexError",
    "RuntimeError", "NotImplementedError", "AttributeError", "OSError",
    "IOError", "ArithmeticError", "ZeroDivisionError", "LookupError",
    "AssertionError", "StopIteration",
}


@dataclass
class _Interface:
    name: str  # variable name, e.g. IOPC_SERVER
    com_name: str  # declared name, e.g. IOPCServer
    methods: Tuple[str, ...]
    base: Optional[str]  # variable name of the base decl
    line: int

    def all_methods(self, table: Dict[str, "_Interface"]) -> Tuple[str, ...]:
        if self.base and self.base in table and self.base != self.name:
            return table[self.base].all_methods(table) + self.methods
        return self.methods


@dataclass
class _Class:
    name: str
    path: str
    line: int
    bases: Tuple[str, ...]
    implements: Optional[List[Tuple[str, int]]]  # (name, line); None = not assigned here
    implements_line: int
    implements_bad_shape: bool
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    properties: Set[str] = field(default_factory=set)


def _collect_interfaces(files: Sequence[SourceFile]) -> Dict[str, _Interface]:
    table: Dict[str, _Interface] = {}
    for source_file in files:
        if source_file.tree is None:
            continue
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name) or not isinstance(node.value, ast.Call):
                continue
            callee = dotted_name(node.value.func)
            if callee is None:
                continue
            short = callee.split(".")[-1]
            if short not in ("declare_interface", "InterfaceDecl"):
                continue
            args = node.value.args
            keywords = {kw.arg: kw.value for kw in node.value.keywords}
            com_name_node = keywords.get("name", args[0] if args else None)
            methods_node = keywords.get("methods", args[1] if len(args) > 1 else None)
            if short == "InterfaceDecl":
                methods_node = keywords.get("methods", args[2] if len(args) > 2 else methods_node)
            base_node = keywords.get("base", args[2] if short == "declare_interface" and len(args) > 2 else None)
            com_name = com_name_node.value if isinstance(com_name_node, ast.Constant) else target.id
            methods: Tuple[str, ...] = ()
            if isinstance(methods_node, (ast.Tuple, ast.List)):
                methods = tuple(
                    element.value
                    for element in methods_node.elts
                    if isinstance(element, ast.Constant) and isinstance(element.value, str)
                )
            base = dotted_name(base_node).split(".")[-1] if base_node is not None and dotted_name(base_node) else None
            table[target.id] = _Interface(target.id, com_name, methods, base, node.lineno)
    return table


def _collect_classes(files: Sequence[SourceFile]) -> Dict[str, _Class]:
    classes: Dict[str, _Class] = {}
    for source_file in files:
        if source_file.tree is None:
            continue
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                name.split(".")[-1] for name in (dotted_name(base) for base in node.bases) if name
            )
            info = _Class(
                name=node.name,
                path=source_file.path,
                line=node.lineno,
                bases=bases,
                implements=None,
                implements_line=node.lineno,
                implements_bad_shape=False,
            )
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[stmt.name] = stmt  # type: ignore[assignment]
                    for decorator in stmt.decorator_list:
                        if dotted_name(decorator) == "property":
                            info.properties.add(stmt.name)
                elif isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "IMPLEMENTS" for t in stmt.targets
                ):
                    info.implements_line = stmt.lineno
                    if isinstance(stmt.value, (ast.Tuple, ast.List)):
                        entries: List[Tuple[str, int]] = []
                        for element in stmt.value.elts:
                            name = dotted_name(element)
                            entries.append((name.split(".")[-1] if name else "<expr>", element.lineno))
                        info.implements = entries
                    else:
                        info.implements_bad_shape = True
                        info.implements = []
            # Last definition of a class name wins; names are unique in practice.
            classes[node.name] = info
    return classes


def _com_subclasses(classes: Dict[str, _Class]) -> Set[str]:
    """Names transitively deriving from ComObject (fixed point over bases)."""
    com: Set[str] = {"ComObject"}
    changed = True
    while changed:
        changed = False
        for info in classes.values():
            if info.name not in com and any(base in com for base in info.bases):
                com.add(info.name)
                changed = True
    com.discard("ComObject")
    return com


def _hresult_exceptions(classes: Dict[str, _Class]) -> Set[str]:
    """Exception class names that carry an hresult (statically known)."""
    carriers = set(_HRESULT_ROOTS)
    changed = True
    while changed:
        changed = False
        for info in classes.values():
            if info.name in carriers:
                continue
            if any(base in carriers for base in info.bases):
                carriers.add(info.name)
                changed = True
                continue
            init = info.methods.get("__init__")
            if init is not None:
                for node in ast.walk(init):
                    if isinstance(node, ast.Attribute) and node.attr == "hresult" and isinstance(node.ctx, ast.Store):
                        carriers.add(info.name)
                        changed = True
                        break
    return carriers


def _inherited_chain(info: _Class, classes: Dict[str, _Class]) -> List[_Class]:
    """*info* plus statically known ancestor classes (depth-first)."""
    chain: List[_Class] = []
    stack = [info.name]
    seen: Set[str] = set()
    while stack:
        name = stack.pop(0)
        if name in seen or name not in classes:
            continue
        seen.add(name)
        chain.append(classes[name])
        stack.extend(classes[name].bases)
    return chain


def _is_camel_case(name: str) -> bool:
    return bool(name) and name[0].isupper() and not name.isupper()


def run(files: Sequence[SourceFile]) -> List[Finding]:
    """Pass entry point."""
    findings: List[Finding] = []
    interfaces = _collect_interfaces(files)
    classes = _collect_classes(files)
    com_classes = _com_subclasses(classes)
    carriers = _hresult_exceptions(classes)

    for class_name in sorted(com_classes):
        info = classes[class_name]
        chain = _inherited_chain(info, classes)
        # IMPLEMENTS may live on an ancestor; nearest assignment wins.
        implements: List[Tuple[str, int]] = []
        bad_shape = False
        for member in chain:
            if member.implements is not None:
                implements = member.implements
                bad_shape = member.implements_bad_shape
                break
        if bad_shape and info.implements is not None:
            findings.append(
                Finding(UNKNOWN_INTERFACE, info.path, info.implements_line, 0,
                        f"{class_name}.IMPLEMENTS must be a tuple/list of InterfaceDecl names")
            )

        declared_methods: Set[str] = set()
        for decl_name, decl_line in implements:
            decl = interfaces.get(decl_name)
            if decl is None:
                if info.implements is not None:  # report where it is written
                    findings.append(
                        Finding(UNKNOWN_INTERFACE, info.path, decl_line, 0,
                                f"{class_name}.IMPLEMENTS references {decl_name!r}, not a known InterfaceDecl")
                    )
                continue
            declared_methods.update(decl.all_methods(interfaces))

        defined: Dict[str, Tuple[str, int]] = {}
        for member in reversed(chain):  # subclasses override ancestors
            for method_name, func in member.methods.items():
                defined[method_name] = (member.path, func.lineno)
        properties = set().union(*(member.properties for member in chain)) if chain else set()

        # COM001 — every declared method must exist somewhere on the chain.
        for method_name in sorted(declared_methods - set(_IUNKNOWN_METHODS)):
            if method_name not in defined:
                findings.append(
                    Finding(MISSING_METHOD, info.path, info.line, 0,
                            f"{class_name} declares {method_name} but does not implement it")
                )

        # COM002 — CamelCase publics must be declared (IUnknown comes free).
        # With a malformed IMPLEMENTS the declared set is unknowable; the
        # COM003 finding above is the actionable one, so skip the cascade.
        for method_name, func in sorted(info.methods.items() if not bad_shape else ()):
            if not _is_camel_case(method_name) or method_name in properties:
                continue
            if method_name in _IUNKNOWN_METHODS or method_name in declared_methods:
                continue
            findings.append(
                Finding(UNDECLARED_METHOD, info.path, func.lineno, func.col_offset,
                        f"{class_name}.{method_name} looks like a COM method but no declared interface lists it")
            )

        # COM004 — declared methods must raise hresult-carrying exceptions.
        for method_name, func in sorted(info.methods.items()):
            if method_name not in declared_methods:
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exc = node.exc
                exc_name = dotted_name(exc.func if isinstance(exc, ast.Call) else exc)
                if exc_name is None:
                    continue  # re-raise of a bound variable: conservative skip
                short = exc_name.split(".")[-1]
                if short in carriers:
                    continue
                if short not in classes and short not in _BUILTIN_EXCEPTIONS:
                    continue  # class not in the analysed tree: cannot prove
                findings.append(
                    Finding(BARE_RAISE, info.path, node.lineno, node.col_offset,
                            f"{class_name}.{method_name} raises {short} which has no hresult; "
                            f"it will marshal as a bare E_FAIL")
                )

        # COM005 — IUnknown is the base class's business.
        for method_name in _IUNKNOWN_METHODS:
            func = info.methods.get(method_name)
            if func is not None:
                findings.append(
                    Finding(IUNKNOWN_OVERRIDE, info.path, func.lineno, func.col_offset,
                            f"{class_name} overrides {method_name}; refcount discipline belongs to ComObject")
                )
    return findings
