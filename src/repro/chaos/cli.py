"""Command-line driver: ``python -m repro.chaos`` / ``oftt-chaos``.

Exit-code contract (mirrors ``oftt-lint`` / ``oftt-replay``; relied on
by ``make chaos`` inside ``make verify``):

* ``0`` — every schedule ran with zero invariant violations
* ``1`` — at least one violation (report includes the minimized
  reproducer for the first failing schedule)
* ``2`` — usage error

Examples::

    python -m repro.chaos --smoke                 # the make-verify gate
    oftt-chaos --seeds 10 --schedules 8           # a bigger campaign
    oftt-chaos --self-test                        # prove the monitors fire
    oftt-chaos --smoke --json --out report.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

# oftt-lint: file-ok[ambient-io] -- the chaos driver is a host-side CLI.
from repro.chaos.minimize import MinimizationResult, minimize_schedule
from repro.chaos.report import render_json, render_text
from repro.chaos.runner import SABOTAGES, RunResult, run_schedule, run_schedule_task
from repro.chaos.schedule import (
    DRIFT_PROFILES,
    ChaosSchedule,
    FaultEntry,
    ScheduleGenerator,
    drift_schedule,
)
from repro.core.config import (
    REPLICATION_STRATEGIES,
    OfttConfig,
    RecoveryRule,
    replace_config,
)
from repro.harness.scenario import ChaosScenario
from repro.perf.executor import add_jobs_argument, parallel_map
from repro.simnet.random import RngStreams

#: --smoke preset: seeds x schedules (>= 20 runs, the ISSUE gate).
SMOKE_SEEDS = 5
SMOKE_SCHEDULES = 4

#: The self-test schedule: partition then heal.  With dual-primary
#: resolution sabotaged this is the minimal split-brain recipe.
SELF_TEST_ENTRIES = [
    FaultEntry(2_000.0, "partition", {"side_a": ["alpha"], "side_b": ["beta"]}),
    FaultEntry(6_000.0, "heal-network", {}),
    # Decoy noise the minimizer must discard to reach <= 3 faults.
    FaultEntry(3_000.0, "message-duplication", {"link": "lan0", "probability": 0.1}),
    FaultEntry(7_000.0, "message-duplication", {"link": "lan0", "probability": 0.0}),
    FaultEntry(8_000.0, "app-crash", {"node": "beta", "process": "synthetic"}),
]
SELF_TEST_HORIZON = 20_000.0
SELF_TEST_SABOTAGE = "disable-dual-primary-resolution"

#: The governor self-test schedule: one sticky crash that keeps killing
#: the app for two seconds.  Under the adaptive policy with a
#: deliberately local-heavy rule the thrash detector escalates after two
#: rapid failures; with the governor sabotaged (``disable-cooldown``)
#: restarts burn at full speed and the restart-thrash monitor must fire.
SELF_TEST_THRASH_ENTRIES = [
    FaultEntry(2_000.0, "sticky-app-crash",
               {"node": "alpha", "process": "synthetic", "duration": 2_000.0}),
]
SELF_TEST_THRASH_HORIZON = 12_000.0
SELF_TEST_THRASH_SABOTAGE = "disable-cooldown"


def _thrash_config() -> OfttConfig:
    """Adaptive policy + a local-heavy rule worth governing."""
    return replace_config(
        OfttConfig(),
        adaptive_policy=True,
        default_rule=RecoveryRule(max_local_restarts=50, restart_delay=25.0),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oftt-chaos",
        description=(
            "Randomized fault campaigns: seeded schedules against the OFTT pair "
            "with live invariant monitors and failing-schedule minimization."
        ),
    )
    parser.add_argument("--seeds", type=int, default=SMOKE_SEEDS,
                        help=f"number of seeds to campaign over (default: {SMOKE_SEEDS})")
    parser.add_argument("--schedules", type=int, default=SMOKE_SCHEDULES,
                        help=f"schedules generated per seed (default: {SMOKE_SCHEDULES})")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed value (default: 0)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the verification-gate preset "
                             f"({SMOKE_SEEDS} seeds x {SMOKE_SCHEDULES} schedules)")
    parser.add_argument("--self-test", action="store_true",
                        help="sabotage dual-primary resolution (split-brain monitor) and the "
                             "adaptive restart governor (restart-thrash monitor) and verify "
                             "both are caught (expected exit code: 1)")
    parser.add_argument("--drift", default="", choices=("",) + tuple(sorted(DRIFT_PROFILES)),
                        metavar="PROFILE",
                        help="replace generated schedules with the named deterministic "
                             f"drifting fault-mix ({', '.join(sorted(DRIFT_PROFILES))}); "
                             "one run per seed")
    parser.add_argument("--policy", action="store_true",
                        help="enable the adaptive recovery policy for every run "
                             "(self-healing governor, proactive failover, strategy switching)")
    parser.add_argument("--max-minimize-runs", type=int, default=64,
                        help="ddmin re-run budget for minimization (default: 64)")
    parser.add_argument("--sabotage", default="", metavar="NAME",
                        help="run the whole campaign with a named sabotage hook installed "
                             "(monitor self-checks; see --self-test)")
    parser.add_argument("--strategy", default="", choices=("",) + REPLICATION_STRATEGIES,
                        metavar="NAME",
                        help="run the campaign under a replication strategy "
                             f"({', '.join(REPLICATION_STRATEGIES)}; default: the config default)")
    add_jobs_argument(parser)
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--json", action="store_const", const="json", dest="format",
                        help="shorthand for --format json")
    parser.add_argument("--out", default="",
                        help="also write the report to this file")
    return parser


def campaign_tasks(
    seeds: int,
    schedules: int,
    seed_base: int,
    sabotage_name: str = "",
) -> List[Tuple[int, ChaosSchedule, str]]:
    """Generate the ``seeds x schedules`` task list, in canonical order.

    Schedule generation stays serial (it is cheap and each seed's
    generator RNG advances per schedule); only the runs fan out.
    """
    tasks: List[Tuple[int, ChaosSchedule, str]] = []
    for seed in range(seed_base, seed_base + seeds):
        generator = ScheduleGenerator(
            nodes=list(ChaosScenario.PAIR_NODES),
            links=["lan0"],
            process=ChaosScenario.APP_NAME,
            rng=RngStreams(seed).stream("chaos.schedule"),
        )
        for _ in range(schedules):
            tasks.append((seed, generator.generate(), sabotage_name))
    return tasks


def campaign(
    seeds: int,
    schedules: int,
    seed_base: int,
    sabotage_name: str = "",
    jobs: int = 1,
    config: Optional[OfttConfig] = None,
) -> List[RunResult]:
    """Generate and execute ``seeds x schedules`` runs, in order.

    With ``jobs > 1`` the independent runs execute on a process pool;
    results are merged in task order, so the campaign (and any report
    rendered from it) is byte-identical to the serial run.  A *config*
    (e.g. a non-default replication strategy) extends each task to the
    four-element form; default campaigns keep the three-element tasks.
    """
    tasks: List[Tuple] = campaign_tasks(seeds, schedules, seed_base, sabotage_name=sabotage_name)
    if config is not None:
        tasks = [(seed, schedule, name, config) for seed, schedule, name in tasks]
    return parallel_map(run_schedule_task, tasks, jobs=jobs)


def drift_campaign(
    profile: str,
    seeds: int,
    seed_base: int,
    sabotage_name: str = "",
    jobs: int = 1,
    config: Optional[OfttConfig] = None,
) -> List[RunResult]:
    """Run the deterministic drifting fault-mix under *seeds* testbeds.

    The schedule is a pure function of *profile* (no RNG), so each seed
    runs the identical fault story — only the scenario's own seeded
    randomness (network jitter, workload) varies.  One run per seed.
    """
    schedule = drift_schedule(profile, list(ChaosScenario.PAIR_NODES), ChaosScenario.APP_NAME)
    tasks: List[Tuple] = [
        (seed, schedule, sabotage_name) for seed in range(seed_base, seed_base + seeds)
    ]
    if config is not None:
        tasks = [(seed, sched, name, config) for seed, sched, name in tasks]
    return parallel_map(run_schedule_task, tasks, jobs=jobs)


def self_test() -> Tuple[List[RunResult], Optional[MinimizationResult], List[str]]:
    """The monitor self-check: broken recovery must be caught and shrunk.

    Two sabotage cases, each expected to trip its dedicated monitor:

    * ``disable-dual-primary-resolution`` + partition/heal — split-brain;
    * ``disable-cooldown`` + adaptive policy + sticky crash —
      restart-thrash.

    Returns the run results, the minimization of the first failing
    schedule, and a list of *problems*: cases whose expected monitor did
    **not** fire (the self-test itself is broken when non-empty).
    """
    cases: List[Tuple[str, ChaosSchedule, str, Optional[OfttConfig], str]] = [
        ("split-brain",
         ChaosSchedule(entries=list(SELF_TEST_ENTRIES), horizon=SELF_TEST_HORIZON),
         SELF_TEST_SABOTAGE, None, "split-brain"),
        ("restart-thrash",
         ChaosSchedule(entries=list(SELF_TEST_THRASH_ENTRIES), horizon=SELF_TEST_THRASH_HORIZON),
         SELF_TEST_THRASH_SABOTAGE, _thrash_config(), "restart-thrash"),
    ]
    results: List[RunResult] = []
    problems: List[str] = []
    minimization: Optional[MinimizationResult] = None
    for label, schedule, sabotage_name, config, expected in cases:
        result = run_schedule(0, schedule, sabotage_name=sabotage_name, config=config)
        results.append(result)
        if expected not in result.violation_names():
            problems.append(
                f"{label}: sabotage {sabotage_name!r} did not trip the "
                f"{expected!r} monitor (violations: {result.violation_names()})"
            )
        elif minimization is None:
            minimization = minimize_schedule(
                0, schedule, expected, sabotage_name=sabotage_name, config=config
            )
    return results, minimization, problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.seeds < 1 or options.schedules < 1:
        print("oftt-chaos: --seeds and --schedules must be positive", file=sys.stderr)
        return 2

    if options.sabotage and options.sabotage not in SABOTAGES:
        print(f"oftt-chaos: unknown sabotage {options.sabotage!r}; "
              f"available: {sorted(SABOTAGES)}", file=sys.stderr)
        return 2

    config: Optional[OfttConfig] = None
    overrides = {}
    if options.strategy:
        overrides["replication_strategy"] = options.strategy
    if options.policy:
        overrides["adaptive_policy"] = True
    if overrides:
        config = replace_config(OfttConfig(), **overrides)

    minimization: Optional[MinimizationResult] = None
    if options.self_test:
        results, minimization, problems = self_test()
        mode = "self-test"
        if problems:
            for problem in problems:
                print(f"oftt-chaos: self-test problem: {problem}", file=sys.stderr)
            # Force exit 0 ("nothing caught") so the make wrapper, which
            # expects 1, flags the broken self-test loudly.
            return 0
    elif options.drift:
        results = drift_campaign(options.drift, options.seeds, options.seed_base,
                                 sabotage_name=options.sabotage, jobs=options.jobs,
                                 config=config)
        mode = f"drift:{options.drift}"
        first_failed = next((r for r in results if not r.passed), None)
        if first_failed is not None:
            minimization = minimize_schedule(
                first_failed.seed,
                first_failed.schedule,
                first_failed.violation_names()[0],
                sabotage_name=first_failed.sabotage,
                max_runs=options.max_minimize_runs,
                config=config,
            )
    else:
        seeds = SMOKE_SEEDS if options.smoke else options.seeds
        schedules = SMOKE_SCHEDULES if options.smoke else options.schedules
        results = campaign(seeds, schedules, options.seed_base,
                           sabotage_name=options.sabotage, jobs=options.jobs,
                           config=config)
        mode = "smoke" if options.smoke else "campaign"
        first_failed = next((r for r in results if not r.passed), None)
        if first_failed is not None:
            # ddmin stays serial for any --jobs: the algorithm's next
            # subset depends on the previous verdict, and its runs_used
            # accounting is part of the byte-stable report.
            minimization = minimize_schedule(
                first_failed.seed,
                first_failed.schedule,
                first_failed.violation_names()[0],
                sabotage_name=first_failed.sabotage,
                max_runs=options.max_minimize_runs,
                config=config,
            )

    if options.format == "json":
        rendered = render_json(results, minimization, mode=mode)
        sys.stdout.write(rendered)
    else:
        rendered = render_text(results, minimization) + "\n"
        sys.stdout.write(rendered)
    if options.out:
        with open(options.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)

    return 0 if all(result.passed for result in results) else 1


if __name__ == "__main__":
    sys.exit(main())
