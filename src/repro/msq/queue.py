"""Queues and messages."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional


@dataclass
class QueueMessage:
    """A message stored in (or travelling towards) a queue."""

    message_id: str
    sender: str
    body: Any
    persistent: bool = True
    enqueued_at: float = 0.0
    sent_at: float = 0.0
    delivery_count: int = 0
    label: str = ""

    def __repr__(self) -> str:
        kind = "persistent" if self.persistent else "express"
        return f"QueueMessage({self.message_id}, {kind}, from={self.sender}, label={self.label})"


class MsmqQueue:
    """A FIFO queue on one node.

    Consumers either poll with :meth:`receive` / :meth:`peek` or subscribe
    a push callback.  A journal keeps copies of consumed messages when
    enabled (useful for the diverter's redelivery window).
    """

    def __init__(self, name: str, owner_node: str, journal: bool = False) -> None:
        self.name = name
        self.owner_node = owner_node
        self.journal_enabled = journal
        self.messages: List[QueueMessage] = []
        self.journal: List[QueueMessage] = []
        self.seen_ids: set = set()
        self.total_enqueued = 0
        self._subscriber: Optional[Callable[[QueueMessage], None]] = None

    def enqueue(self, message: QueueMessage, now: float) -> bool:
        """Append a message; duplicates (same id) are dropped.

        Returns whether the message was new.
        """
        if message.message_id in self.seen_ids:
            return False
        self.seen_ids.add(message.message_id)
        message.enqueued_at = now
        self.messages.append(message)
        self.total_enqueued += 1
        if self._subscriber is not None:
            self._drain()
        return True

    def subscribe(self, callback: Callable[[QueueMessage], None]) -> None:
        """Push mode: deliver queued and future messages to *callback*."""
        self._subscriber = callback
        self._drain()

    def unsubscribe(self) -> None:
        """Stop push delivery; messages accumulate again."""
        self._subscriber = None

    def _drain(self) -> None:
        while self.messages and self._subscriber is not None:
            message = self.messages.pop(0)
            if self.journal_enabled:
                self.journal.append(message)
            self._subscriber(message)

    def receive(self) -> Optional[QueueMessage]:
        """Pop the head message (None when empty)."""
        if not self.messages:
            return None
        message = self.messages.pop(0)
        if self.journal_enabled:
            self.journal.append(message)
        return message

    def peek(self) -> Optional[QueueMessage]:
        """Head message without consuming it."""
        return self.messages[0] if self.messages else None

    def purge_express(self) -> int:
        """Drop non-persistent messages (crash recovery); returns count."""
        before = len(self.messages)
        self.messages = [m for m in self.messages if m.persistent]
        return before - len(self.messages)

    def __len__(self) -> int:
        return len(self.messages)

    def __repr__(self) -> str:
        return f"MsmqQueue({self.owner_node}/{self.name}, depth={len(self.messages)})"
