"""Corpus gate for the effects pass (wired into ``make verify`` via test).

Every ``*_planted.py`` file under ``tests/analysis/corpus/`` must
produce exactly one effects finding — the rule id and line named by its
``# expect: RULEID`` marker — and every ``*_clean.py`` twin must produce
none.  A change to the call graph or summary propagation that weakens
(or over-triggers) any rule fails here with the offending file named.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.analysis import effects
from repro.analysis.walker import load_sources, run_passes

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")
MARKER = re.compile(r"#\s*expect:\s*([A-Z]+\d+)")

# ``hot00X_*`` files belong to the hotpath pass (gated by
# tests/analysis/test_hotpath_corpus.py with their own root convention)
# and ``life00X_*`` files to the lifecycle pass (gated by
# tests/analysis/test_lifecycle_corpus.py under the default manifest).
PLANTED = sorted(
    f
    for f in os.listdir(CORPUS)
    if f.endswith("_planted.py") and not f.startswith(("hot", "life"))
)
CLEAN = sorted(
    f
    for f in os.listdir(CORPUS)
    if f.endswith("_clean.py") and not f.startswith(("hot", "life"))
)


def effects_findings(name):
    files, load_findings = load_sources([os.path.join(CORPUS, name)])
    assert load_findings == [], f"{name} failed to load cleanly"
    return run_passes(files, [effects.run])


def expected_marker(name):
    """(rule_id, line) from the file's single ``# expect:`` marker."""
    with open(os.path.join(CORPUS, name), "r", encoding="utf-8") as handle:
        hits = [
            (match.group(1), lineno)
            for lineno, line in enumerate(handle, start=1)
            for match in [MARKER.search(line)]
            if match
        ]
    assert len(hits) == 1, f"{name} must carry exactly one expect marker"
    return hits[0]


def test_corpus_is_complete():
    planted_rules = {expected_marker(name)[0] for name in PLANTED}
    assert planted_rules == {
        "RACE101", "RACE102", "RACE103",
        "PURE001", "PURE002", "PURE003", "PURE004",
    }
    # every planted file has a clean twin
    assert [n.replace("_clean", "_planted") for n in CLEAN] == PLANTED


@pytest.mark.parametrize("name", PLANTED)
def test_planted_defect_is_flagged_exactly(name):
    rule_id, line = expected_marker(name)
    found = [(f.rule.rule_id, f.line) for f in effects_findings(name)]
    assert found == [(rule_id, line)]


@pytest.mark.parametrize("name", CLEAN)
def test_clean_twin_stays_clean(name):
    assert effects_findings(name) == []
