"""Tests for the on-disk lint cache (repro.analysis.cache).

The load-bearing property: a cache hit must be indistinguishable from a
fresh run, and *any* change — file content, rule set, configuration —
must invalidate exactly the entries that could differ.  A stale cache
that masks a new finding would make ``make verify`` lie.
"""

from __future__ import annotations

import json

from repro.analysis import cache, cli

CLEAN_SOURCE = "def f():\n    return 1\n"
DIRTY_SOURCE = "import time\n\n\ndef f():\n    return time.time()\n"


def _run(tmp_path, target, extra=None):
    """Lint *target* with a cache in tmp_path; returns (exit, findings)."""
    argv = [
        str(target),
        "--format", "json",
        "--cache-path", str(tmp_path / "cache.json"),
    ] + (extra or [])
    import io
    from contextlib import redirect_stdout

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli.main(argv)
    return code, json.loads(buffer.getvalue())["findings"]


def test_warm_run_matches_cold_run(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(DIRTY_SOURCE, encoding="utf-8")
    cold_code, cold = _run(tmp_path, target)
    warm_code, warm = _run(tmp_path, target)
    assert (cold_code, cold) == (warm_code, warm)
    assert any(f["rule"] == "DET001" for f in cold)


def test_cache_matches_no_cache(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(DIRTY_SOURCE, encoding="utf-8")
    _, cached = _run(tmp_path, target)
    _, uncached = _run(tmp_path, target, extra=["--no-cache"])
    assert cached == uncached


def test_stale_cache_never_masks_a_new_finding(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(CLEAN_SOURCE, encoding="utf-8")
    code, findings = _run(tmp_path, target)
    assert (code, findings) == (0, [])
    # The file gains a violation; the warm cache must re-analyse it.
    target.write_text(DIRTY_SOURCE, encoding="utf-8")
    code, findings = _run(tmp_path, target)
    assert code == 1
    assert any(f["rule"] == "DET001" for f in findings)


def test_removing_a_suppression_resurfaces_the_finding(tmp_path):
    target = tmp_path / "mod.py"
    suppressed = DIRTY_SOURCE.replace(
        "time.time()", "time.time()  # oftt-lint: ok[wall-clock]"
    )
    target.write_text(suppressed, encoding="utf-8")
    code, findings = _run(tmp_path, target)
    assert (code, findings) == (0, [])
    target.write_text(DIRTY_SOURCE, encoding="utf-8")
    code, findings = _run(tmp_path, target)
    assert code == 1 and findings


def test_unchanged_sibling_results_are_reused_per_file(tmp_path):
    clean = tmp_path / "clean_mod.py"
    clean.write_text(CLEAN_SOURCE, encoding="utf-8")
    dirty = tmp_path / "dirty_mod.py"
    dirty.write_text(DIRTY_SOURCE, encoding="utf-8")
    _run(tmp_path, tmp_path)
    # Touch only the clean file; the dirty file's det entry stays valid
    # and its finding must still be reported.
    clean.write_text(CLEAN_SOURCE + "\n# touched\n", encoding="utf-8")
    code, findings = _run(tmp_path, tmp_path)
    assert code == 1
    assert any(f["rule"] == "DET001" and f["path"].endswith("dirty_mod.py") for f in findings)


def test_ruleset_version_mismatch_invalidates(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(DIRTY_SOURCE, encoding="utf-8")
    _run(tmp_path, target)
    cache_file = tmp_path / "cache.json"
    data = json.loads(cache_file.read_text(encoding="utf-8"))
    data["ruleset"] = "0000000000000000"
    # Poison the stored findings too: if the stale payload were trusted,
    # the finding below would vanish.
    data["project"]["findings"] = []
    data["files"] = {}
    cache_file.write_text(json.dumps(data), encoding="utf-8")
    code, findings = _run(tmp_path, target)
    assert code == 1
    assert any(f["rule"] == "DET001" for f in findings)


def test_corrupt_cache_file_is_ignored(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(DIRTY_SOURCE, encoding="utf-8")
    (tmp_path / "cache.json").write_text("{not json", encoding="utf-8")
    code, findings = _run(tmp_path, target)
    assert code == 1
    assert any(f["rule"] == "DET001" for f in findings)


def test_config_change_invalidates_project_reuse(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(DIRTY_SOURCE, encoding="utf-8")
    _, det_only = _run(tmp_path, target, extra=["--passes", "det"])
    _, all_passes = _run(tmp_path, target)
    assert det_only == all_passes  # same single DET001 either way
    # and both runs share one cache file without confusion
    data = json.loads((tmp_path / "cache.json").read_text(encoding="utf-8"))
    assert data["schema"] == cache.SCHEMA


def test_lifecycle_manifest_edit_invalidates_warm_cache(tmp_path):
    """Editing the lifecycle manifest must re-run the pass, not reuse."""
    target = tmp_path / "mod.py"
    target.write_text(
        "class Looper:\n"
        "    def __init__(self, kernel):\n"
        "        self.kernel = kernel\n"
        "        self._timer = None\n"
        "\n"
        "    def begin(self):\n"
        "        self._timer = self.kernel.arm(10.0, self._tick)\n"
        "\n"
        "    def stop(self):\n"
        "        pass\n"
        "\n"
        "    def _tick(self):\n"
        "        pass\n",
        encoding="utf-8",
    )
    manifest = tmp_path / "life.manifest"
    manifest.write_text("pair timer Kernel.disarm -> cancel\n", encoding="utf-8")
    extra = ["--passes", "life", "--life-manifest", str(manifest), "--strict"]
    code, findings = _run(tmp_path, target, extra=extra)
    assert (code, findings) == (0, [])  # `arm` is not an acquire yet
    # The manifest gains the pair; the warm cache must not mask it.
    manifest.write_text("pair timer Kernel.arm -> cancel\n", encoding="utf-8")
    code, findings = _run(tmp_path, target, extra=extra)
    assert code == 1
    assert any(f["rule"] == "LIFE001" for f in findings)


def test_ruleset_version_is_stable_within_a_process():
    assert cache.ruleset_version() == cache.ruleset_version()
