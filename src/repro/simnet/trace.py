"""Structured trace log for simulation runs.

Every layer appends :class:`TraceRecord` entries (timestamped, categorised,
keyed by component).  Tests and benchmarks query the trace to assert on
*sequences* of behaviour (e.g. "backup promoted exactly once, after the
heartbeat timeout elapsed") rather than only on final state.

Hot-path notes (this module is on the ``trace-emits`` bench path and a hot
root in ``repro/analysis/hotpath.manifest``): :class:`TraceRecord` is a
hand-written ``__slots__`` class because ~200k instances are allocated
per full bench run; per-record fingerprints build their canonical JSON payload
directly (skipping the intermediate wire dict) via module-bound
serializer entry points; and :meth:`TraceLog.fingerprint` folds only
records emitted since the previous call into a running digest, so the
cold path is O(new records) instead of O(all records).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Float quantization used by trace canonicalization (decimal places).
#: Sim times are millisecond-scale floats; 9 places is far below any
#: scheduling granularity while absorbing representation noise.
QUANTIZE_DECIMALS = 9

# Bound once at import: the fingerprint path runs per record and should
# not pay module-attribute lookups per call (HOT004/HOT006 dogfood).
_dumps = json.dumps
_sha256 = hashlib.sha256
_escape_json_string = json.encoder.encode_basestring_ascii
_COMPACT = (",", ":")
_INF = float("inf")
_NEG_INF = float("-inf")

#: Detail values that need no canonicalization beyond float quantization.
#: ``bool`` is listed explicitly because ``type()`` checks do not see
#: subclassing (unlike the isinstance chain in :func:`canonical_value`).
_PLAIN_SCALARS = (str, int, float, bool, type(None))


def quantize(value: float) -> float:
    """Quantize a float to the canonical trace precision."""
    rounded = round(value, QUANTIZE_DECIMALS)
    # Normalize -0.0 so signed zeros never diverge.
    return rounded + 0.0


def canonical_value(value: Any) -> Any:
    """Recursively canonicalize a detail value for comparison.

    Floats are quantized, dicts get sorted keys, sets become sorted
    lists, tuples become lists — so two semantically equal details
    serialize to identical JSON regardless of construction order.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return quantize(value)
    if isinstance(value, dict):
        return {str(k): canonical_value(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (set, frozenset)):
        # Reviewed-benign HOT004: set-valued details are rare (never on
        # the emit fast path) and the dump keys the sort, so there is no
        # stable carrier to memoize on.
        return sorted(json.dumps(canonical_value(v), sort_keys=True, default=str) for v in value)  # oftt-lint: ok[hot-unmemoized-heavy]
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    return repr(value)


def canonical_detail(detail: Dict[str, Any]) -> Dict[str, Any]:
    """Canonical (sorted-key, quantized) form of a record's detail dict.

    Almost every detail emitted by the sim layers is a flat dict of
    scalars, so the common case skips the recursive
    :func:`canonical_value` walk entirely: exact-type scalars are kept
    as-is (floats quantized) under natural key sort.  Any non-scalar
    value or non-str key falls back to the general path, which produces
    the identical result for flat scalar dicts — the fast path is an
    optimization, never a semantic fork.
    """
    for key, value in detail.items():
        if type(key) is not str or type(value) not in _PLAIN_SCALARS:
            canonical = canonical_value(detail)
            assert isinstance(canonical, dict)
            return canonical
    out: Dict[str, Any] = {}
    for key in sorted(detail):
        value = detail[key]
        out[key] = quantize(value) if type(value) is float else value
    return out


def _json_number(value: float) -> str:
    """Render a quantized float exactly as ``json.dumps`` would.

    For finite floats ``json`` emits ``repr(value)``; the non-finite
    spellings (``NaN``/``Infinity``) are delegated to the real encoder.
    """
    if value != value or value == _INF or value == _NEG_INF:
        return _dumps(value)
    return repr(value)


class TraceRecord:
    """A single trace entry.

    Records are immutable once emitted (treat every field as read-only);
    ``as_wire()`` and ``fingerprint()`` are therefore memoized on the
    instance (replay diffing and log fingerprinting call them once per
    comparison, which used to recompute JSON + sha256 every time).
    Treat the returned wire dict as read-only — it is shared between
    callers.

    A hand-written ``__slots__`` class rather than a dataclass: the
    generated frozen-dataclass ``__init__`` routes every field through
    ``object.__setattr__`` and was a third of ``emit()``'s cost at
    ~200k records per bench run (HOT005 dogfood).
    """

    __slots__ = ("time", "category", "component", "event", "detail",
                 "_wire_cache", "_fingerprint_cache")

    def __init__(
        self,
        time: float,
        category: str,
        component: str,
        event: str,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.time = time
        self.category = category
        self.component = component
        self.event = event
        self.detail = {} if detail is None else detail
        # Memoized canonical forms (not part of identity/equality).
        self._wire_cache: Optional[Dict[str, Any]] = None
        self._fingerprint_cache: Optional[str] = None

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not TraceRecord:
            return NotImplemented
        return (
            self.time == other.time
            and self.category == other.category
            and self.component == other.component
            and self.event == other.event
            and self.detail == other.detail
        )

    __hash__ = None  # type: ignore[assignment]  # detail dicts are unhashable anyway

    def __repr__(self) -> str:
        return (
            f"TraceRecord(time={self.time!r}, category={self.category!r}, "
            f"component={self.component!r}, event={self.event!r}, detail={self.detail!r})"
        )

    def __str__(self) -> str:
        base = f"[{self.time:12.3f}] {self.category:<10} {self.component:<24} {self.event}"
        if not self.detail:
            return base
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"{base} {extras}".rstrip()

    def as_wire(self) -> Dict[str, Any]:
        """Canonical serializable form (stable key order, quantized floats).

        This is the comparison unit used by ``repro.replay``: two records
        from different runs are "the same event" iff their wire forms are
        equal.  The dict is computed once and cached; do not mutate it.
        """
        wire = self._wire_cache
        if wire is None:
            wire = {
                "time": quantize(self.time),
                "category": self.category,
                "component": self.component,
                "event": self.event,
                "detail": canonical_detail(self.detail),
            }
            self._wire_cache = wire
        return wire

    def fingerprint(self) -> str:
        """Short stable hash of the wire form (for compact diffs).

        Byte-compatibility contract: the hashed payload is exactly
        ``json.dumps(self.as_wire(), sort_keys=True, separators=(",", ":"))``
        — the template below hard-codes the sorted key order of the five
        wire fields and reuses the stdlib string/number encoders, so the
        digest is identical to the pre-optimization full-dump path
        (pinned by ``tests/simnet/test_trace_fastpath.py`` golden
        fingerprints).
        """
        cached = self._fingerprint_cache
        if cached is None:
            detail = self.detail
            payload = '{"category":%s,"component":%s,"detail":%s,"event":%s,"time":%s}' % (
                _escape_json_string(self.category),
                _escape_json_string(self.component),
                _dumps(canonical_detail(detail), sort_keys=True, separators=_COMPACT) if detail else "{}",
                _escape_json_string(self.event),
                _json_number(quantize(self.time)),
            )
            cached = _sha256(payload.encode("utf-8")).hexdigest()[:16]
            self._fingerprint_cache = cached
        return cached


class TraceLog:
    """Append-only log of :class:`TraceRecord` entries with query helpers.

    Per-category and per-component indexes (lists of records in emission
    order) let :meth:`select` — the query every invariant monitor and
    experiment metric goes through — scan only the narrowest matching
    index instead of the full record list.  The indexes are folded
    *lazily*: ``emit`` only appends to the record list (its batch
    buffer), and the first query after a burst of emits folds the new
    records into both indexes in one chunk (:meth:`_fold_indexes`).
    Emit-heavy phases with no queries — the common shape for campaign
    runs, where monitors subscribe instead of polling — therefore pay
    nothing for indexing.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.records: List[TraceRecord] = []
        self._clock = clock
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        self._by_category: Dict[str, List[TraceRecord]] = {}
        self._by_component: Dict[str, List[TraceRecord]] = {}
        self._indexed = 0  #: records folded into the indexes so far
        # Incremental log fingerprint: sha256 over all folded records'
        # fingerprints, plus the count folded so far.  Created lazily on
        # the first fingerprint() call — hashlib objects cannot be
        # pickled, so a never-fingerprinted log stays freely copyable.
        self._fp_digest: Optional[Any] = None
        self._fp_folded = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated clock used to timestamp records."""
        self._clock = clock

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke *callback* for every future record (live monitoring)."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Stop invoking *callback* (idempotent)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def emit(self, category: str, component: str, event: str, **detail: Any) -> TraceRecord:
        """Append a record stamped with the current simulated time.

        Snapshot semantics: the ``**detail`` kwargs mechanism copies the
        *top level* of whatever mapping the caller splatted in, so later
        reassignment of the caller's keys cannot alter the record.
        Nested mutable values are held by reference and rendered lazily
        — callers must treat anything passed as detail as frozen from
        this point on (the sim layers only ever pass scalars and fresh
        containers).
        """
        time = self._clock() if self._clock is not None else 0.0
        record = TraceRecord(time, category, component, event, detail)
        self.records.append(record)
        if self._subscribers:
            # Reviewed-benign HOT003: _subscribers grows with *monitor*
            # count (a handful per scenario), not with event count.
            for callback in self._subscribers:  # oftt-lint: ok[hot-linear-scan]
                callback(record)
        return record

    # -- queries ---------------------------------------------------------

    def _fold_indexes(self) -> None:
        """Fold records emitted since the last query into both indexes.

        Amortized O(1) per record: each record is folded exactly once,
        whether it arrived alone or in a 100k-emit burst.  If the record
        list ever shrinks — unsupported, but cheap to detect — the
        indexes are rebuilt from scratch rather than served stale.
        """
        records = self.records
        indexed = self._indexed
        if indexed > len(records):
            self._by_category = {}
            self._by_component = {}
            indexed = 0
        by_category = self._by_category
        by_component = self._by_component
        for record in records[indexed:]:
            index = by_category.get(record.category)
            if index is None:
                by_category[record.category] = [record]
            else:
                index.append(record)
            index = by_component.get(record.component)
            if index is None:
                by_component[record.component] = [record]
            else:
                index.append(record)
        self._indexed = len(records)

    def _candidates(self, category: Optional[str], component: Optional[str]) -> List[TraceRecord]:
        """Narrowest index covering the given category/component filters."""
        candidates: List[TraceRecord] = self.records
        if category is None and component is None:
            return candidates
        if self._indexed != len(candidates):
            self._fold_indexes()
        if category is not None:
            candidates = self._by_category.get(category, [])
        if component is not None:
            by_component = self._by_component.get(component, [])
            if len(by_component) < len(candidates):
                candidates = by_component
        return candidates

    def select(
        self,
        category: Optional[str] = None,
        component: Optional[str] = None,
        event: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[TraceRecord]:
        """Filter records by any combination of fields and a time window.

        The window is half-open ``[since, until)``: a record stamped
        exactly at *until* is excluded, so adjacent windows tile the
        timeline without double-counting.
        """
        return [
            record
            for record in self._candidates(category, component)
            if (category is None or record.category == category)
            and (component is None or record.component == component)
            and (event is None or record.event == event)
            and since <= record.time < until
        ]

    def first(
        self,
        category: Optional[str] = None,
        component: Optional[str] = None,
        event: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> Optional[TraceRecord]:
        """First record matching :meth:`select` filters, or None.

        Short-circuits on the first hit instead of materializing the
        full ``select()`` list (the HOT003 poster child — see
        ANALYSIS.md "Hot-path rules").
        """
        for record in self._candidates(category, component):
            if (
                (category is None or record.category == category)
                and (component is None or record.component == component)
                and (event is None or record.event == event)
                and since <= record.time < until
            ):
                return record
        return None

    def last(
        self,
        category: Optional[str] = None,
        component: Optional[str] = None,
        event: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> Optional[TraceRecord]:
        """Last record matching :meth:`select` filters, or None.

        Scans the narrowest index backwards and stops at the first hit.
        """
        for record in reversed(self._candidates(category, component)):
            if (
                (category is None or record.category == category)
                and (component is None or record.component == component)
                and (event is None or record.event == event)
                and since <= record.time < until
            ):
                return record
        return None

    def count(
        self,
        category: Optional[str] = None,
        component: Optional[str] = None,
        event: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> int:
        """Number of records matching :meth:`select` filters.

        Counts in a single pass without building the intermediate list.
        """
        return sum(
            1
            for record in self._candidates(category, component)
            if (category is None or record.category == category)
            and (component is None or record.component == component)
            and (event is None or record.event == event)
            and since <= record.time < until
        )

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of (the tail of) the trace."""
        records = self.records if limit is None else self.records[-limit:]
        return "\n".join(str(record) for record in records)

    def as_wire(self) -> List[Dict[str, Any]]:
        """Canonical serializable form of the whole log (see TraceRecord.as_wire)."""
        return [record.as_wire() for record in self.records]

    def fingerprint(self) -> str:
        """Stable hash over the canonical wire form of the full log.

        Two runs of the same scenario with the same seed should yield
        identical fingerprints; ``repro.replay`` uses this as the cheap
        equality check before computing an event-by-event diff.

        The log is append-only, so the digest is maintained
        incrementally: each call folds only the records emitted since
        the last call, then reports the digest over everything folded so
        far.  The result is byte-for-byte identical to hashing the full
        log from scratch (the replay gate re-verifies this every run).
        If the record list ever shrinks — unsupported, but cheap to
        detect — the digest is rebuilt from scratch rather than served
        stale.
        """
        records = self.records
        digest = self._fp_digest
        if digest is None or self._fp_folded > len(records):
            digest = self._fp_digest = _sha256()
            self._fp_folded = 0
        folded = self._fp_folded
        if folded < len(records):
            update = digest.update
            for record in records[folded:]:
                update(record.fingerprint().encode("ascii"))
                update(b"\n")
            self._fp_folded = len(records)
        return digest.hexdigest()[:16]

    def __getstate__(self) -> Dict[str, Any]:
        """Drop the unpicklable running digest and the derived indexes.

        Both rebuild on demand; dropping the indexes roughly halves the
        pickled size of a queried log (every record would otherwise be
        referenced three times).
        """
        state = self.__dict__.copy()
        state["_fp_digest"] = None
        state["_fp_folded"] = 0
        state["_by_category"] = {}
        state["_by_component"] = {}
        state["_indexed"] = 0
        return state
