"""Simulated Windows NT node model.

The paper's checkpointing mechanism is defined in terms of NT kernel
objects: thread contexts obtained with ``GetThreadContext()``, a "memory
walkthrough" extracting stack and global variables, and an IAT
(Import Address Table) interception trick to learn the handles of threads
created dynamically with ``CreateThread()`` — which the standard Win32
APIs do not expose (§2.2.2, §3.1).

This package reproduces that model faithfully enough for the OFTT logic to
be exercised end to end:

* :class:`NTSystem` — one per network node; boot, process table, and the
  crash modes demonstrated in §4 (power-off, bluescreen, hang, reboot).
* :class:`NTProcess` / :class:`NTThread` — kernel objects with register
  contexts, stacks and address spaces.
* :class:`AddressSpace` / :class:`MemoryRegion` — named memory regions
  supporting the checkpoint walkthrough.
* :class:`Kernel32` — the Win32-like API surface, routed through the IAT
  so hooks observe every call.
* :class:`ImportAddressTable` — hookable API dispatch.
* :class:`NTRegistry` — per-node registry used for COM class registration.
* :class:`PerfMon` — performance counters, including the *misleading*
  thread start address the paper complains about.
"""

from repro.nt.memory import AddressSpace, MemoryRegion
from repro.nt.thread import ThreadContext, NTThread, ThreadState
from repro.nt.process import NTProcess, ProcessState
from repro.nt.iat import ImportAddressTable
from repro.nt.kernel32 import Kernel32, ThreadHandle
from repro.nt.registry import NTRegistry
from repro.nt.perfmon import PerfMon, NTDLL_STUB_ADDRESS
from repro.nt.system import NTSystem, SystemState

__all__ = [
    "AddressSpace",
    "ImportAddressTable",
    "Kernel32",
    "MemoryRegion",
    "NTDLL_STUB_ADDRESS",
    "NTProcess",
    "NTRegistry",
    "NTSystem",
    "NTThread",
    "PerfMon",
    "ProcessState",
    "SystemState",
    "ThreadContext",
    "ThreadHandle",
    "ThreadState",
]
