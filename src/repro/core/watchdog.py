"""Reliable watchdog timer objects.

The API exposes ``OFTTWatchdogCreate / Set / Reset / Delete`` (§2.2.2): an
application arms a watchdog and must keep resetting it; if it ever runs to
expiry the engine treats it as a component failure and applies the
recovery rule.  "Reliable" because the timer lives in the OFTT engine
process, not the application — a wedged application cannot also wedge the
mechanism that is supposed to catch it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import WatchdogError
from repro.simnet.kernel import SimKernel


class WatchdogTimer:
    """One watchdog, owned by an engine on behalf of an application."""

    def __init__(self, kernel: SimKernel, name: str, owner: str, on_expire: Callable[["WatchdogTimer"], None]) -> None:
        self.kernel = kernel
        self.name = name
        self.owner = owner
        self.on_expire = on_expire
        self.period: Optional[float] = None
        self.armed = False
        self.deleted = False
        self.expirations = 0
        self.resets = 0
        self._timer = None

    def set(self, period: float) -> None:
        """Arm (or re-arm) the watchdog with *period*."""
        self._ensure_usable()
        if period <= 0:
            raise WatchdogError(f"watchdog {self.name}: period must be positive")
        self.period = period
        self._restart()
        self.armed = True

    def reset(self) -> None:
        """Pet the watchdog: restart the countdown."""
        self._ensure_usable()
        if not self.armed or self.period is None:
            raise WatchdogError(f"watchdog {self.name}: reset before set")
        self.resets += 1
        self._restart()

    def stop(self) -> None:
        """Disarm without deleting (can be ``set`` again)."""
        self._ensure_usable()
        self.armed = False
        self._cancel()

    def delete(self) -> None:
        """Destroy the watchdog; further use is an error."""
        self._ensure_usable()
        self.deleted = True
        self.armed = False
        self._cancel()

    def _restart(self) -> None:
        self._cancel()
        self._timer = self.kernel.schedule(self.period, self._expired)

    def _cancel(self) -> None:
        if self._timer is not None:
            self.kernel.cancel(self._timer)
            self._timer = None

    def _expired(self) -> None:
        if self.deleted or not self.armed:
            return
        self.expirations += 1
        self.armed = False
        self._timer = None
        self.on_expire(self)

    def _ensure_usable(self) -> None:
        if self.deleted:
            raise WatchdogError(f"watchdog {self.name}: used after delete")

    def __repr__(self) -> str:
        state = "deleted" if self.deleted else ("armed" if self.armed else "idle")
        return f"WatchdogTimer({self.name}, owner={self.owner}, {state}, period={self.period})"
