"""Unit tests for the heartbeat failure detector."""

from repro.core.heartbeat import HeartbeatMonitor
from repro.simnet.kernel import SimKernel


def make_monitor(sweep=50.0):
    kernel = SimKernel()
    failures = []
    monitor = HeartbeatMonitor(kernel, sweep, lambda name, silence: failures.append((kernel.now, name, silence)))
    monitor.start()
    return kernel, monitor, failures


def beat_loop(kernel, monitor, component, period, until):
    time = period
    while time <= until:
        kernel.schedule(time - kernel.now, monitor.beat, component)
        time += period


def test_silent_component_declared_failed_once():
    kernel, monitor, failures = make_monitor()
    monitor.watch("app", timeout=200.0)
    kernel.run(until=1_000.0)
    assert len(failures) == 1
    _time, name, silence = failures[0]
    assert name == "app"
    assert silence > 200.0


def test_detection_latency_bounded_by_timeout_plus_sweep():
    kernel, monitor, failures = make_monitor(sweep=50.0)
    monitor.watch("app", timeout=200.0)
    kernel.run(until=5_000.0)
    detect_time = failures[0][0]
    assert 200.0 < detect_time <= 300.0


def test_beating_component_never_suspected():
    kernel, monitor, failures = make_monitor()
    monitor.watch("app", timeout=200.0)
    beat_loop(kernel, monitor, "app", period=100.0, until=2_000.0)
    kernel.run(until=2_000.0)
    assert failures == []
    assert not monitor.is_suspected("app")


def test_beat_after_suspicion_clears_and_rearms():
    kernel, monitor, failures = make_monitor()
    monitor.watch("app", timeout=200.0)
    kernel.run(until=500.0)
    assert monitor.is_suspected("app")
    monitor.beat("app")
    assert not monitor.is_suspected("app")
    kernel.run(until=1_500.0)
    assert len(failures) == 2  # silent again -> second detection


def test_pause_suppresses_detection_resume_restarts_clock():
    kernel, monitor, failures = make_monitor()
    monitor.watch("app", timeout=200.0)
    monitor.pause("app")
    kernel.run(until=2_000.0)
    assert failures == []
    monitor.resume("app")
    kernel.run(until=2_100.0)
    assert failures == []  # clock restarted at resume
    kernel.run(until=2_500.0)
    assert len(failures) == 1


def test_unwatch_stops_monitoring():
    kernel, monitor, failures = make_monitor()
    monitor.watch("app", timeout=200.0)
    monitor.unwatch("app")
    kernel.run(until=2_000.0)
    assert failures == []
    assert monitor.silence("app") is None


def test_beat_for_unknown_component_ignored():
    kernel, monitor, _failures = make_monitor()
    monitor.beat("ghost")  # must not raise


def test_stop_halts_sweeps():
    kernel, monitor, failures = make_monitor()
    monitor.watch("app", timeout=200.0)
    monitor.stop()
    kernel.run(until=5_000.0)
    assert failures == []


def test_multiple_components_independent():
    kernel, monitor, failures = make_monitor()
    monitor.watch("good", timeout=200.0)
    monitor.watch("bad", timeout=200.0)
    beat_loop(kernel, monitor, "good", period=100.0, until=1_000.0)
    kernel.run(until=1_000.0)
    assert [name for _t, name, _s in failures] == ["bad"]
    assert monitor.watched() == ["bad", "good"]


# -- runtime tuning (adaptive policy hooks) ---------------------------------


def test_tune_scales_timeout_and_reset_restores_base():
    kernel, monitor, failures = make_monitor()
    monitor.watch("app", timeout=400.0)
    monitor.tune("app", timeout_scale=0.5)
    kernel.run(until=300.0)
    assert [name for _t, name, _s in failures] == ["app"]  # tripped at 200ms
    monitor.tune("app")  # reset
    assert monitor._watches["app"].timeout == 400.0


def test_tune_unknown_component_is_ignored():
    kernel, monitor, _failures = make_monitor()
    monitor.tune("ghost", timeout_scale=0.5)  # no raise


def test_miss_tolerance_overrides_global_threshold():
    kernel, monitor, failures = make_monitor(sweep=50.0)
    monitor.watch("app", timeout=100.0)
    monitor.tune("app", miss_tolerance=4)
    # Silent from t=0: sweeps at 150/200/250 miss, the 4th (t=300) fires.
    kernel.run(until=1_000.0)
    assert len(failures) == 1
    time, _name, _silence = failures[0]
    assert time == 300.0
    # Clearing the tolerance restores the global threshold.
    monitor.tune("app")
    assert monitor._watches["app"].miss_tolerance is None


def test_largest_gap_tracks_interarrival_skew():
    kernel, monitor, _failures = make_monitor()
    monitor.watch("app", timeout=10_000.0)
    for at in (100.0, 200.0, 650.0, 750.0):
        kernel.schedule(at - kernel.now, monitor.beat, "app")
        kernel.run(until=at)
    assert monitor.largest_gap("app") == 450.0


def test_largest_gap_requires_two_beats():
    kernel, monitor, _failures = make_monitor()
    monitor.watch("app", timeout=10_000.0)
    assert monitor.largest_gap("app") is None
    monitor.beat("app")
    assert monitor.largest_gap("app") is None
