"""The bench catalogue: micro sim hot paths, macro end-to-end workloads.

Every bench returns one dict with three parts::

    {"name": ..., "work": {...deterministic...}, "measured": {...timed...}}

``work`` is a pure function of the bench parameters (iteration counts,
event totals, checks) — the byte-stable half of the ``repro.bench/v1``
report.  ``measured`` holds wall seconds and rates from this run.

This module is the one sanctioned home of wall-clock reads in ``src``
(benchmarks exist to read the host clock); everything it *times* is
still fully deterministic sim code.
"""
# oftt-lint: file-ok[wall-clock] -- benchmarks time the host by definition.

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List

from repro.chaos.cli import campaign
from repro.chaos.report import render_json as chaos_render_json
from repro.apps.synthetic import SyntheticStateApp
from repro.harness.scenario import build_pair_env
from repro.replay.runner import checkpoint_roundtrip
from repro.replay.subjects import run_subject
from repro.simnet.kernel import SimKernel
from repro.simnet.trace import TraceLog

#: (seeds, schedules) per profile for the macro campaign bench.
CAMPAIGN_SHAPE = {"quick": (4, 5), "full": (10, 10)}
PROFILES = tuple(CAMPAIGN_SHAPE)

_WARMUP = 15_000.0  #: sim ms before the checkpoint bench starts capturing


def _timed(fn: Callable[[], Any]) -> tuple:
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _rate(count: int, seconds: float) -> float:
    return round(count / seconds, 1) if seconds > 0 else 0.0


def bench_kernel_events(n: int) -> Dict[str, Any]:
    """Schedule *n* no-op callbacks (cancelling every third) and drain.

    The cancel mix exercises both the lazy-cancel skip in ``run()`` and
    the heap compaction path; ``pending`` must hit zero either way.
    """
    kernel = SimKernel()
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    def drive() -> None:
        calls = [kernel.schedule(float(i % 997), tick) for i in range(n)]
        for call in calls[::3]:
            call.cancel()
        kernel.run()

    _, seconds = _timed(drive)
    cancelled = len(range(0, n, 3))
    return {
        "name": "kernel-events",
        "work": {
            "scheduled": n,
            "cancelled": cancelled,
            "fired": fired[0],
            "drained": kernel.pending == 0,
        },
        "measured": {"wall_s": round(seconds, 4), "events_per_s": _rate(n, seconds)},
    }


def bench_trace_emits(n: int) -> Dict[str, Any]:
    """Emit *n* records (no subscribers), then fingerprint cold and warm.

    Times the ``emit`` fast path plus the per-record fingerprint cache:
    the second full fingerprint should be near-free.
    """
    trace = TraceLog()

    def drive() -> TraceLog:
        for i in range(n):
            trace.emit("bench", f"component-{i % 7}", f"event-{i % 13}", index=i)
        return trace

    _, emit_seconds = _timed(drive)
    cold, cold_seconds = _timed(trace.fingerprint)
    warm, warm_seconds = _timed(trace.fingerprint)
    return {
        "name": "trace-emits",
        "work": {
            "emitted": n,
            "selected": len(trace.select(category="bench", component="component-0")),
            "fingerprint_stable": cold == warm,
        },
        "measured": {
            "wall_s": round(emit_seconds, 4),
            "emits_per_s": _rate(n, emit_seconds),
            "fingerprint_cold_s": round(cold_seconds, 4),
            "fingerprint_warm_s": round(warm_seconds, 4),
        },
    }


def bench_checkpoint_roundtrips(n: int) -> Dict[str, Any]:
    """Run *n* capture -> restore -> capture cycles on the pair scenario."""
    scenario = build_pair_env(seed=0, app_factory=lambda: SyntheticStateApp(cold_kb=8, mode="full"))
    scenario.start()
    scenario.run_for(_WARMUP)

    def drive() -> List[bool]:
        return [
            checkpoint_roundtrip(scenario, scenario.primary_app(), subject="bench", seed=0).ok
            for _ in range(n)
        ]

    oks, seconds = _timed(drive)
    return {
        "name": "checkpoint-roundtrips",
        "work": {"roundtrips": n, "ok": sum(oks)},
        "measured": {"wall_s": round(seconds, 4), "roundtrips_per_s": _rate(n, seconds)},
    }


def bench_chaos_campaign(profile: str, jobs: int) -> Dict[str, Any]:
    """Time the campaign serial and at *jobs* workers; require byte equality.

    This is the acceptance bench for the parallel executor: the speedup
    is whatever this host's cores deliver, but the reports must match
    byte-for-byte or the bench itself reports ``byte_identical: false``.
    """
    seeds, schedules = CAMPAIGN_SHAPE[profile]
    serial, serial_seconds = _timed(lambda: campaign(seeds, schedules, 0, jobs=1))
    parallel, parallel_seconds = _timed(lambda: campaign(seeds, schedules, 0, jobs=jobs))
    return {
        "name": "chaos-campaign",
        "work": {
            "runs": seeds * schedules,
            "jobs": jobs,
            "failures": sum(1 for run in serial if not run.passed),
            "byte_identical": chaos_render_json(serial) == chaos_render_json(parallel),
        },
        "measured": {
            "serial_wall_s": round(serial_seconds, 4),
            "parallel_wall_s": round(parallel_seconds, 4),
            "speedup": round(serial_seconds / parallel_seconds, 2) if parallel_seconds > 0 else 0.0,
        },
    }


def bench_replay_demo_campaign() -> Dict[str, Any]:
    """Time the heaviest replay subject: the §4 demo campaign, run twice."""
    result, seconds = _timed(lambda: run_subject("demo-campaign", seed=0))
    return {
        "name": "replay-demo-campaign",
        "work": {"ok": result.ok, "events": result.events},
        "measured": {"wall_s": round(seconds, 4)},
    }


def run_benches(profile: str = "quick", jobs: int = 2) -> List[Dict[str, Any]]:
    """Run the full catalogue for *profile*; bench order is fixed."""
    if profile not in CAMPAIGN_SHAPE:
        raise ValueError(f"unknown profile {profile!r}; expected one of {PROFILES}")
    micro_n = 50_000 if profile == "quick" else 200_000
    return [
        bench_kernel_events(micro_n),
        bench_trace_emits(micro_n),
        bench_checkpoint_roundtrips(5 if profile == "quick" else 20),
        bench_chaos_campaign(profile, jobs),
        bench_replay_demo_campaign(),
    ]
