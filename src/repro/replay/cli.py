"""Command-line driver: ``python -m repro.replay`` / ``oftt-replay``.

Exit-code contract (mirrors ``oftt-lint``; relied on by ``make verify``
and the dogfood test):

* ``0`` — every checked subject is replay-deterministic
* ``1`` — at least one divergence or round-trip mismatch
* ``2`` — usage error (unknown subject)

Examples::

    python -m repro.replay --gate                 # the make-verify gate
    python -m repro.replay demo --seed 7          # one subject, one seed
    oftt-replay demo-campaign --format json       # machine output
    oftt-replay --list-subjects
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

# oftt-lint: file-ok[ambient-io] -- the replay checker is a host-side CLI.
from repro.perf.executor import add_jobs_argument, parallel_map
from repro.replay.report import render_json, render_text
from repro.replay.subjects import SUBJECTS, check_subject_task

#: Subjects ``--gate`` runs (currently: everything registered).
GATE_SUBJECTS = list(SUBJECTS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oftt-replay",
        description="Replay-divergence checker: run scenarios twice with the same seed and diff the traces.",
    )
    parser.add_argument("subjects", nargs="*",
                        help="subject names to check (default: all; see --list-subjects)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for both runs of every subject (default: 0)")
    parser.add_argument("--gate", action="store_true",
                        help="run the full verification gate (all subjects, default seed)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--json", action="store_const", const="json", dest="format",
                        help="shorthand for --format json")
    parser.add_argument("--list-subjects", action="store_true",
                        help="print the subject catalogue and exit")
    add_jobs_argument(parser)
    return parser


def list_subjects() -> str:
    lines = []
    for subject in SUBJECTS.values():
        lines.append(f"{subject.name:32s} {subject.kind:10s} {subject.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_subjects:
        print(list_subjects())
        return 0

    requested: List[str] = GATE_SUBJECTS if options.gate else (list(options.subjects) or list(SUBJECTS))
    unknown = [name for name in requested if name not in SUBJECTS]
    if unknown:
        print(f"oftt-replay: unknown subject(s) {unknown}; available: {sorted(SUBJECTS)}", file=sys.stderr)
        return 2

    # Subjects are independent; fan out and merge in requested order so
    # the report is byte-identical for any --jobs value.
    tasks = [(name, options.seed) for name in requested]
    results = parallel_map(check_subject_task, tasks, jobs=options.jobs)

    if options.format == "json":
        sys.stdout.write(render_json(results))
    else:
        print(render_text(results))

    return 0 if all(result.ok for result in results) else 1


if __name__ == "__main__":
    sys.exit(main())
