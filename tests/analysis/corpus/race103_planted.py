"""Planted RACE103: helper-level container mutation vs direct iteration.

``on_flush`` appends to ``self.items`` through ``_drain`` while
``on_scan`` iterates the same list in the same tick.
"""


class Spool:
    def __init__(self, kernel):
        self.kernel = kernel
        self.items = []

    def start(self):
        self.kernel.schedule(2.0, self.on_flush)
        self.kernel.schedule(2.0, self.on_scan)

    def on_flush(self):  # expect: RACE103
        self._drain()

    def _drain(self):
        self.items.append(1)

    def on_scan(self):
        total = 0
        for item in self.items:
            total += item
        return total
