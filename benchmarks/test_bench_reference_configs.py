"""Benchmark F1a/F1b: the Figure 1 reference configurations.

Paper artifact: Figure 1(a) "Control with remote monitoring" and
Figure 1(b) "Integrated Monitoring and Control".  The figure is a
topology, not a data table; this harness verifies each configuration
carries live plant data through the OPC stack and survives a node
failure of the monitoring pair.
"""

from repro.harness.experiments import exp_reference_configs

from benchmarks.conftest import print_rows


def test_bench_reference_configs(benchmark):
    rows = benchmark.pedantic(lambda: exp_reference_configs(seed=3), rounds=1, iterations=1)
    print_rows("F1a/F1b: reference configurations under node failure", rows)
    assert all(row["survived"] for row in rows)
    assert all(row["primary_after"] != row["primary_before"] for row in rows)
