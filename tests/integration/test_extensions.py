"""Integration tests for the extension features beyond the paper's
implementation status.

* Dynamic recovery rules at run time (§2.2.1 says "the current
  implementation only supports static decision" — we implement the
  dynamic path).
* DCOM-style ping GC of orphaned OPC groups after client failovers.
* Operator failback: returning the primary role after a repair.
"""

from repro.core.config import RecoveryRule
from repro.faults import NodeFailure, NodeReboot
from repro.faults.injector import FaultInjector
from repro.harness.scenario import build_remote_monitoring

from tests.core.util import make_pair_world


def test_dynamic_recovery_rule_change_takes_effect():
    world = make_pair_world()
    world.start()
    world.run_for(3_000.0)
    primary = world.primary
    app = world.pair.apps[primary]
    # At run time, tighten the rule to always-failover.
    app.api.OFTTSetRecoveryRule(RecoveryRule.always_failover())
    app.process.kill()
    world.run_for(3_000.0)
    # The very first crash escalated straight to switchover.
    assert world.primary != primary
    assert world.pair.engines[primary].local_restart_count == 0


def test_dynamic_rule_relaxation():
    world = make_pair_world()
    world.start()
    world.run_for(3_000.0)
    primary = world.primary
    app = world.pair.apps[primary]
    app.api.OFTTSetRecoveryRule(RecoveryRule.local_only())
    for _crash in range(4):
        app.process.kill()
        world.run_for(1_500.0)
    # Never failed over, kept restarting locally.
    assert world.primary == primary
    assert world.pair.engines[primary].local_restart_count == 4


def test_opc_ping_gc_collects_orphaned_groups():
    """After a monitoring-station failover, the dead client's group on the
    external OPC server must eventually be garbage collected."""
    scenario = build_remote_monitoring(seed=61)
    scenario.start()
    scenario.run_for(10_000.0)
    server = scenario.opc_server
    groups_before = set(server.groups)
    assert len(groups_before) == 1  # the primary station's subscription
    victim = scenario.pair.primary_node()
    scenario.systems[victim].power_off()
    # Two ping periods + slack for the strikes to accumulate.
    scenario.run_for(25_000.0)
    surviving_groups = set(server.groups)
    # The orphan is gone; the new primary's group remains.
    assert groups_before.isdisjoint(surviving_groups)
    assert len(surviving_groups) == 1
    new_app = scenario.primary_app()
    assert new_app.updates_seen() > 0  # replacement subscription is live


def test_opc_ping_keeps_healthy_groups():
    scenario = build_remote_monitoring(seed=62)
    scenario.start()
    scenario.run_for(30_000.0)  # several ping periods
    assert len(scenario.opc_server.groups) == 1  # never collected


def test_operator_failback_after_repair():
    """Fail A over to B, repair A, then hand primary back to A —
    the 'switchback' workflow an operator would run after maintenance."""
    world = make_pair_world(seed=63)
    world.start()
    world.run_for(3_000.0)
    node_a = world.primary
    injector = FaultInjector(world.kernel, world)
    injector.inject_now(NodeFailure(node_a))
    world.run_for(3_000.0)
    node_b = world.primary
    assert node_b != node_a
    injector.inject_now(NodeReboot(node_a, reinstall=True))
    world.run_for(6_000.0)
    assert world.pair.engines[node_a].role.value == "backup"
    ticks_on_b = world.pair.apps[node_b].ticks()
    # Operator-initiated switchback.
    world.pair.engines[node_b].request_switchover("failback after repair")
    world.run_for(3_000.0)
    assert world.primary == node_a
    assert world.pair.apps[node_a].running
    assert world.pair.apps[node_a].ticks() >= ticks_on_b - 25
    assert world.pair.is_stable()
