"""Property-based tests: kernel event ordering and memory walkthroughs."""

from hypothesis import given, settings, strategies as st

from repro.nt.memory import AddressSpace, HEAP, STACK
from repro.simnet.kernel import SimKernel


@given(st.lists(st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False), min_size=1, max_size=40))
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    kernel = SimKernel()
    fired = []
    for delay in delays:
        kernel.schedule(delay, lambda: fired.append(kernel.now))
    kernel.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert kernel.now == max(delays)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=20),
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
)
def test_run_until_never_executes_future_events(delays, horizon):
    kernel = SimKernel()
    fired = []
    for delay in delays:
        kernel.schedule(delay, lambda d=delay: fired.append(d))
    kernel.run(until=horizon)
    assert all(delay <= horizon for delay in fired)
    assert sorted(fired) == sorted(d for d in delays if d <= horizon)


@given(st.data())
@settings(max_examples=50)
def test_clock_is_monotone_under_nested_scheduling(data):
    kernel = SimKernel()
    observed = []
    depth = data.draw(st.integers(min_value=1, max_value=5))

    def reschedule(level):
        observed.append(kernel.now)
        if level < depth:
            extra = data.draw(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False), label=f"extra{level}"
            )
            kernel.schedule(extra, reschedule, level + 1)

    kernel.schedule(1.0, reschedule, 0)
    kernel.run()
    assert observed == sorted(observed)


# -- memory walkthroughs ------------------------------------------------------

variable_names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), min_size=1, max_size=8
)
plain_values = st.one_of(
    st.integers(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=16),
    st.lists(st.integers(), max_size=4),
    st.dictionaries(st.text(max_size=4), st.integers(), max_size=4),
)


@given(
    regions=st.dictionaries(
        variable_names,
        st.dictionaries(variable_names, plain_values, max_size=6),
        min_size=1,
        max_size=4,
    )
)
def test_walkthrough_restore_roundtrip(regions):
    source = AddressSpace("src")
    for index, (region_name, variables) in enumerate(regions.items()):
        kind = (HEAP, STACK)[index % 2]
        if region_name != "globals":
            source.map_region(region_name, kind)
        for variable, value in variables.items():
            source.write(variable, value, region=region_name)
    image = source.walkthrough()

    target = AddressSpace("dst")
    target.restore_walkthrough(image)
    assert target.walkthrough() == image


@given(
    variables=st.dictionaries(variable_names, plain_values, min_size=1, max_size=8),
    mutations=st.dictionaries(variable_names, plain_values, max_size=8),
)
def test_walkthrough_is_isolated_from_later_mutation(variables, mutations):
    space = AddressSpace("app")
    for variable, value in variables.items():
        space.write(variable, value)
    image = space.walkthrough()
    snapshot = {name: value for name, value in image["globals"].items()}
    for variable, value in mutations.items():
        space.write(variable, value)
    assert image["globals"] == snapshot
