"""The ``repro.bench/v1`` report contract.

A bench report has two kinds of content and the schema keeps them
strictly apart:

* ``work`` — what was executed: iteration counts, event totals, byte
  sizes, pass/fail checks.  Pure functions of the bench parameters, so
  the *deterministic view* (the report minus ``measured`` and ``host``)
  is byte-identical across runs, machines, and ``--jobs`` values — and
  is what the tests assert on.
* ``measured`` — wall-clock seconds and derived rates, plus the ``host``
  block (cpu count, python version).  Honest numbers from this run of
  this machine; never compared byte-for-byte.

Saved reports are numbered ``BENCH_<n>.json`` at the repo root so a
sequence of PRs accumulates a performance history.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List

SCHEMA = "repro.bench/v1"

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def build_report(benches: List[Dict[str, Any]], profile: str, jobs: int,
                 host: Dict[str, Any]) -> Dict[str, Any]:
    """Assemble the top-level report dict (see module docstring)."""
    return {
        "schema": SCHEMA,
        "profile": profile,
        "jobs": jobs,
        "host": host,
        "benches": benches,
    }


def render_json(report: Dict[str, Any]) -> str:
    """Canonical serialization: sorted keys, newline-terminated."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def deterministic_view(report: Dict[str, Any]) -> Dict[str, Any]:
    """The report with every run-varying field removed.

    Drops the ``host`` block and each bench's ``measured`` dict; what
    remains (schema, profile, jobs, per-bench ``work``) must be
    byte-stable — the bench tests and the replay philosophy both rely on
    this split.
    """
    return {
        "schema": report["schema"],
        "profile": report["profile"],
        "jobs": report["jobs"],
        "benches": [
            {key: value for key, value in bench.items() if key != "measured"}
            for bench in report["benches"]
        ],
    }


def next_bench_path(root: str) -> str:
    """Path of the next ``BENCH_<n>.json`` in *root* (max existing + 1)."""
    taken = []
    for name in os.listdir(root):  # oftt-lint: ok[ambient-io]
        match = _BENCH_NAME.match(name)
        if match:
            taken.append(int(match.group(1)))
    return os.path.join(root, f"BENCH_{max(taken, default=0) + 1}.json")
