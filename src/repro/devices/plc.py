"""Programmable Logic Controller and the PLC→OPC bridge.

"A PLC interfaces with various types of input/output devices (such as
sensors, valves), reads inputs, processes data, and generates
corresponding control outputs.  In the meantime, data are sent to the PC
where they will be further processed" (§1).

:class:`PLC` runs a classic scan loop on the simulation kernel: read the
input image from the fieldbus, run user logic, write the output image.
:class:`PlcOpcBridge` is the "device driver" inside an OPC server: it
polls the PLC's IO image and pushes values (with quality) into the
server's namespace.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.devices.fieldbus import Fieldbus
from repro.opc.server import OpcServer
from repro.opc.types import Quality
from repro.simnet.events import Timeout
from repro.simnet.kernel import Process, SimKernel

# User logic: fn(inputs, outputs, time) mutates the outputs dict.
ScanLogic = Callable[[Dict[str, float], Dict[str, float], float], None]


class PLC:
    """A scan-loop PLC."""

    def __init__(
        self,
        kernel: SimKernel,
        name: str,
        fieldbus: Fieldbus,
        rng,
        scan_period: float = 50.0,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.fieldbus = fieldbus
        self.rng = rng
        self.scan_period = scan_period
        self.inputs: Dict[str, float] = {}
        self.input_quality: Dict[str, Quality] = {}
        self.outputs: Dict[str, float] = {}
        self.logic: List[ScanLogic] = []
        self.running = False
        self.scan_count = 0
        self._process: Optional[Process] = None

    def add_logic(self, logic: ScanLogic) -> None:
        """Append a rung of user logic to the scan."""
        self.logic.append(logic)

    def map_output(self, point: str, initial: float = 0.0) -> None:
        """Declare an output point (named after its actuator)."""
        self.outputs[point] = initial

    # -- scan loop -----------------------------------------------------------

    def start(self) -> None:
        """Begin scanning."""
        if self.running:
            return
        self.running = True
        self._process = self.kernel.spawn(self._scan_loop(), name=f"plc:{self.name}")

    def stop(self) -> None:
        """Halt scanning (PLC fault or shutdown)."""
        self.running = False
        if self._process is not None:
            self._process.kill()
            self._process = None

    def _scan_loop(self):
        while self.running:
            self.scan_once()
            yield Timeout(self.scan_period)

    def scan_once(self) -> None:
        """One full input-logic-output scan."""
        now = self.kernel.now
        # Input scan.
        for sensor in self.fieldbus.sensors():
            try:
                self.inputs[sensor.name] = self.fieldbus.read_sensor(sensor.name, now, self.rng)
                self.input_quality[sensor.name] = Quality.GOOD
            except IOError:
                self.input_quality[sensor.name] = Quality.BAD_DEVICE_FAILURE
        # Logic.
        for rung in self.logic:
            rung(self.inputs, self.outputs, now)
        # Output scan.
        for actuator in self.fieldbus.actuators():
            if actuator.name in self.outputs:
                try:
                    self.fieldbus.write_actuator(actuator.name, self.outputs[actuator.name])
                except IOError:
                    pass  # surfaced via input quality on the next scan
        self.scan_count += 1

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"PLC({self.name}, {state}, scans={self.scan_count})"


class PlcOpcBridge:
    """Feeds a PLC's IO image into an OPC server's namespace.

    Items are named ``<plc>.<point>``; input quality flows through.  This
    is the "device interface" role of the OPC Server App in Figure 2.
    """

    def __init__(self, kernel: SimKernel, plc: PLC, server: OpcServer, poll_period: float = 100.0) -> None:
        self.kernel = kernel
        self.plc = plc
        self.server = server
        self.poll_period = poll_period
        self.running = False
        self.poll_count = 0
        self._process: Optional[Process] = None
        self._defined: set = set()

    def item_id(self, point: str) -> str:
        """OPC item id for a PLC point."""
        return f"{self.plc.name}.{point}"

    def start(self) -> None:
        """Begin polling the PLC image."""
        if self.running:
            return
        self.running = True
        self._process = self.kernel.spawn(self._poll_loop(), name=f"bridge:{self.plc.name}")

    def stop(self) -> None:
        """Stop polling."""
        self.running = False
        if self._process is not None:
            self._process.kill()
            self._process = None

    def _poll_loop(self):
        while self.running:
            self.poll_once()
            yield Timeout(self.poll_period)

    def poll_once(self) -> None:
        """Copy the current IO image into the OPC namespace."""
        for point, value in sorted(self.plc.inputs.items()):
            quality = self.plc.input_quality.get(point, Quality.GOOD)
            self._publish(self.item_id(point), float(value), quality, writable=False)
        for point, value in sorted(self.plc.outputs.items()):
            self._publish(self.item_id(point), float(value), Quality.GOOD, writable=True)
        self.poll_count += 1

    def _publish(self, item_id: str, value: float, quality: Quality, writable: bool) -> None:
        if item_id not in self._defined:
            if not self.server.namespace.exists(item_id):
                access = "read_write" if writable else "read"
                self.server.namespace.define_simple(item_id, value, access=access)
                if writable:
                    # Operator writes land in the PLC output image (user
                    # logic may override them on the next scan, as on a
                    # real PLC).
                    point = item_id[len(self.plc.name) + 1:]
                    self.server.namespace.on_write(
                        item_id, lambda _item, v, p=point: self.plc.outputs.__setitem__(p, float(v))
                    )
            self._defined.add(item_id)
        self.server.update_item(item_id, value, quality)

    def __repr__(self) -> str:
        return f"PlcOpcBridge({self.plc.name} -> {self.server.name}, polls={self.poll_count})"
