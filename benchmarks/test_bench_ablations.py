"""Ablation benchmarks for design choices DESIGN.md calls out.

Three ablations around the paper's architecture:

* **Dual vs single Ethernet** (§2.1): what the redundant segment buys.
* **Heartbeat timeout vs loss**: false-positive switchovers on a lossy
  link when nothing is actually failing.
* **Checkpoint period**: the staleness/traffic tradeoff that motivates
  event-based ``OFTTSave``.
"""

from repro.harness.experiments import (
    exp_ablation_checkpoint_period,
    exp_ablation_dual_lan,
    exp_ablation_heartbeat_loss,
)

from benchmarks.conftest import print_rows


def test_bench_ablation_dual_lan(benchmark):
    rows = benchmark.pedantic(lambda: exp_ablation_dual_lan(seed=51), rounds=1, iterations=1)
    print_rows("Ablation: NIC failure with single vs dual Ethernet", rows)
    single, dual = rows
    assert single["ethernet_segments"] == 1
    # Single LAN: losing the segment splits the pair into dual primaries
    # for the outage; dual LAN: the redundant path hides it completely.
    assert single["dual_primary_window_ms"] > 0
    assert dual["dual_primary_window_ms"] == 0
    assert single["resolved_after_heal"] and dual["resolved_after_heal"]


def test_bench_ablation_heartbeat_loss(benchmark):
    rows = benchmark.pedantic(
        lambda: exp_ablation_heartbeat_loss(seed=53, observe=45_000.0), rounds=1, iterations=1
    )
    print_rows("Ablation: false takeovers vs heartbeat timeout on lossy links", rows)
    # At any loss rate, generous timeouts produce no more false
    # takeovers than aggressive ones.
    by_loss = {}
    for row in rows:
        by_loss.setdefault(row["loss"], []).append(row)
    for loss, entries in by_loss.items():
        entries.sort(key=lambda row: row["timeout_ms"])
        takeovers = [row["false_takeovers"] for row in entries]
        assert takeovers == sorted(takeovers, reverse=True) or takeovers[-1] <= takeovers[0]
        # The most generous timeout is always stable.
        assert entries[-1]["false_takeovers"] == 0


def test_bench_ablation_checkpoint_period(benchmark):
    rows = benchmark.pedantic(lambda: exp_ablation_checkpoint_period(seed=55), rounds=1, iterations=1)
    print_rows("Ablation: checkpoint period vs traffic vs staleness bound", rows)
    assert all(row["recovered"] for row in rows)
    periods = [row["checkpoint_period_ms"] for row in rows]
    checkpoints = [row["checkpoints_taken"] for row in rows]
    staleness = [row["max_staleness_ticks"] for row in rows]
    assert checkpoints == sorted(checkpoints, reverse=True)  # traffic falls
    assert staleness == sorted(staleness)  # staleness bound grows
