"""Clean twin of life005: rearm cancels the previous handle first."""


class Watchdog:
    def __init__(self, kernel):
        self.kernel = kernel
        self.period = 250.0
        self._timer = None
        self.fired = 0

    def rearm(self):
        self._cancel()
        self._timer = self.kernel.schedule(self.period, self._expired)

    def stop(self):
        self._cancel()

    def _cancel(self):
        if self._timer is not None:
            self.kernel.cancel(self._timer)
            self._timer = None

    def _expired(self):
        self.fired += 1
