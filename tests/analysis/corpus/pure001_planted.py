"""Planted PURE001: the task accumulates into a module-level container.

Each spawn worker appends to its own copy of ``TOTALS``, so the merged
result no longer matches the serial run.
"""

from repro.perf.executor import parallel_map

TOTALS = []


def record(value):
    TOTALS.append(value)
    return value


def main(values):
    return parallel_map(record, values, jobs=2)  # expect: PURE001
