"""Per-node registry, in the spirit of HKEY_CLASSES_ROOT.

The COM runtime records CLSID registrations here
(``CLSID\\{...}\\InprocServer32`` style paths), and OFTT configuration is
stored under ``SOFTWARE\\SoHaR\\OFTT``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import NTError


class NTRegistry:
    """A hierarchical key/value store with backslash-separated paths."""

    def __init__(self) -> None:
        self._root: Dict[str, Any] = {}

    @staticmethod
    def _split(path: str) -> List[str]:
        parts = [part for part in path.split("\\") if part]
        if not parts:
            raise NTError("empty registry path")
        return parts

    def _descend(self, parts: List[str], create: bool) -> Dict[str, Any]:
        node = self._root
        joined = "\\".join(parts)
        for part in parts:
            child = node.get(part)
            if not isinstance(child, dict):
                if not create:
                    raise NTError(f"registry key not found: {joined}")
                child = {}
                node[part] = child
            node = child
        return node

    def create_key(self, path: str) -> None:
        """Create a key (and intermediate keys) if absent."""
        self._descend(self._split(path), create=True)

    def set_value(self, path: str, name: str, value: Any) -> None:
        """Set a named value under *path*, creating the key if needed."""
        key = self._descend(self._split(path), create=True)
        key[f"${name}"] = value

    def get_value(self, path: str, name: str, default: Any = None) -> Any:
        """Read a named value; *default* if the key or value is missing."""
        try:
            key = self._descend(self._split(path), create=False)
        except NTError:
            return default
        return key.get(f"${name}", default)

    def has_key(self, path: str) -> bool:
        """Whether *path* exists as a key."""
        try:
            self._descend(self._split(path), create=False)
            return True
        except NTError:
            return False

    def delete_key(self, path: str) -> None:
        """Remove a key and its subtree (error if missing)."""
        parts = self._split(path)
        parent = self._descend(parts[:-1], create=False) if len(parts) > 1 else self._root
        if parts[-1] not in parent:
            raise NTError(f"registry key not found: {path}")
        del parent[parts[-1]]

    def subkeys(self, path: str) -> List[str]:
        """Child key names under *path*, sorted."""
        key = self._descend(self._split(path), create=False)
        return sorted(name for name, value in key.items() if isinstance(value, dict))

    def values(self, path: str) -> Dict[str, Any]:
        """Named values stored directly under *path*."""
        key = self._descend(self._split(path), create=False)
        return {name[1:]: value for name, value in key.items() if name.startswith("$")}

    def __repr__(self) -> str:
        return f"NTRegistry(top={sorted(self._root)})"
