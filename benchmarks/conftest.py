"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table/figure/demonstration from the paper
(see the experiment index in DESIGN.md) and prints the rows it produced,
so ``pytest benchmarks/ --benchmark-only -s`` output doubles as the data
recorded in EXPERIMENTS.md.  ``pytest-benchmark`` additionally reports the
wall-clock cost of running each simulated experiment.

Because pytest captures stdout by default, every table is *also* appended
to ``benchmarks/latest_results.txt``, so the regenerated data survives a
capture-enabled run.  The file is truncated at the start of each session.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, List

from repro.harness.reporting import format_dict, format_table

RESULTS_PATH = pathlib.Path(__file__).parent / "latest_results.txt"


def pytest_sessionstart(session) -> None:
    RESULTS_PATH.write_text("Regenerated experiment tables (see EXPERIMENTS.md)\n")


def _emit(text: str) -> None:
    print(text)
    with RESULTS_PATH.open("a") as handle:
        handle.write(text + "\n")


def print_rows(title: str, rows: List[Dict[str, Any]]) -> None:
    """Print (and persist) a result table under its experiment title."""
    _emit("")
    _emit(format_table(list(rows[0].keys()), [list(row.values()) for row in rows], title=title))


def print_block(title: str, data: Dict[str, Any]) -> None:
    """Print (and persist) a key/value result block."""
    _emit("")
    _emit(format_dict(title, data))
