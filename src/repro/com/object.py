"""Reference-counted COM objects.

Subclasses declare ``IMPLEMENTS`` (a tuple of
:class:`~repro.com.interfaces.InterfaceDecl`) and implement the declared
methods as plain Python methods.  The base class supplies the IUnknown
contract: ``QueryInterface``, ``AddRef``, ``Release``, plus a
``final_release`` hook fired when the count hits zero.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.com.guids import GUID
from repro.com.hresult import E_NOINTERFACE
from repro.com.interfaces import IUNKNOWN, InterfaceDecl
from repro.errors import ComError


class ComObject:
    """Base class for every COM object in the simulation."""

    IMPLEMENTS: Tuple[InterfaceDecl, ...] = ()

    def __init__(self) -> None:
        self._refcount = 1
        self._released = False

    # -- IUnknown -----------------------------------------------------------

    def QueryInterface(self, iid: GUID) -> "ComObject":
        """Return self (with an added reference) if *iid* is implemented.

        Raises :class:`ComError` with ``E_NOINTERFACE`` otherwise, matching
        the COM contract.
        """
        for decl in self.interfaces():
            if decl.iid == iid:
                self.AddRef()
                return self
        raise ComError(E_NOINTERFACE, f"{type(self).__name__} does not implement {iid}")

    def AddRef(self) -> int:
        """Increment and return the reference count."""
        if self._released:
            raise ComError(E_NOINTERFACE, f"AddRef on destroyed {type(self).__name__}")
        self._refcount += 1
        return self._refcount

    def Release(self) -> int:
        """Decrement the count; destroy the object at zero."""
        if self._released:
            raise ComError(E_NOINTERFACE, f"Release on destroyed {type(self).__name__}")
        self._refcount -= 1
        if self._refcount == 0:
            self._released = True
            self.final_release()
        return self._refcount

    def final_release(self) -> None:
        """Hook run exactly once when the last reference is released."""

    # -- introspection ---------------------------------------------------------

    def interfaces(self) -> Tuple[InterfaceDecl, ...]:
        """All implemented interfaces (IUnknown always included)."""
        if IUNKNOWN in self.IMPLEMENTS:
            return self.IMPLEMENTS
        return (IUNKNOWN,) + tuple(self.IMPLEMENTS)

    def supports(self, iid: GUID) -> bool:
        """Whether *iid* is among the implemented interfaces."""
        return any(decl.iid == iid for decl in self.interfaces())

    def find_interface(self, method: str) -> Optional[InterfaceDecl]:
        """The first declared interface exposing *method*, if any."""
        for decl in self.interfaces():
            if decl.has_method(method):
                return decl
        return None

    @property
    def refcount(self) -> int:
        """Current reference count (0 after destruction)."""
        return self._refcount

    @property
    def destroyed(self) -> bool:
        """Whether the final release has run."""
        return self._released

    def __repr__(self) -> str:
        names = ",".join(decl.name for decl in self.interfaces())
        return f"{type(self).__name__}(refs={self._refcount}, interfaces=[{names}])"
