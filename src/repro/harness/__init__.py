"""Experiment harness: scenario builders, runners and report printers.

* :mod:`~repro.harness.scenario` — constructs the paper's reference
  configurations (Figure 1a, Figure 1b) and the §4 demonstration testbed
  (Figure 3 / Table 1) on the simulated substrates.
* :mod:`~repro.harness.experiments` — runs each experiment of the
  DESIGN.md index and returns structured results.
* :mod:`~repro.harness.reporting` — renders result tables/series the way
  EXPERIMENTS.md records them.
"""

from repro.harness.scenario import (
    DemoScenario,
    IntegratedScenario,
    RemoteMonitoringScenario,
    build_demo,
    build_integrated,
    build_remote_monitoring,
)

__all__ = [
    "DemoScenario",
    "IntegratedScenario",
    "RemoteMonitoringScenario",
    "build_demo",
    "build_integrated",
    "build_remote_monitoring",
]
