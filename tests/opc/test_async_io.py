"""Unit tests for OPC asynchronous I/O (IOPCAsyncIO2)."""

import pytest

from repro.com.runtime import ComRuntime
from repro.errors import OpcError
from repro.opc.client import OpcClient
from repro.opc.server import OpcServer

from tests.conftest import make_world


def make_env():
    world = make_world()
    server_sys = world.add_machine("server")
    client_sys = world.add_machine("client")
    server_rt = ComRuntime(server_sys, world.network)
    client_rt = ComRuntime(client_sys, world.network)
    server = OpcServer(server_rt, "OPC.A.1")
    server.namespace.define_simple("a", 5.0)
    server.namespace.define_simple("sp", 0.0, access="read_write")
    return world, server, server_rt.export(server), client_rt, server_rt


def drive(world, generator, duration=5_000.0):
    outcome = {}

    def runner():
        outcome["value"] = yield from generator

    world.kernel.spawn(runner())
    world.run_for(duration)
    return outcome


def test_async_read_completes_via_callback_remote():
    world, server, server_ref, client_rt, _server_rt = make_env()
    client = OpcClient(client_rt, "c")
    completions = []

    def use():
        yield from client.connect_remote(server_ref)
        group = yield from client.add_group("g")
        handles = yield from group.add_items(["a"])
        group.set_callback(lambda name, batch: None)
        transaction = yield from group.async_read(
            handles, lambda tid, values: completions.append((tid, values))
        )
        return transaction

    outcome = drive(world, use())
    assert completions
    tid, values = completions[0]
    assert tid == outcome["value"]
    assert values[0][1] == "a"
    assert values[0][2].value == 5.0


def test_async_write_reports_per_handle_outcomes():
    world, server, server_ref, client_rt, _server_rt = make_env()
    writes_applied = []
    server.namespace.on_write("sp", lambda item, value: writes_applied.append(value))
    client = OpcClient(client_rt, "c")
    completions = []

    def use():
        yield from client.connect_remote(server_ref)
        group = yield from client.add_group("g")
        handles = yield from group.add_items(["sp", "a"])  # "a" is read-only
        group.set_callback(lambda name, batch: None)
        yield from group.async_write(
            [(handles[0], 9.0), (handles[1], 1.0)],
            lambda tid, outcomes: completions.append(outcomes),
        )

    drive(world, use())
    assert writes_applied == [9.0]
    assert completions
    outcomes = dict(completions[0])
    assert list(outcomes.values()).count(True) == 1  # sp succeeded
    assert list(outcomes.values()).count(False) == 1  # read-only "a" failed


def test_async_read_requires_callback():
    world, server, _ref, _client_rt, _server_rt = make_env()
    group = server.AddGroup("g")
    handles = group.AddItems(["a"])
    with pytest.raises(OpcError, match="without a data callback"):
        group.AsyncRead(handles)


def test_async_read_unknown_handle_rejected():
    world, server, _ref, _client_rt, _server_rt = make_env()
    group = server.AddGroup("g")
    group.SetDataCallback(lambda name, batch: None)
    with pytest.raises(OpcError):
        group.AsyncRead([999])


def test_async_read_local_sink_through_client():
    world, server, _ref, _client_rt, server_rt = make_env()
    client = OpcClient(server_rt, "local")
    client.connect_local(server)
    completions = []

    def use():
        group = yield from client.add_group("g")
        handles = yield from group.add_items(["a"])
        group.set_callback(lambda name, batch: None)
        yield from group.async_read(handles, lambda tid, values: completions.append(values))

    drive(world, use())
    assert completions and completions[0][0][2].value == 5.0


def test_transaction_ids_unique_per_read():
    world, server, _ref, _client_rt, _server_rt = make_env()
    group = server.AddGroup("g")
    handles = group.AddItems(["a"])
    group.SetDataCallback(lambda name, batch: None)
    first = group.AsyncRead(handles)
    second = group.AsyncRead(handles)
    assert first != second
