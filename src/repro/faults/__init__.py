"""Fault injection.

§4 of the paper demonstrates continued operation under four failures:
(a) node failure, (b) NT crash (blue screen of death), (c) application
software failure, (d) OFTT middleware failure.  The original authors
pulled plugs and killed processes by hand; here the same faults (plus
hangs, transient crashes, network partitions, NIC and fieldbus failures,
and reboots) are scripted, schedulable and repeatable.

* :mod:`~repro.faults.faultlib` — the fault catalogue.
* :class:`FaultInjector` — applies faults to a scenario environment.
* :class:`Campaign` — a timed schedule of faults with outcome recording.
"""

from repro.faults.faultlib import (
    AppCrash,
    AppHang,
    AsymmetricPartition,
    BlueScreen,
    ClockSkew,
    CrashDuringCheckpoint,
    Fault,
    FieldbusFailure,
    GrayNode,
    HealNetwork,
    LinkDown,
    MessageCorruption,
    MessageDuplication,
    MiddlewareCrash,
    NetworkPartition,
    NicDown,
    NodeFailure,
    NodeReboot,
    ReinstallMiddleware,
    StickyAppCrash,
    TransientAppCrash,
)
from repro.faults.injector import FaultInjector
from repro.faults.campaign import Campaign, InjectionRecord

__all__ = [
    "AppCrash",
    "AppHang",
    "AsymmetricPartition",
    "BlueScreen",
    "Campaign",
    "ClockSkew",
    "CrashDuringCheckpoint",
    "Fault",
    "FaultInjector",
    "FieldbusFailure",
    "GrayNode",
    "HealNetwork",
    "InjectionRecord",
    "LinkDown",
    "MessageCorruption",
    "MessageDuplication",
    "MiddlewareCrash",
    "NetworkPartition",
    "NicDown",
    "NodeFailure",
    "NodeReboot",
    "ReinstallMiddleware",
    "StickyAppCrash",
    "TransientAppCrash",
]
