"""The OFTT middleware toolkit — the paper's primary contribution.

Layout mirrors Figure 2 of the paper:

* :class:`OfttEngine` (:mod:`~repro.core.engine`) — role management,
  failure detection, recovery management, status reporting.
* :class:`ClientFtim` / :class:`ServerFtim` (:mod:`~repro.core.ftim`) —
  the fault tolerance interface modules linked into applications.
* :class:`OfttApi` (:mod:`~repro.core.api`) — ``OFTTInitialize`` and
  friends, the paper's §2.2.2 API surface.
* :class:`MessageDiverter` / :class:`DiverterClient`
  (:mod:`~repro.core.diverter`) — MSMQ-based logical-unit addressing.
* :class:`SystemMonitor` (:mod:`~repro.core.monitor`) — the status
  display component.
* :class:`OfttPair` (:mod:`~repro.core.cluster`) — assembles a
  primary/backup pair with an application, ready for fault injection.
* :class:`ReplicationStrategy` (:mod:`~repro.core.strategy`) — pluggable
  replication modes: the paper's cold-passive pair, LLFT-style
  leader-follower streaming, and log-replay disaster recovery backed by
  the remote :class:`DRSite` (:mod:`~repro.core.drsite`).
"""

from repro.core.config import (
    OfttConfig,
    RecoveryRule,
    RecoveryAction,
    GiveUpPolicy,
    REPLICATION_STRATEGIES,
)
from repro.core.status import ComponentKind, ComponentStatus, StatusReport
from repro.core.heartbeat import HeartbeatMonitor
from repro.core.roles import Role, RoleNegotiator
from repro.core.checkpoint import Checkpoint, CheckpointStore
from repro.core.watchdog import WatchdogTimer
from repro.core.recovery import RecoveryManager
from repro.core.appdriver import NodeContext, OfttApplication
from repro.core.ftim import ClientFtim, ServerFtim
from repro.core.api import OfttApi
from repro.core.engine import OfttEngine
from repro.core.diverter import DiverterClient, MessageDiverter, inbox_queue_name
from repro.core.monitor import SystemMonitor
from repro.core.cluster import OfttPair
from repro.core.strategy import (
    ColdPassiveStrategy,
    LeaderFollowerStrategy,
    LogReplayDRStrategy,
    ReplicationStrategy,
    create_strategy,
)
from repro.core.drsite import DRSite

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "ClientFtim",
    "ColdPassiveStrategy",
    "ComponentKind",
    "ComponentStatus",
    "DRSite",
    "DiverterClient",
    "GiveUpPolicy",
    "HeartbeatMonitor",
    "LeaderFollowerStrategy",
    "LogReplayDRStrategy",
    "MessageDiverter",
    "NodeContext",
    "OfttApi",
    "OfttApplication",
    "OfttConfig",
    "OfttEngine",
    "OfttPair",
    "REPLICATION_STRATEGIES",
    "RecoveryAction",
    "RecoveryManager",
    "RecoveryRule",
    "ReplicationStrategy",
    "Role",
    "RoleNegotiator",
    "ServerFtim",
    "StatusReport",
    "SystemMonitor",
    "WatchdogTimer",
    "create_strategy",
    "inbox_queue_name",
]
