"""The persistent worker pool exercised across jobs profiles.

``make test-par`` runs this module (with the rest of tests/perf) as the
pool's dedicated gate: one interpreter drives the shared pool at jobs 1,
2 and 4, covering spawn-once reuse, resize-respawn, the serial bypass,
chunked dispatch, and byte-identity of results across worker counts.
"""

from __future__ import annotations

import pytest

from repro.perf import executor
from repro.perf.executor import parallel_map, shutdown_pool, warm_pool


def square(value: int) -> int:
    return value * value


@pytest.fixture(autouse=True)
def fresh_pool():
    """Isolate pool state: every test starts and ends pool-less."""
    shutdown_pool()
    yield
    shutdown_pool()


def test_results_identical_across_jobs_profiles():
    items = list(range(23))
    serial = parallel_map(square, items, jobs=1)
    assert serial == [square(item) for item in items]
    for jobs in (2, 4):
        assert parallel_map(square, items, jobs=jobs) == serial


def test_pool_spawns_once_and_is_reused():
    parallel_map(square, [1, 2, 3, 4], jobs=2)
    first = executor._pool
    assert first is not None
    parallel_map(square, [5, 6, 7, 8], jobs=2)
    assert executor._pool is first  # same executor object: no respawn


def test_pool_respawns_when_jobs_changes():
    parallel_map(square, [1, 2, 3, 4], jobs=2)
    first = executor._pool
    parallel_map(square, [1, 2, 3, 4], jobs=4)
    assert executor._pool is not first
    assert executor._pool_workers == 4
    # The replacement pool is itself persistent.
    again = executor._pool
    parallel_map(square, [9, 10, 11, 12], jobs=4)
    assert executor._pool is again


def test_serial_path_never_touches_the_pool():
    parallel_map(square, list(range(10)), jobs=1)
    assert executor._pool is None


def test_single_task_bypasses_the_pool():
    assert parallel_map(square, [6], jobs=4) == [36]
    assert executor._pool is None


def test_empty_input_stays_trivial():
    assert parallel_map(square, [], jobs=4) == []
    assert executor._pool is None


def test_warm_pool_prespawns_and_reports_workers():
    assert warm_pool(1) == 1
    assert executor._pool is None  # serial warm is a no-op
    assert warm_pool(2) == 2
    warmed = executor._pool
    assert warmed is not None
    parallel_map(square, [1, 2, 3, 4], jobs=2)
    assert executor._pool is warmed  # the warmed pool carried the work


def test_chunked_dispatch_preserves_order():
    items = list(range(37))
    expected = [square(item) for item in items]
    for chunksize in (None, 1, 5, 100):
        assert parallel_map(square, items, jobs=2, chunksize=chunksize) == expected


def test_shutdown_pool_is_idempotent_and_respawns_clean():
    parallel_map(square, [1, 2, 3, 4], jobs=2)
    shutdown_pool()
    shutdown_pool()
    assert executor._pool is None
    assert parallel_map(square, [2, 3], jobs=2) == [4, 9]
