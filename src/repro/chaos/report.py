"""Chaos-campaign reporters: human text and machine JSON.

Mirrors :mod:`repro.replay.report`: the JSON schema (``repro.chaos/v1``)
is a stability contract — extend it by adding keys, never by renaming or
removing them.  The document contains no wall-clock timestamps and every
float is rounded at source, so two same-seed campaigns serialize to
byte-identical JSON (asserted by a replay subject and a test).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.chaos.minimize import MinimizationResult
from repro.chaos.runner import RunResult

JSON_SCHEMA = "repro.chaos/v1"


def summarize(results: Sequence[RunResult]) -> Dict[str, int]:
    """Aggregate counts (always the same key set)."""
    violations = sum(len(result.violations) for result in results)
    return {
        "runs": len(results),
        "passed": sum(1 for result in results if result.passed),
        "failed": sum(1 for result in results if not result.passed),
        "violations": violations,
        "faults_injected": sum(len(result.schedule.entries) for result in results),
    }


def render_json(
    results: Sequence[RunResult],
    minimization: Optional[MinimizationResult] = None,
    mode: str = "campaign",
) -> str:
    """Stable JSON document (sorted keys, newline-terminated)."""
    document = {
        "schema": JSON_SCHEMA,
        "mode": mode,
        "summary": summarize(results),
        "runs": [result.as_wire() for result in results],
        "minimization": minimization.as_wire() if minimization is not None else None,
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _render_run(result: RunResult) -> List[str]:
    status = "ok" if result.passed else "VIOLATED"
    label = f"seed {result.seed}, {len(result.schedule.entries)} fault(s), horizon {result.schedule.horizon:.0f}ms"
    if result.sabotage:
        label += f", sabotage={result.sabotage}"
    lines = [f"[{status}] {label}"]
    for entry in result.schedule.sorted_entries():
        lines.append(f"    @{entry.at:>9.1f}  {entry.kind} {entry.params}")
    for violation in result.violations:
        lines.append(f"  !! {violation.invariant} at {violation.time:.1f}ms: {violation.detail}")
    return lines


def render_text(
    results: Sequence[RunResult],
    minimization: Optional[MinimizationResult] = None,
) -> str:
    """One block per run, failing schedules expanded, summary trailer."""
    lines: List[str] = []
    for result in results:
        if result.passed:
            lines.append(_render_run(result)[0])
        else:
            lines.extend(_render_run(result))
    if minimization is not None:
        lines.append(
            f"minimized '{minimization.invariant}' reproducer: "
            f"{minimization.original_size} -> {minimization.minimal_size} fault(s) "
            f"in {minimization.runs_used} run(s)"
        )
        for entry in minimization.schedule.sorted_entries():
            lines.append(f"    @{entry.at:>9.1f}  {entry.kind} {entry.params}")
    counts = summarize(results)
    lines.append(
        f"{counts['runs']} run(s): {counts['passed']} ok, {counts['failed']} violated "
        f"({counts['violations']} violation(s), {counts['faults_injected']} fault(s) injected)"
    )
    return "\n".join(lines)
