"""Planted LIFE004: trace subscription never released on teardown."""


class LiveView:
    def __init__(self, trace):
        self.trace = trace
        self.count = 0

    def attach(self):
        self.trace.subscribe(self._on_record)  # expect: LIFE004

    def stop(self):
        self.count = 0  # detaches nothing

    def _on_record(self, record):
        self.count += 1
