"""The Call Track application (§4).

"The application keeps track of the usage of a simulated small office
telephone system ...  Numbers of busy lines are displayed in the
histogram.  The application is preferred to be fault tolerant since it
records the past and present states of the system."

Call events arrive through the Message Diverter inbox queue (the
telephone simulator on the test PC is the external sender).  The state —
the busy-line histogram, per-line usage, call/blocked counters, and the
last processed event sequence — lives in the process address space and
is checkpointed through the client FTIM:

* ``OFTTSelSave`` designates exactly the state variables (level-2 API).
* ``OFTTSave`` fires on every *end* event (level-3, event-based
  checkpointing), so completed calls are never lost on failover.

Duplicate deliveries (diverter redelivery across a switchover) are
suppressed with the ``seen_floor``/recent-set discipline; that logic is
itself part of the checkpointed state so it survives failover too.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.api import OfttApi
from repro.core.appdriver import OfttApplication
from repro.core.diverter import inbox_queue_name
from repro.msq.queue import QueueMessage
from repro.nt.memory import copy_variables
from repro.nt.process import NTProcess
from repro.simnet.events import Timeout

#: Variables designated via OFTTSelSave (everything the app must not lose).
STATE_VARS = (
    "histogram",
    "line_seconds",
    "total_calls",
    "blocked_calls",
    "events_processed",
    "duplicates_dropped",
    "seen_floor",
    "seen_recent",
    "last_event_time",
)


class CallTrackApp(OfttApplication):
    """The protected Call Track application (one copy per node)."""

    name = "calltrack"

    def __init__(self, unit: str = "calltrack", lines: int = 5, save_on_end: bool = True) -> None:
        super().__init__()
        self.unit = unit
        self.lines = lines
        self.save_on_end = save_on_end
        self.api: Optional[OfttApi] = None

    # -- lifecycle (engine-driven) ----------------------------------------------

    def launch(self, image: Optional[Dict[str, Any]]) -> NTProcess:
        context = self.context
        assert context is not None, "install() must run before launch()"
        process = context.system.create_process(self.name)
        self.process = process
        self._init_state(process, image)

        # The main application thread: periodically refreshes the
        # display model (histogram rendering is derived state).
        def main_body(_thread):
            def loop():
                while True:
                    yield Timeout(500.0)
                    self._refresh_display()

            return loop()

        process.create_thread("main", body=main_body, dynamic=False)
        process.start()

        # Link the FTIM (client variant: this app is stateful).
        api = OfttApi(context, self.name, process)
        api.OFTTInitialize(stateful=True)
        api.OFTTSelSave("globals", list(STATE_VARS))
        self.api = api

        # Consume the diverter inbox for our logical unit.
        queue = context.qmgr.create_queue(inbox_queue_name(self.unit), journal=True)
        # Released by the process-exit hook on the next line — a dynamic
        # unsubscribe path the static release search cannot see.
        queue.subscribe(self._on_queue_message)  # oftt-lint: ok[leaked-subscription]
        process.on_exit.append(lambda _p: queue.unsubscribe())

        self.launch_count += 1
        return process

    def _init_state(self, process: NTProcess, image: Optional[Dict[str, Any]]) -> None:
        space = process.address_space
        defaults: Dict[str, Any] = {
            "histogram": {str(k): 0 for k in range(self.lines + 1)},
            "line_seconds": {str(k): 0.0 for k in range(self.lines)},
            "total_calls": 0,
            "blocked_calls": 0,
            "events_processed": 0,
            "duplicates_dropped": 0,
            "seen_floor": 0,
            "seen_recent": [],
            "last_event_time": 0.0,
            "display": "",
        }
        # Deep copy: seen_recent is a list the app appends to; a shallow
        # copy would alias it into the checkpoint held by the engine.
        restored = copy_variables(image.get("globals", {})) if image else {}
        for var, default in defaults.items():
            space.write(var, restored.get(var, default))

    # -- event processing --------------------------------------------------------

    def _on_queue_message(self, message: QueueMessage) -> None:
        if self.process is None or not self.process.alive:
            return
        self.process_event(message.body)

    def process_event(self, event: Dict[str, Any]) -> bool:
        """Apply one telephone event (wire dict).  Returns False for dups."""
        space = self.process.address_space
        sequence = int(event["sequence"])
        seen_floor = space.read("seen_floor")
        seen_recent = space.read("seen_recent")
        if sequence <= seen_floor or sequence in seen_recent:
            space.write("duplicates_dropped", space.read("duplicates_dropped") + 1)
            return False
        seen_recent = sorted(set(seen_recent) | {sequence})
        # Compact: advance the floor across any contiguous prefix.
        while seen_recent and seen_recent[0] == seen_floor + 1:
            seen_floor += 1
            seen_recent.pop(0)
        space.write("seen_floor", seen_floor)
        space.write("seen_recent", seen_recent)

        histogram = space.read("histogram")
        histogram[str(event["busy_lines"])] = histogram.get(str(event["busy_lines"]), 0) + 1
        space.write("histogram", histogram)
        if event["kind"] == "start":
            space.write("total_calls", space.read("total_calls") + 1)
        elif event["kind"] == "blocked":
            space.write("blocked_calls", space.read("blocked_calls") + 1)
        elif event["kind"] == "end" and event["line"] >= 0:
            line_seconds = space.read("line_seconds")
            key = str(event["line"])
            line_seconds[key] = line_seconds.get(key, 0.0) + 1.0
            space.write("line_seconds", line_seconds)
        space.write("events_processed", space.read("events_processed") + 1)
        space.write("last_event_time", float(event["time"]))

        if self.save_on_end and event["kind"] == "end" and self.api is not None:
            # Level-3 event-based checkpointing: completed calls are
            # durable the moment they finish.
            self.api.OFTTSave()
        return True

    # -- display ---------------------------------------------------------------------

    def _refresh_display(self) -> None:
        space = self.process.address_space
        space.write("display", self.render_histogram())

    def render_histogram(self, width: int = 40) -> str:
        """ASCII rendering of the busy-lines histogram (the demo's GUI)."""
        space = self.process.address_space
        histogram: Dict[str, int] = space.read("histogram")
        total = sum(histogram.values()) or 1
        lines = [f"Busy-line histogram ({space.read('events_processed')} events)"]
        for busy in range(self.lines + 1):
            count = histogram.get(str(busy), 0)
            bar = "#" * int(round(width * count / total))
            lines.append(f"{busy} busy |{bar:<{width}}| {count}")
        return "\n".join(lines)

    # -- state accessors (tests/benches) ------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """Snapshot of the tracked state (empty dict when not running)."""
        if self.process is None:
            return {}
        space = self.process.address_space
        return {var: space.read(var) for var in STATE_VARS}

    def histogram(self) -> Dict[int, int]:
        """The busy-line histogram with integer keys."""
        if self.process is None:
            return {}
        return {int(k): v for k, v in self.process.address_space.read("histogram").items()}

    def events_processed(self) -> int:
        """How many distinct events this copy has applied."""
        if self.process is None:
            return 0
        return self.process.address_space.read("events_processed")
