"""The Calling History generator (Table 1, test PC).

Listens to the telephone simulator and keeps the authoritative event
history — the ground truth a recovered Call Track application is compared
against.  It also derives the same statistics the application tracks, so
experiments can quantify exactly how much state a failover lost (bounded
by the checkpoint window) and verify nothing was double-counted.
"""

from __future__ import annotations

from typing import Dict, List

from repro.devices.telephone import CallEvent, TelephoneSystem


class CallingHistoryGenerator:
    """Ground-truth recorder attached to a :class:`TelephoneSystem`."""

    def __init__(self, telephone: TelephoneSystem) -> None:
        self.telephone = telephone
        self.history: List[CallEvent] = []
        telephone.add_listener(self.history.append)

    @property
    def event_count(self) -> int:
        """Total events generated so far."""
        return len(self.history)

    def histogram(self) -> Dict[int, int]:
        """Ground-truth busy-line histogram over all events."""
        result: Dict[int, int] = {k: 0 for k in range(self.telephone.line_count + 1)}
        for event in self.history:
            result[event.busy_lines] = result.get(event.busy_lines, 0) + 1
        return result

    def histogram_up_to(self, sequence: int) -> Dict[int, int]:
        """Histogram over events with sequence <= *sequence*."""
        result: Dict[int, int] = {k: 0 for k in range(self.telephone.line_count + 1)}
        for event in self.history:
            if event.sequence <= sequence:
                result[event.busy_lines] = result.get(event.busy_lines, 0) + 1
        return result

    def counts(self) -> Dict[str, int]:
        """Ground-truth call statistics."""
        return {
            "total_calls": sum(1 for e in self.history if e.kind == "start"),
            "blocked_calls": sum(1 for e in self.history if e.kind == "blocked"),
            "completed_calls": sum(1 for e in self.history if e.kind == "end"),
            "events": len(self.history),
        }

    def max_sequence(self) -> int:
        """Highest event sequence generated (0 when none)."""
        return self.history[-1].sequence if self.history else 0

    def replay_into(self, app) -> int:
        """Replay the full history into a Call Track copy.

        Returns how many events the app actually applied (duplicates of
        already-processed events are dropped by its dedupe logic), so a
        recovered application can be audited: after replay its state must
        equal the ground truth exactly.
        """
        applied = 0
        for event in self.history:
            if app.process_event(event.as_wire()):
                applied += 1
        return applied

    def __repr__(self) -> str:
        return f"CallingHistoryGenerator(events={len(self.history)})"
