"""Replay-check reporters: human text and machine JSON.

Mirrors :mod:`repro.analysis.report`: the JSON schema
(``repro.replay/v1``) is a stability contract — extend it by adding
keys, never by renaming or removing them.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Union

from repro.replay.runner import ReplayResult, RoundTripResult

JSON_SCHEMA = "repro.replay/v1"

Result = Union[ReplayResult, RoundTripResult]


def outcome_counts(results: Sequence[Result]) -> Dict[str, int]:
    """``{"ok": n, "diverged": n}`` (always both keys)."""
    ok = sum(1 for result in results if result.ok)
    return {"ok": ok, "diverged": len(results) - ok}


def _render_one(result: Result) -> List[str]:
    status = "ok" if result.ok else "DIVERGED"
    if isinstance(result, ReplayResult):
        lines = [
            f"[{status}] {result.subject} (seed {result.seed}): "
            f"{result.events} events, fingerprint {result.fingerprint_first}"
        ]
        if result.divergence is not None:
            lines.extend("  " + line for line in result.divergence.render().splitlines())
        elif result.payload_mismatch is not None:
            lines.append("  trace identical but result payloads differ:")
            lines.append(f"    run 1: {result.payload_mismatch['first']!r}")
            lines.append(f"    run 2: {result.payload_mismatch['second']!r}")
        return lines
    lines = [
        f"[{status}] {result.subject} (seed {result.seed}): "
        f"app {result.app_name}, image {result.image_bytes} bytes, {len(result.regions)} region(s)"
    ]
    if not result.ok:
        lines.append(f"  {result.mismatch}")
    return lines


def render_text(results: Sequence[Result]) -> str:
    """One block per subject plus a summary trailer."""
    lines: List[str] = []
    for result in results:
        lines.extend(_render_one(result))
    counts = outcome_counts(results)
    lines.append(f"{len(results)} subject(s): {counts['ok']} ok, {counts['diverged']} diverged")
    return "\n".join(lines)


def render_json(results: Sequence[Result]) -> str:
    """Stable JSON document (sorted keys, newline-terminated)."""
    document = {
        "schema": JSON_SCHEMA,
        "counts": outcome_counts(results),
        "results": [result.as_wire() for result in results],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
