"""Unit tests for watchdog timers and the recovery manager."""

import pytest

from repro.core.config import OfttConfig, RecoveryAction, RecoveryRule
from repro.core.recovery import RecoveryManager
from repro.core.watchdog import WatchdogTimer
from repro.errors import WatchdogError
from repro.simnet.kernel import SimKernel


def make_watchdog():
    kernel = SimKernel()
    expirations = []
    watchdog = WatchdogTimer(kernel, "wd", "app", lambda w: expirations.append(kernel.now))
    return kernel, watchdog, expirations


# -- watchdog ------------------------------------------------------------------


def test_watchdog_fires_without_reset():
    kernel, watchdog, expirations = make_watchdog()
    watchdog.set(100.0)
    kernel.run(until=500.0)
    assert expirations == [100.0]
    assert watchdog.expirations == 1
    assert not watchdog.armed  # one-shot until re-set


def test_watchdog_reset_defers_expiry():
    kernel, watchdog, expirations = make_watchdog()
    watchdog.set(100.0)
    for t in (50.0, 100.0, 150.0):
        kernel.schedule(t - kernel.now, watchdog.reset)
    kernel.run(until=170.0)
    assert expirations == []
    kernel.run(until=500.0)
    assert expirations == [250.0]
    assert watchdog.resets == 3


def test_watchdog_reset_before_set_rejected():
    kernel, watchdog, _expirations = make_watchdog()
    with pytest.raises(WatchdogError):
        watchdog.reset()


def test_watchdog_invalid_period_rejected():
    kernel, watchdog, _expirations = make_watchdog()
    with pytest.raises(WatchdogError):
        watchdog.set(0.0)


def test_watchdog_stop_disarms():
    kernel, watchdog, expirations = make_watchdog()
    watchdog.set(100.0)
    watchdog.stop()
    kernel.run(until=1_000.0)
    assert expirations == []
    watchdog.set(100.0)  # can be rearmed after stop
    kernel.run(until=2_000.0)
    assert len(expirations) == 1


def test_watchdog_delete_is_final():
    kernel, watchdog, expirations = make_watchdog()
    watchdog.set(100.0)
    watchdog.delete()
    kernel.run(until=1_000.0)
    assert expirations == []
    with pytest.raises(WatchdogError):
        watchdog.set(100.0)
    with pytest.raises(WatchdogError):
        watchdog.reset()
    with pytest.raises(WatchdogError):
        watchdog.delete()


# -- recovery manager -------------------------------------------------------------


def make_recovery(rule):
    kernel = SimKernel()
    config = OfttConfig().with_rule("app", rule)
    return kernel, RecoveryManager(kernel, config)


def test_transient_failures_restart_locally_up_to_limit():
    kernel, recovery = make_recovery(RecoveryRule(max_local_restarts=2, transient_window=10_000.0))
    first = recovery.on_failure("app", "crash")
    second = recovery.on_failure("app", "crash")
    third = recovery.on_failure("app", "crash")
    assert first.action is RecoveryAction.LOCAL_RESTART
    assert first.restart_number == 1
    assert second.action is RecoveryAction.LOCAL_RESTART
    assert third.action is RecoveryAction.FAILOVER


def test_window_expiry_resets_budget():
    kernel, recovery = make_recovery(RecoveryRule(max_local_restarts=1, transient_window=1_000.0))
    assert recovery.on_failure("app", "x").action is RecoveryAction.LOCAL_RESTART
    kernel.run(until=2_000.0)  # window passes
    assert recovery.on_failure("app", "x").action is RecoveryAction.LOCAL_RESTART
    assert recovery.failure_count("app") == 1


def test_always_failover_rule():
    kernel, recovery = make_recovery(RecoveryRule.always_failover())
    assert recovery.on_failure("app", "x").action is RecoveryAction.FAILOVER


def test_ignore_escalation():
    kernel, recovery = make_recovery(
        RecoveryRule(max_local_restarts=0, escalation=RecoveryAction.IGNORE)
    )
    assert recovery.on_failure("app", "x").action is RecoveryAction.IGNORE


def test_clear_forgets_history():
    kernel, recovery = make_recovery(RecoveryRule(max_local_restarts=1))
    recovery.on_failure("app", "x")
    recovery.clear("app")
    assert recovery.failure_count("app") == 0
    assert recovery.on_failure("app", "x").action is RecoveryAction.LOCAL_RESTART


def test_dynamic_rule_change():
    kernel, recovery = make_recovery(RecoveryRule(max_local_restarts=5))
    recovery.set_rule("app", RecoveryRule.always_failover())
    assert recovery.on_failure("app", "x").action is RecoveryAction.FAILOVER


def test_decisions_recorded():
    kernel, recovery = make_recovery(RecoveryRule(max_local_restarts=1))
    recovery.on_failure("app", "first")
    recovery.on_failure("app", "second")
    assert len(recovery.decisions) == 2
    assert "exhausted" in recovery.decisions[1].reason


def test_decisions_log_is_ring_buffered():
    kernel = SimKernel()
    config = OfttConfig(decision_log_limit=3).with_rule("app", RecoveryRule.local_only())
    recovery = RecoveryManager(kernel, config)
    for index in range(8):
        recovery.on_failure("app", f"crash-{index}")
    assert len(recovery.decisions) == 3
    assert recovery.decisions[-1].reason == "crash-7"


def test_failure_exactly_at_window_boundary_still_counts():
    # A failure stamped exactly at ``now - transient_window`` is inside
    # the window (``t >= cutoff``): the budget math is inclusive.
    kernel, recovery = make_recovery(
        RecoveryRule(max_local_restarts=1, transient_window=1_000.0)
    )
    assert recovery.on_failure("app", "x").action is RecoveryAction.LOCAL_RESTART
    kernel.run(until=1_000.0)  # now - window == the failure's timestamp
    assert recovery.failure_count("app") == 1
    assert recovery.on_failure("app", "x").action is RecoveryAction.FAILOVER


def test_failure_count_prunes_stale_history():
    kernel, recovery = make_recovery(
        RecoveryRule(max_local_restarts=3, transient_window=1_000.0)
    )
    recovery.on_failure("app", "x")
    recovery.on_failure("app", "x")
    assert recovery.failure_count("app") == 2
    kernel.run(until=1_000.1)  # both now strictly older than the window
    assert recovery.failure_count("app") == 0
