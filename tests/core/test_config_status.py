"""Unit tests for OFTT configuration and the status model."""

import pytest

from repro.core.config import (
    GiveUpPolicy,
    OfttConfig,
    RecoveryAction,
    RecoveryRule,
    replace_config,
)
from repro.core.status import ComponentKind, ComponentStatus, StatusReport


def test_default_config_validates():
    OfttConfig().validate()


def test_heartbeat_timeout_must_exceed_period():
    with pytest.raises(ValueError):
        replace_config(OfttConfig(), heartbeat_timeout=50.0, heartbeat_period=100.0)


def test_peer_timeout_must_exceed_period():
    with pytest.raises(ValueError):
        replace_config(OfttConfig(), peer_heartbeat_timeout=10.0)


def test_other_validations():
    with pytest.raises(ValueError):
        replace_config(OfttConfig(), checkpoint_period=0.0)
    with pytest.raises(ValueError):
        replace_config(OfttConfig(), startup_retries=-1)
    with pytest.raises(ValueError):
        replace_config(OfttConfig(), checkpoint_history=0)


def test_rule_lookup_falls_back_to_default():
    config = OfttConfig()
    rule = RecoveryRule(max_local_restarts=9)
    config = config.with_rule("special", rule)
    assert config.rule_for("special") is rule
    assert config.rule_for("other") is config.default_rule


def test_with_rule_does_not_mutate_original():
    config = OfttConfig()
    updated = config.with_rule("c", RecoveryRule())
    assert "c" in updated.recovery_rules
    assert "c" not in config.recovery_rules


def test_rule_presets():
    assert RecoveryRule.always_failover().max_local_restarts == 0
    local = RecoveryRule.local_only()
    assert local.escalation is RecoveryAction.IGNORE
    assert local.max_local_restarts >= 1_000_000


def test_giveup_policy_enum():
    assert GiveUpPolicy.SHUTDOWN.value == "shutdown"
    assert GiveUpPolicy.GO_PRIMARY.value == "go-primary"


def test_status_report_wire_roundtrip():
    report = StatusReport(
        node="n1",
        component="app",
        kind=ComponentKind.APPLICATION,
        status=ComponentStatus.RECOVERING,
        role="primary",
        time=12.5,
        detail={"restarts": 2},
    )
    assert StatusReport.from_wire(report.as_wire()) == report


def test_status_health_classification():
    assert ComponentStatus.RUNNING.is_healthy
    assert ComponentStatus.STARTING.is_healthy
    assert ComponentStatus.RECOVERING.is_healthy
    assert not ComponentStatus.FAILED.is_healthy
    assert not ComponentStatus.SUSPECTED.is_healthy
    assert not ComponentStatus.STOPPED.is_healthy
