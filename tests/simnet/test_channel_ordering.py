"""Tests for TCP-like per-channel frame ordering.

ORPC and the MSMQ transport ride connection-oriented protocols, so frames
between the same (source, dest, port) must never overtake each other even
under link jitter; different channels stay independent.
"""

from repro.simnet.kernel import SimKernel
from repro.simnet.network import Network
from repro.simnet.random import RngStreams


def build(jitter=5.0):
    kernel = SimKernel()
    network = Network(kernel, RngStreams(3))
    network.add_link("lan", latency=1.0, jitter=jitter)
    for name in ("a", "b"):
        network.add_node(name)
        network.attach(name, "lan")
    return kernel, network


def test_same_channel_frames_never_reorder():
    kernel, network = build(jitter=5.0)
    received = []
    network.nodes["b"].bind("svc", lambda m: received.append(m.payload))
    for index in range(50):
        network.send("a", "b", "svc", index)
    kernel.run()
    assert received == list(range(50))


def test_ordering_holds_for_staggered_sends():
    kernel, network = build(jitter=10.0)
    received = []
    network.nodes["b"].bind("svc", lambda m: received.append(m.payload))
    for index in range(20):
        kernel.schedule(index * 0.5, network.send, "a", "b", "svc", index)
    kernel.run()
    assert received == list(range(20))


def test_different_ports_are_independent_channels():
    kernel, network = build(jitter=0.0)
    received = []
    network.nodes["b"].bind("fast", lambda m: received.append(m.payload))
    network.nodes["b"].bind("slow", lambda m: received.append(m.payload))
    # Force the slow channel's clock far into the future with a big frame
    # on a bandwidth-limited link.
    network.links["lan"].bandwidth = 10.0  # bytes/ms
    network.send("a", "b", "slow", "bulk", size=1_000)  # ~100 ms
    network.send("a", "b", "fast", "ping", size=10)  # ~2 ms
    kernel.run()
    assert received == ["ping", "bulk"]  # fast channel not held back


def test_oneway_and_twoway_calls_do_not_race():
    """The bug this feature fixed: a one-way DCOM registration followed
    immediately by a two-way call on the same connection must arrive in
    order, even with jitter larger than the latency."""
    from repro.com.runtime import ComRuntime
    from repro.opc.client import OpcClient
    from repro.opc.server import OpcServer

    from tests.conftest import make_world

    for seed in range(5):
        world = make_world(seed=seed)
        world.add_machine("server")
        world.add_machine("client")
        world.network.links["lan0"].jitter = 2.0  # >> latency of 0.5
        server_rt = ComRuntime(world.systems["server"], world.network)
        client_rt = ComRuntime(world.systems["client"], world.network)
        server = OpcServer(server_rt, "OPC.O.1")
        server.namespace.define_simple("a", 1.0)
        server_ref = server_rt.export(server)
        client = OpcClient(client_rt, "c")
        completions = []

        def use():
            yield from client.connect_remote(server_ref)
            group = yield from client.add_group("g")
            handles = yield from group.add_items(["a"])
            group.set_callback(lambda name, batch: None)  # one-way register
            yield from group.async_read(handles, lambda tid, values: completions.append(tid))

        world.kernel.spawn(use())
        world.run_for(5_000.0)
        assert completions, f"async read raced the registration (seed {seed})"
