"""Per-node COM runtime: class registration and activation.

One :class:`ComRuntime` runs on each NT machine.  It keeps the class table
(backed by the node's NT registry, the way ``regsvr32`` would record it),
serves ``CoCreateInstance`` locally, and handles remote activation
requests arriving through the node's :class:`~repro.com.dcom.DcomExporter`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.com.dcom import DcomExporter, Proxy
from repro.com.factory import ClassFactory
from repro.com.guids import GUID, guid_from_name
from repro.com.hresult import REGDB_E_CLASSNOTREG
from repro.com.marshal import ObjRef
from repro.com.object import ComObject
from repro.errors import ComError
from repro.nt.process import NTProcess
from repro.nt.system import NTSystem
from repro.simnet.events import Event
from repro.simnet.network import Network


class ComRuntime:
    """COM library services for one node."""

    def __init__(self, system: NTSystem, network: Network, rpc_timeout: float = 2000.0) -> None:
        self.system = system
        self.network = network
        self.exporter = DcomExporter(system.kernel, network, system.node, rpc_timeout=rpc_timeout)
        self.exporter.activation_handler = self._activate
        self._classes: Dict[GUID, ClassFactory] = {}
        self._progids: Dict[str, GUID] = {}

    # -- registration -----------------------------------------------------------

    def register_class(
        self,
        progid: str,
        producer: Callable[..., ComObject],
        clsid: Optional[GUID] = None,
    ) -> GUID:
        """Register a coclass under *progid* (e.g. ``"OFTT.Engine"``).

        Returns the CLSID.  The registration is mirrored into the node's
        NT registry under ``CLSID\\{...}``.
        """
        clsid = clsid or guid_from_name(f"CLSID:{progid}")
        factory = ClassFactory(clsid, producer, server_name=progid)
        self._classes[clsid] = factory
        self._progids[progid] = clsid
        registry = self.system.registry
        registry.set_value(f"CLSID\\{clsid}", "ProgID", progid)
        registry.set_value(f"CLSID\\{clsid}\\InprocServer32", "Default", f"{progid}.dll")
        registry.set_value(f"ProgID\\{progid}", "CLSID", str(clsid))
        return clsid

    def unregister_class(self, progid: str) -> None:
        """Remove a registration (regsvr32 /u)."""
        clsid = self._progids.pop(progid, None)
        if clsid is None:
            raise ComError(REGDB_E_CLASSNOTREG, f"{progid} not registered")
        self._classes.pop(clsid, None)
        self.system.registry.delete_key(f"CLSID\\{clsid}")
        self.system.registry.delete_key(f"ProgID\\{progid}")

    def clsid_from_progid(self, progid: str) -> GUID:
        """CLSIDFromProgID."""
        clsid = self._progids.get(progid)
        if clsid is None:
            raise ComError(REGDB_E_CLASSNOTREG, f"{progid} not registered")
        return clsid

    def factory(self, clsid: GUID) -> ClassFactory:
        """CoGetClassObject."""
        factory = self._classes.get(clsid)
        if factory is None:
            raise ComError(REGDB_E_CLASSNOTREG, f"class {clsid} not registered")
        return factory

    # -- activation ---------------------------------------------------------------

    def create_instance(self, progid_or_clsid: Any, *args: Any, **kwargs: Any) -> ComObject:
        """CoCreateInstance for a local (in-proc) server."""
        clsid = (
            progid_or_clsid
            if isinstance(progid_or_clsid, GUID)
            else self.clsid_from_progid(progid_or_clsid)
        )
        return self.factory(clsid).CreateInstance(*args, **kwargs)

    def export(self, obj: ComObject, label: str = "", process: Optional[NTProcess] = None) -> ObjRef:
        """Expose a local object for remote callers."""
        return self.exporter.export(obj, label=label, process=process)

    def proxy_for(self, objref: ObjRef) -> Proxy:
        """Build a proxy usable from this node."""
        return self.exporter.proxy_for(objref)

    def remote_activate(self, node_name: str, progid: str, timeout: Optional[float] = None) -> Event:
        """CoCreateInstanceEx against a remote machine.

        Fires an RpcResult whose value is the new object's ObjRef.
        """
        return self.exporter.activate(node_name, progid, timeout=timeout)

    def _activate(self, progid: str) -> ObjRef:
        instance = self.create_instance(progid)
        return self.export(instance, label=progid)

    def __repr__(self) -> str:
        return f"ComRuntime({self.system.node.name}, classes={sorted(self._progids)})"
