"""Unit tests for the OFTT engine."""

import pytest

from repro.core.config import OfttConfig, RecoveryRule, replace_config
from repro.core.roles import Role
from repro.core.status import ComponentStatus
from repro.errors import OfttError, WatchdogError

from tests.core.util import make_pair_world


def started(seed=0, config=None, **kwargs):
    world = make_pair_world(seed=seed, config=config, **kwargs)
    world.start()
    return world


def test_negotiation_yields_one_primary_one_backup():
    world = started()
    assert {world.pair.engines[n].role for n in ("alpha", "beta")} == {Role.PRIMARY, Role.BACKUP}
    assert world.pair.apps[world.primary].running
    assert not world.pair.apps[world.backup].running


def test_preferred_primary_honoured():
    world = make_pair_world(preferred_primary="beta")
    world.start()
    assert world.primary == "beta"


def test_engine_runs_as_separate_process():
    world = started()
    for name in ("alpha", "beta"):
        engine = world.pair.engines[name]
        process = world.systems[name].find_process("oftt-engine")
        assert process is engine.process
        assert process.alive


def test_checkpoints_mirrored_to_peer_and_acked():
    world = started()
    world.run_for(5_000.0)
    primary_engine = world.pair.engines[world.primary]
    backup_engine = world.pair.engines[world.backup]
    assert primary_engine.local_store.latest("synthetic") is not None
    assert backup_engine.peer_store.latest("synthetic") is not None
    assert primary_engine.acked_sequence >= backup_engine.peer_store.latest("synthetic").sequence - 1
    assert backup_engine.stats()["checkpoints_rx"] >= 4


def test_peer_loss_promotes_backup_with_state():
    world = started()
    world.run_for(5_000.0)
    old_primary = world.primary
    old_app = world.pair.apps[old_primary]
    ticks_before = old_app.ticks()
    world.systems[old_primary].power_off()
    world.run_for(2_000.0)
    new_primary = world.primary
    assert new_primary != old_primary
    new_app = world.pair.apps[new_primary]
    assert new_app.running
    # Restored state is at most one checkpoint period behind.
    restored = new_app.process.address_space.read("ticks")
    assert restored >= ticks_before - 25


def test_primary_survives_backup_loss_degraded():
    world = started()
    world.run_for(3_000.0)
    backup = world.backup
    primary = world.primary
    world.systems[backup].power_off()
    world.run_for(2_000.0)
    engine = world.pair.engines[primary]
    assert engine.role is Role.PRIMARY
    assert engine.degraded
    assert world.pair.apps[primary].running


def test_peer_return_clears_degraded():
    world = started()
    world.run_for(3_000.0)
    backup = world.backup
    world.systems[backup].power_off()
    world.run_for(2_000.0)
    world.systems[backup].reboot()
    world.run_for(2_000.0)
    world.pair.reinstall_node(backup)
    world.run_for(5_000.0)
    primary_engine = world.pair.engines[world.primary]
    assert not primary_engine.degraded
    assert world.pair.engines[backup].role is Role.BACKUP


def test_app_crash_triggers_local_restart_with_checkpoint():
    world = started()
    world.run_for(5_000.0)
    primary = world.primary
    app = world.pair.apps[primary]
    ticks_before = app.ticks()
    launches_before = app.launch_count
    app.process.kill()
    world.run_for(1_000.0)
    assert app.launch_count == launches_before + 1
    assert world.primary == primary  # no failover for a first transient
    assert app.ticks() >= ticks_before - 25
    assert world.pair.engines[primary].local_restart_count == 1


def test_repeated_crashes_escalate_to_failover():
    config = OfttConfig().with_rule("synthetic", RecoveryRule(max_local_restarts=1, restart_delay=50.0))
    world = started(config=config)
    world.run_for(5_000.0)
    first_primary = world.primary
    app = world.pair.apps[first_primary]
    app.process.kill()  # transient 1 -> local restart
    world.run_for(1_000.0)
    assert world.primary == first_primary
    app.process.kill()  # transient 2 -> escalate
    world.run_for(3_000.0)
    assert world.primary != first_primary
    assert world.pair.apps[world.primary].running


def test_request_switchover_hands_over():
    world = started()
    world.run_for(3_000.0)
    first_primary = world.primary
    world.pair.engines[first_primary].request_switchover("operator request")
    world.run_for(2_000.0)
    assert world.primary != first_primary
    assert world.pair.apps[world.primary].running
    assert not world.pair.apps[first_primary].running


def test_switchover_from_backup_rejected():
    world = started()
    with pytest.raises(OfttError):
        world.pair.engines[world.backup].request_switchover("nope")


def test_switchover_without_peer_restarts_locally():
    world = started()
    world.run_for(3_000.0)
    backup = world.backup
    primary = world.primary
    world.systems[backup].power_off()
    world.run_for(2_000.0)
    engine = world.pair.engines[primary]
    app = world.pair.apps[primary]
    launches = app.launch_count
    # Drive the app into repeated failure: switchover is impossible, so
    # the engine must keep it running locally.
    app.process.kill()
    world.run_for(2_000.0)
    app.process.kill()
    world.run_for(3_000.0)
    assert app.running
    assert app.launch_count > launches
    assert engine.role is Role.PRIMARY


def test_watchdog_expiry_applies_recovery_rule():
    world = started()
    world.run_for(3_000.0)
    primary = world.primary
    engine = world.pair.engines[primary]
    app = world.pair.apps[primary]
    launches = app.launch_count
    watchdog = engine.watchdog_create("task", "synthetic")
    watchdog.set(500.0)  # never reset -> fires
    world.run_for(2_000.0)
    assert watchdog.expirations == 1
    assert app.launch_count == launches + 1  # local restart happened


def test_duplicate_watchdog_name_rejected():
    world = started()
    engine = world.pair.engines[world.primary]
    engine.watchdog_create("wd", "synthetic")
    with pytest.raises(WatchdogError):
        engine.watchdog_create("wd", "synthetic")


def test_engine_death_stops_monitoring_and_watchdogs():
    world = started()
    engine = world.pair.engines[world.primary]
    watchdog = engine.watchdog_create("wd", "synthetic")
    watchdog.set(10_000.0)
    engine.process.kill()
    assert not engine.alive
    assert engine.monitor._running is False
    assert watchdog.deleted


def test_middleware_failure_on_primary_fails_over():
    world = started()
    world.run_for(3_000.0)
    first_primary = world.primary
    world.pair.engines[first_primary].process.kill()
    world.run_for(2_000.0)
    assert world.primary != first_primary
    assert world.pair.apps[world.primary].running
    # The orphaned app copy was fail-stopped by its FTIM.
    assert not world.pair.apps[first_primary].running


def test_status_reports_cover_components():
    world = started()
    world.run_for(2_000.0)
    engine = world.pair.engines[world.primary]
    reports = engine.status_reports()
    components = {report.component for report in reports}
    assert {"oftt-engine", "peer-link", "synthetic"} <= components
    assert all(report.node == world.primary for report in reports)


def test_com_surface():
    world = started()
    world.run_for(2_000.0)
    engine = world.pair.engines[world.primary]
    assert engine.GetRole() == "primary"
    table = engine.GetStatusTable()
    assert isinstance(table, list) and table
    info = engine.GetCheckpointInfo()
    assert info["local_latest"] >= 1


def test_heartbeat_only_detection_when_exit_hooks_disabled():
    config = replace_config(OfttConfig(), use_exit_hooks=False)
    world = started(config=config)
    world.run_for(3_000.0)
    primary = world.primary
    app = world.pair.apps[primary]
    launches = app.launch_count
    fault_time = world.kernel.now
    app.process.kill()
    world.run_for(world.config.heartbeat_timeout * 3)
    assert app.launch_count == launches + 1
    restart = world.trace.first(category="engine", component=primary, event="local-restart", since=fault_time)
    assert restart is not None
    assert restart.time - fault_time >= world.config.heartbeat_timeout
