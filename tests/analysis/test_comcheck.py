"""Self-tests for the COM contract checker."""

from __future__ import annotations

from repro.analysis import comcheck

from tests.analysis.util import analyze, rule_ids

#: Shared snippet prologue: a ComObject base and one interface.
PROLOGUE = """
from repro.com.interfaces import declare_interface
from repro.com.object import ComObject
from repro.errors import ComError

IMOTOR = declare_interface("IMotor", ("Start", "Stop"))
"""


def com(source: str):
    return analyze(PROLOGUE + source, comcheck.run)


# -- COM001 missing method -----------------------------------------------


def test_missing_method_fires_when_declared_method_absent():
    findings = com(
        """
class Motor(ComObject):
    IMPLEMENTS = (IMOTOR,)

    def Start(self):
        return 0
        """
    )
    assert rule_ids(findings) == ["COM001"]
    assert "Stop" in findings[0].message


def test_missing_method_sees_base_interface_chain():
    findings = analyze(
        PROLOGUE
        + """
ISERVO = declare_interface("IServo", ("Calibrate",), base=IMOTOR)

class Servo(ComObject):
    IMPLEMENTS = (ISERVO,)

    def Calibrate(self):
        return 0
        """,
        comcheck.run,
    )
    assert rule_ids(findings) == ["COM001", "COM001"]  # Start and Stop missing


def test_missing_method_quiet_when_inherited_from_python_base():
    assert com(
        """
class MotorBase(ComObject):
    IMPLEMENTS = (IMOTOR,)

    def Start(self):
        return 0

    def Stop(self):
        return 0

class QuietMotor(MotorBase):
    def helper(self):
        return 1
        """
    ) == []


# -- COM002 undeclared CamelCase method ----------------------------------


def test_undeclared_method_fires_on_camel_case_extra():
    findings = com(
        """
class Motor(ComObject):
    IMPLEMENTS = (IMOTOR,)

    def Start(self):
        return 0

    def Stop(self):
        return 0

    def Reverse(self):
        return 0
        """
    )
    assert rule_ids(findings) == ["COM002"]
    assert "Reverse" in findings[0].message


def test_undeclared_method_quiet_on_snake_case_helpers_and_properties():
    assert com(
        """
class Motor(ComObject):
    IMPLEMENTS = (IMOTOR,)

    def Start(self):
        return 0

    def Stop(self):
        return 0

    def update_telemetry(self):
        return 1

    @property
    def Speed(self):
        return 3
        """
    ) == []


# -- COM003 unknown interface --------------------------------------------


def test_unknown_interface_fires_on_unresolvable_name():
    findings = com(
        """
class Motor(ComObject):
    IMPLEMENTS = (IMOTOR, IMYSTERY)

    def Start(self):
        return 0

    def Stop(self):
        return 0
        """
    )
    assert rule_ids(findings) == ["COM003"]
    assert "IMYSTERY" in findings[0].message


def test_unknown_interface_fires_on_non_tuple_implements():
    findings = com(
        """
class Motor(ComObject):
    IMPLEMENTS = IMOTOR

    def Start(self):
        return 0

    def Stop(self):
        return 0
        """
    )
    assert rule_ids(findings) == ["COM003"]


def test_known_interface_quiet():
    assert com(
        """
class Motor(ComObject):
    IMPLEMENTS = (IMOTOR,)

    def Start(self):
        return 0

    def Stop(self):
        return 0
        """
    ) == []


# -- COM004 HRESULT discipline -------------------------------------------


def test_bare_raise_fires_on_builtin_exception_in_com_method():
    findings = com(
        """
class Motor(ComObject):
    IMPLEMENTS = (IMOTOR,)

    def Start(self):
        raise ValueError("no power")

    def Stop(self):
        return 0
        """
    )
    assert rule_ids(findings) == ["COM004"]


def test_bare_raise_fires_on_local_exception_without_hresult():
    findings = com(
        """
class MotorJam(Exception):
    pass

class Motor(ComObject):
    IMPLEMENTS = (IMOTOR,)

    def Start(self):
        raise MotorJam("stuck")

    def Stop(self):
        return 0
        """
    )
    assert rule_ids(findings) == ["COM004"]


def test_bare_raise_quiet_on_hresult_carriers_and_helpers():
    assert com(
        """
class MotorFault(ComError):
    pass

class TaggedFault(Exception):
    def __init__(self, message):
        super().__init__(message)
        self.hresult = 0x80004005

class Motor(ComObject):
    IMPLEMENTS = (IMOTOR,)

    def Start(self):
        raise MotorFault(0x80004005, "stuck")

    def Stop(self):
        raise TaggedFault("power loss")

    def helper(self):
        raise ValueError("not a COM method; out of scope")
        """
    ) == []


# -- COM005 IUnknown override --------------------------------------------


def test_iunknown_override_fires():
    findings = com(
        """
class Motor(ComObject):
    IMPLEMENTS = (IMOTOR,)

    def Start(self):
        return 0

    def Stop(self):
        return 0

    def AddRef(self):
        return 99
        """
    )
    assert rule_ids(findings) == ["COM005"]
    assert "AddRef" in findings[0].message


def test_iunknown_methods_quiet_on_base_class_itself():
    # ComObject itself (defining class) is not a subclass, so no finding.
    assert analyze(
        """
        class ComObject:
            def QueryInterface(self, iid):
                return self

            def AddRef(self):
                return 1

            def Release(self):
                return 0
        """,
        comcheck.run,
    ) == []
