"""Checkpoint capture -> restore -> capture byte-stability regressions."""

from __future__ import annotations

from repro.apps.synthetic import SyntheticStateApp
from repro.core.checkpoint import canonical_image_bytes
from repro.core.status import ComponentStatus
from repro.harness.scenario import build_demo, build_pair_env, build_remote_monitoring
from repro.replay.runner import checkpoint_roundtrip


def _warm(scenario, duration=15_000.0):
    scenario.start()
    scenario.run_for(duration)
    return scenario.primary_app()


def test_scada_image_roundtrips_byte_identically():
    scenario = build_remote_monitoring(seed=2)
    app = _warm(scenario)
    result = checkpoint_roundtrip(scenario, app, subject="scada", seed=2)
    assert result.ok, result.mismatch
    assert result.image_bytes > 0
    assert result.regions  # at least the globals region


def test_calltrack_image_roundtrips_byte_identically():
    scenario = build_demo(seed=2)
    app = _warm(scenario)
    result = checkpoint_roundtrip(scenario, app, subject="calltrack", seed=2)
    assert result.ok, result.mismatch


def test_synthetic_image_roundtrips_in_both_capture_modes():
    for mode in ("full", "selective"):
        scenario = build_pair_env(
            seed=2, app_factory=lambda mode=mode: SyntheticStateApp(cold_kb=4, mode=mode)
        )
        app = _warm(scenario)
        result = checkpoint_roundtrip(scenario, app, subject=f"synthetic-{mode}", seed=2)
        assert result.ok, f"{mode}: {result.mismatch}"


def test_restore_does_not_alias_the_stored_image():
    # Regression: restore used to rebuild app state from a *shallow* copy
    # of the image's globals region, so the relaunched app mutated the
    # checkpoint's own nested containers in place.  The stored image must
    # stay frozen while the restored app keeps running.
    scenario = build_remote_monitoring(seed=2)
    app = _warm(scenario)
    checkpoint = app.api.ftim.capture()
    frozen = canonical_image_bytes(checkpoint.image)

    engine = scenario.pair.engines[scenario.pair.primary_node()]
    record = engine.components.get(app.name)
    if record is not None:
        record.status = ComponentStatus.RECOVERING
    engine.monitor.pause(app.name)
    app.stop()
    app.launch(checkpoint.image)
    if record is not None:
        record.status = ComponentStatus.RUNNING
    engine.monitor.resume(app.name)

    scenario.run_for(10_000.0)  # the restored app mutates its live state
    assert canonical_image_bytes(checkpoint.image) == frozen


def test_roundtrip_keeps_pair_healthy():
    # The restore path must not be misread as an application failure: the
    # pair should still be stable with the same primary afterwards.
    scenario = build_demo(seed=2)
    app = _warm(scenario)
    primary_before = scenario.pair.primary_node()
    result = checkpoint_roundtrip(scenario, app, subject="health", seed=2)
    assert result.ok, result.mismatch
    scenario.run_for(10_000.0)
    assert scenario.pair.is_stable()
    assert scenario.pair.primary_node() == primary_before
