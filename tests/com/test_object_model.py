"""Unit tests for GUIDs, HRESULTs, interfaces and the COM object model."""

import pytest

from repro.com.guids import GUID, guid_from_name
from repro.com.hresult import (
    E_FAIL,
    E_NOINTERFACE,
    RPC_E_TIMEOUT,
    S_FALSE,
    S_OK,
    failed,
    hresult_name,
    succeeded,
)
from repro.com.interfaces import IUNKNOWN, declare_interface
from repro.com.object import ComObject
from repro.errors import ComError

ICOUNTER = declare_interface("ICounter", ("Increment", "Value"))
IRESET = declare_interface("IReset", ("Reset",), base=ICOUNTER)


class Counter(ComObject):
    IMPLEMENTS = (ICOUNTER,)

    def __init__(self):
        super().__init__()
        self.count = 0
        self.released = False

    def Increment(self):
        self.count += 1
        return self.count

    def Value(self):
        return self.count

    def final_release(self):
        self.released = True


# -- GUIDs -------------------------------------------------------------------


def test_guid_deterministic_from_name():
    assert guid_from_name("x") == guid_from_name("x")
    assert guid_from_name("x") != guid_from_name("y")


def test_guid_string_format_and_parse_roundtrip():
    guid = guid_from_name("test")
    text = str(guid)
    assert text.startswith("{") and text.endswith("}")
    assert len(text) == 38
    assert GUID.parse(text) == guid
    assert GUID.parse(text.strip("{}")) == guid


def test_guid_parse_rejects_malformed():
    with pytest.raises(ValueError):
        GUID.parse("{not-a-guid}")


def test_guid_hashable():
    table = {guid_from_name("a"): 1}
    assert table[guid_from_name("a")] == 1


# -- HRESULTs -----------------------------------------------------------------


def test_succeeded_failed_macros():
    assert succeeded(S_OK)
    assert succeeded(S_FALSE)
    assert failed(E_FAIL)
    assert failed(RPC_E_TIMEOUT)


def test_hresult_names():
    assert hresult_name(S_OK) == "S_OK"
    assert hresult_name(E_NOINTERFACE) == "E_NOINTERFACE"
    assert hresult_name(0x12345678) == "0x12345678"


# -- interfaces ------------------------------------------------------------------


def test_interface_method_inheritance():
    assert IRESET.has_method("Reset")
    assert IRESET.has_method("Increment")  # from base
    assert not ICOUNTER.has_method("Reset")
    assert IRESET.all_methods() == ("Increment", "Value", "Reset")


def test_interface_iids_distinct():
    assert ICOUNTER.iid != IRESET.iid != IUNKNOWN.iid


# -- ComObject ----------------------------------------------------------------------


def test_query_interface_success_adds_reference():
    obj = Counter()
    same = obj.QueryInterface(ICOUNTER.iid)
    assert same is obj
    assert obj.refcount == 2


def test_query_interface_iunknown_always_supported():
    obj = Counter()
    assert obj.QueryInterface(IUNKNOWN.iid) is obj


def test_query_interface_unknown_iid_raises_e_nointerface():
    obj = Counter()
    with pytest.raises(ComError) as excinfo:
        obj.QueryInterface(IRESET.iid)
    assert excinfo.value.hresult == E_NOINTERFACE


def test_refcount_lifecycle_and_final_release():
    obj = Counter()
    assert obj.AddRef() == 2
    assert obj.Release() == 1
    assert not obj.released
    assert obj.Release() == 0
    assert obj.released
    assert obj.destroyed


def test_use_after_destroy_rejected():
    obj = Counter()
    obj.Release()
    with pytest.raises(ComError):
        obj.AddRef()
    with pytest.raises(ComError):
        obj.Release()


def test_find_interface_by_method():
    obj = Counter()
    assert obj.find_interface("Increment") is ICOUNTER
    assert obj.find_interface("QueryInterface") is IUNKNOWN
    assert obj.find_interface("Nothing") is None


def test_supports():
    obj = Counter()
    assert obj.supports(ICOUNTER.iid)
    assert obj.supports(IUNKNOWN.iid)
    assert not obj.supports(IRESET.iid)
