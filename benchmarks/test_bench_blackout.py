"""Benchmark: monitoring blackout across a station failover (Figure 1a).

The operator-facing number the §4 demonstration implies but never
quantifies: how long does the plant picture freeze when a monitoring
station dies?  Decomposes into detection + relaunch + DCOM reconnect +
resubscription + first data batch.

Expected shape: blackout = failover latency + one or two group update
periods — an order of magnitude below the no-OFTT alternative (manual
restart measured in minutes).
"""

from repro.harness.experiments import exp_scada_blackout

from benchmarks.conftest import print_block


def test_bench_scada_blackout(benchmark):
    result = benchmark.pedantic(lambda: exp_scada_blackout(seed=9), rounds=1, iterations=1)
    print_block("Monitoring blackout across a station power-off (F1a)", result)
    assert result["resumed"]
    assert result["failover_latency_ms"] is not None
    # Blackout is bounded: failover + a few update periods.
    assert result["blackout_ms"] < result["failover_latency_ms"] + 5 * 200.0
    # And strictly worse than the steady-state cadence (it is a real gap).
    assert result["blackout_ms"] > result["median_progress_gap_ms"]
