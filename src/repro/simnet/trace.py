"""Structured trace log for simulation runs.

Every layer appends :class:`TraceRecord` entries (timestamped, categorised,
keyed by component).  Tests and benchmarks query the trace to assert on
*sequences* of behaviour (e.g. "backup promoted exactly once, after the
heartbeat timeout elapsed") rather than only on final state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Float quantization used by trace canonicalization (decimal places).
#: Sim times are millisecond-scale floats; 9 places is far below any
#: scheduling granularity while absorbing representation noise.
QUANTIZE_DECIMALS = 9


def quantize(value: float) -> float:
    """Quantize a float to the canonical trace precision."""
    rounded = round(value, QUANTIZE_DECIMALS)
    # Normalize -0.0 so signed zeros never diverge.
    return rounded + 0.0


def canonical_value(value: Any) -> Any:
    """Recursively canonicalize a detail value for comparison.

    Floats are quantized, dicts get sorted keys, sets become sorted
    lists, tuples become lists — so two semantically equal details
    serialize to identical JSON regardless of construction order.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return quantize(value)
    if isinstance(value, dict):
        return {str(k): canonical_value(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (set, frozenset)):
        return sorted(json.dumps(canonical_value(v), sort_keys=True, default=str) for v in value)
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    return repr(value)


def canonical_detail(detail: Dict[str, Any]) -> Dict[str, Any]:
    """Canonical (sorted-key, quantized) form of a record's detail dict."""
    canonical = canonical_value(detail)
    assert isinstance(canonical, dict)
    return canonical


@dataclass(frozen=True)
class TraceRecord:
    """A single trace entry.

    Records are immutable once emitted; ``as_wire()`` and
    ``fingerprint()`` are therefore memoized on the instance (replay
    diffing and log fingerprinting call them once per comparison, which
    used to recompute JSON + sha256 every time).  Treat the returned
    wire dict as read-only — it is shared between callers.
    """

    time: float
    category: str
    component: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)
    #: Memoized canonical forms (not part of identity/equality).
    _wire_cache: Optional[Dict[str, Any]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _fingerprint_cache: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.3f}] {self.category:<10} {self.component:<24} {self.event} {extras}".rstrip()

    def as_wire(self) -> Dict[str, Any]:
        """Canonical serializable form (stable key order, quantized floats).

        This is the comparison unit used by ``repro.replay``: two records
        from different runs are "the same event" iff their wire forms are
        equal.  The dict is computed once and cached; do not mutate it.
        """
        wire = self._wire_cache
        if wire is None:
            wire = {
                "time": quantize(self.time),
                "category": self.category,
                "component": self.component,
                "event": self.event,
                "detail": canonical_detail(self.detail),
            }
            object.__setattr__(self, "_wire_cache", wire)
        return wire

    def fingerprint(self) -> str:
        """Short stable hash of the wire form (for compact diffs)."""
        cached = self._fingerprint_cache
        if cached is None:
            payload = json.dumps(self.as_wire(), sort_keys=True, separators=(",", ":"))
            cached = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
            object.__setattr__(self, "_fingerprint_cache", cached)
        return cached


class TraceLog:
    """Append-only log of :class:`TraceRecord` entries with query helpers.

    ``emit`` maintains per-category and per-component indexes (lists of
    records in emission order) so that :meth:`select` — the query every
    invariant monitor and experiment metric goes through — scans only the
    narrowest matching index instead of the full record list.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.records: List[TraceRecord] = []
        self._clock = clock
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        self._by_category: Dict[str, List[TraceRecord]] = {}
        self._by_component: Dict[str, List[TraceRecord]] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated clock used to timestamp records."""
        self._clock = clock

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke *callback* for every future record (live monitoring)."""
        self._subscribers.append(callback)

    def emit(self, category: str, component: str, event: str, **detail: Any) -> TraceRecord:
        """Append a record stamped with the current simulated time."""
        time = self._clock() if self._clock is not None else 0.0
        record = TraceRecord(time=time, category=category, component=component, event=event, detail=detail)
        self.records.append(record)
        index = self._by_category.get(category)
        if index is None:
            index = self._by_category[category] = []
        index.append(record)
        index = self._by_component.get(component)
        if index is None:
            index = self._by_component[component] = []
        index.append(record)
        if self._subscribers:
            for callback in self._subscribers:
                callback(record)
        return record

    # -- queries ---------------------------------------------------------

    def select(
        self,
        category: Optional[str] = None,
        component: Optional[str] = None,
        event: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[TraceRecord]:
        """Filter records by any combination of fields and a time window.

        The window is half-open ``[since, until)``: a record stamped
        exactly at *until* is excluded, so adjacent windows tile the
        timeline without double-counting.
        """
        candidates: List[TraceRecord] = self.records
        if category is not None:
            candidates = self._by_category.get(category, [])
        if component is not None:
            by_component = self._by_component.get(component, [])
            if len(by_component) < len(candidates):
                candidates = by_component
        return [
            record
            for record in candidates
            if (category is None or record.category == category)
            and (component is None or record.component == component)
            and (event is None or record.event == event)
            and since <= record.time < until
        ]

    def first(self, **kwargs: Any) -> Optional[TraceRecord]:
        """First record matching :meth:`select` filters, or None."""
        matches = self.select(**kwargs)
        return matches[0] if matches else None

    def last(self, **kwargs: Any) -> Optional[TraceRecord]:
        """Last record matching :meth:`select` filters, or None."""
        matches = self.select(**kwargs)
        return matches[-1] if matches else None

    def count(self, **kwargs: Any) -> int:
        """Number of records matching :meth:`select` filters."""
        return len(self.select(**kwargs))

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of (the tail of) the trace."""
        records = self.records if limit is None else self.records[-limit:]
        return "\n".join(str(record) for record in records)

    def as_wire(self) -> List[Dict[str, Any]]:
        """Canonical serializable form of the whole log (see TraceRecord.as_wire)."""
        return [record.as_wire() for record in self.records]

    def fingerprint(self) -> str:
        """Stable hash over the canonical wire form of the full log.

        Two runs of the same scenario with the same seed should yield
        identical fingerprints; ``repro.replay`` uses this as the cheap
        equality check before computing an event-by-event diff.
        """
        digest = hashlib.sha256()
        for record in self.records:
            digest.update(record.fingerprint().encode("ascii"))
            digest.update(b"\n")
        return digest.hexdigest()[:16]
