"""Integration tests: crash semantics wiring, determinism, devices."""

from repro.harness.scenario import build_demo
from repro.msq.manager import QueueManager
from repro.nt.thread import ThreadContext

from tests.conftest import make_world
from tests.core.util import make_pair_world


def test_bluescreen_purges_express_messages_end_to_end():
    """The OS crash hook reaches the MSMQ service: express messages die
    with the bluescreen, persistent ones survive the reboot."""
    world = make_world()
    sender_sys = world.add_machine("sender")
    receiver_sys = world.add_machine("receiver")
    sender = QueueManager(world.kernel, world.network, world.network.nodes["sender"])
    receiver = QueueManager(world.kernel, world.network, world.network.nodes["receiver"])
    receiver.attach_to_system(receiver_sys)
    queue = receiver.create_queue("inbox")
    sender.send("receiver", "inbox", "durable", persistent=True)
    sender.send("receiver", "inbox", "volatile", persistent=False)
    world.run_for(200.0)
    assert len(queue) == 2

    receiver_sys.bluescreen()
    eta = receiver_sys.reboot()
    world.run(eta + 100.0)
    bodies = []
    while True:
        message = queue.receive()
        if message is None:
            break
        bodies.append(message.body)
    assert bodies == ["durable"]
    assert receiver.service_up


def test_msq_service_pauses_while_node_down():
    world = make_world()
    sender_sys = world.add_machine("sender")
    sender = QueueManager(world.kernel, world.network, world.network.nodes["sender"])
    sender.attach_to_system(sender_sys)
    sender_sys.power_off()
    assert not sender.service_up
    eta = sender_sys.reboot()
    world.run(eta + 100.0)
    assert sender.service_up


def test_demo_scenario_is_deterministic_per_seed():
    results = []
    for _run in range(2):
        demo = build_demo(seed=99)
        demo.start()
        demo.run_for(30_000.0)
        primary = demo.pair.primary_node()
        demo.systems[primary].power_off()
        demo.run_for(10_000.0)
        app = demo.primary_app()
        results.append(
            (
                demo.pair.primary_node(),
                demo.history.event_count,
                app.events_processed(),
                tuple(sorted(app.histogram().items())),
            )
        )
    assert results[0] == results[1]


def test_different_seeds_differ():
    outcomes = set()
    for seed in (1, 2, 3):
        demo = build_demo(seed=seed)
        demo.start()
        demo.run_for(30_000.0)
        outcomes.add(demo.history.event_count)
    assert len(outcomes) > 1


def test_thread_context_dict_roundtrip():
    context = ThreadContext(program_counter=0x401234, stack_pointer=0x12F000, registers={"eax": 7})
    restored = ThreadContext.from_dict(context.as_dict())
    assert restored.program_counter == context.program_counter
    assert restored.registers == {"eax": 7}
    # Snapshot independence.
    snapshot = context.snapshot()
    snapshot.registers["eax"] = 0
    assert context.registers["eax"] == 7


def test_valve_controlled_through_plc_scan():
    """A valve commanded by PLC logic travels over multiple scans."""
    from repro.devices.device import Sensor, Valve
    from repro.devices.fieldbus import Fieldbus
    from repro.devices.plc import PLC
    from repro.devices.signals import Step

    world = make_world()
    bus = Fieldbus("bus")
    bus.attach(Sensor("level", Step(before=30.0, after=80.0, at_time=2_000.0)))
    valve = Valve("drain", travel_time=1_000.0)
    bus.attach(valve)
    plc = PLC(world.kernel, "plc", bus, world.rngs.stream("plc"), scan_period=100.0)

    def drain_logic(inputs, outputs, time):
        if inputs.get("level", 0.0) > 70.0:
            bus.command_valve("drain", True, time)

    plc.add_logic(drain_logic)
    plc.start()
    world.run(1_900.0)
    assert valve.position_at(world.kernel.now) == 0.0
    world.run(2_300.0)
    assert 0.0 < valve.position_at(world.kernel.now) < 1.0  # travelling
    world.run(4_000.0)
    assert valve.fully_open
