"""Injector mechanics and catalogue-wide double-apply safety.

Randomized chaos campaigns compose faults freely, so the catalogue's
contract is: applying any fault twice to the same target is a no-op,
never an error (the second application lands on an already-faulted
target).  Every fault in :mod:`repro.faults.faultlib` is exercised here.
"""

import pytest

from repro.devices.fieldbus import Fieldbus
from repro.errors import FaultInjectionError
from repro.faults import (
    AppCrash,
    AppHang,
    AsymmetricPartition,
    BlueScreen,
    ClockSkew,
    CrashDuringCheckpoint,
    FaultInjector,
    FieldbusFailure,
    GrayNode,
    HealNetwork,
    LinkDown,
    MessageCorruption,
    MessageDuplication,
    MiddlewareCrash,
    NetworkPartition,
    NicDown,
    NodeFailure,
    NodeReboot,
    ReinstallMiddleware,
    TransientAppCrash,
)
from repro.faults.faultlib import Fault

from tests.core.util import make_pair_world


def started_world(seed=0):
    world = make_pair_world(seed=seed)
    world.fieldbuses["bus0"] = Fieldbus("bus0")
    world.start()
    return world


# ---------------------------------------------------------------------------
# Injector mechanics


def test_inject_at_applies_at_scheduled_time():
    world = started_world()
    injector = FaultInjector(world.kernel, world)
    record = injector.inject_at(world.kernel.now + 500.0, NodeFailure("alpha"))
    assert not record.applied
    world.run_for(400.0)
    assert not record.applied
    assert world.systems["alpha"].state.value == "up"
    world.run_for(200.0)
    assert record.applied
    assert world.systems["alpha"].state.value == "off"


def test_inject_at_in_the_past_fires_immediately():
    world = started_world()
    injector = FaultInjector(world.kernel, world)
    record = injector.inject_at(0.0, BlueScreen("beta"))
    world.run_for(1.0)
    assert record.applied


def test_applied_faults_tracks_both_paths():
    world = started_world()
    injector = FaultInjector(world.kernel, world)
    injector.inject_now(ClockSkew("alpha", 1.1))
    injector.inject_at(world.kernel.now + 1_000.0, ClockSkew("alpha", 1.0))
    assert len(injector.applied_faults()) == 1
    assert len(injector.injected) == 2
    world.run_for(1_500.0)
    assert len(injector.applied_faults()) == 2
    assert "2 scheduled, 2 applied" in repr(injector)


def test_injection_is_traced():
    world = started_world()
    before = world.trace.count(category="fault", event="inject")
    FaultInjector(world.kernel, world).inject_now(GrayNode("alpha", 50.0))
    records = world.trace.select(category="fault", event="inject")
    assert world.trace.count(category="fault", event="inject") == before + 1
    assert "gray node" in records[-1].detail["fault"]


def test_invalid_parameters_rejected_at_construction():
    with pytest.raises(FaultInjectionError):
        MessageCorruption("lan0", 1.5)
    with pytest.raises(FaultInjectionError):
        MessageDuplication("lan0", -0.1)
    with pytest.raises(FaultInjectionError):
        GrayNode("alpha", -1.0)
    with pytest.raises(FaultInjectionError):
        ClockSkew("alpha", 0.0)


def test_base_fault_is_abstract():
    with pytest.raises(NotImplementedError):
        Fault().apply(object())


# ---------------------------------------------------------------------------
# Catalogue-wide double-apply safety.  Each entry is (label, factory) where
# the factory builds one fault instance for a started pair world.

CATALOGUE = [
    ("node-failure", lambda w: NodeFailure("alpha")),
    ("bluescreen", lambda w: BlueScreen("alpha")),
    ("app-crash", lambda w: AppCrash(w.primary, "synthetic")),
    ("transient-app-crash", lambda w: TransientAppCrash(w.primary, "synthetic")),
    ("app-hang", lambda w: AppHang(w.primary, "synthetic")),
    ("middleware-crash", lambda w: MiddlewareCrash(w.primary)),
    ("link-down", lambda w: LinkDown("lan0")),
    ("nic-down", lambda w: NicDown("alpha", "lan0")),
    ("partition", lambda w: NetworkPartition(["alpha"], ["beta"])),
    ("fieldbus-failure", lambda w: FieldbusFailure("bus0")),
    ("node-reboot", lambda w: NodeReboot("alpha")),
    ("reinstall-middleware", lambda w: ReinstallMiddleware("alpha")),
    ("asym-partition", lambda w: AsymmetricPartition(["alpha"], ["beta"])),
    ("heal-network", lambda w: HealNetwork()),
    ("message-corruption", lambda w: MessageCorruption("lan0", 0.2)),
    ("message-duplication", lambda w: MessageDuplication("lan0", 0.2)),
    ("gray-node", lambda w: GrayNode("alpha", 100.0)),
    ("clock-skew", lambda w: ClockSkew("alpha", 1.25)),
    ("crash-during-checkpoint", lambda w: CrashDuringCheckpoint(w.primary)),
]


@pytest.mark.parametrize("label,factory", CATALOGUE, ids=[label for label, _ in CATALOGUE])
def test_double_apply_is_a_noop(label, factory):
    world = started_world()
    fault = factory(world)
    injector = FaultInjector(world.kernel, world)
    injector.inject_now(fault)
    injector.inject_now(fault)  # must not raise
    # Delayed consequences (boot hooks, armed crashes) must also land cleanly.
    world.run_for(5_000.0)


@pytest.mark.parametrize("label,factory", CATALOGUE, ids=[label for label, _ in CATALOGUE])
def test_fresh_instance_reapply_is_a_noop(label, factory):
    # Campaigns may construct a new fault object aimed at the same target
    # (built while the target was still healthy, applied later).
    world = started_world()
    first, second = factory(world), factory(world)
    injector = FaultInjector(world.kernel, world)
    injector.inject_now(first)
    world.run_for(100.0)
    injector.inject_now(second)
    world.run_for(5_000.0)


def test_every_catalogue_fault_describes_itself():
    world = started_world()
    for label, factory in CATALOGUE:
        description = factory(world).describe()
        assert isinstance(description, str) and description
