"""CLI contract for ``oftt-replay``: exit codes, JSON schema, reporters."""

from __future__ import annotations

import itertools
import json

from repro.replay import cli
from repro.replay.report import JSON_SCHEMA, outcome_counts, render_json, render_text
from repro.replay.runner import run_twice_and_diff
from repro.replay.subjects import SUBJECTS, Subject
from repro.simnet.trace import TraceLog


def run_cli(argv, capsys):
    code = cli.main(argv)
    captured = capsys.readouterr()
    return code, captured.out + captured.err


def _diverging_subject(name):
    orders = itertools.cycle([["a", "b"], ["b", "a"]])

    def factory(seed):
        log = TraceLog(clock=lambda: 1.0)
        for handle in next(orders):
            log.emit("opc", "opc-group", "item-update", handle=handle)
        return log

    def check(seed):
        return run_twice_and_diff(factory, seed=seed, subject=name)

    return Subject(name=name, kind="trace", description="scratch diverging fixture", check=check)


def test_clean_subject_exits_zero(capsys):
    code, out = run_cli(["demo"], capsys)
    assert code == 0
    assert "[ok] demo" in out
    assert "1 subject(s): 1 ok, 0 diverged" in out


def test_unknown_subject_is_usage_error(capsys):
    code, out = run_cli(["no-such-subject"], capsys)
    assert code == 2
    assert "unknown subject" in out


def test_diverging_subject_gates_and_names_the_fork(monkeypatch, capsys):
    monkeypatch.setitem(SUBJECTS, "scratch-fanout", _diverging_subject("scratch-fanout"))
    code, out = run_cli(["scratch-fanout"], capsys)
    assert code == 1
    assert "[DIVERGED] scratch-fanout" in out
    assert "component='opc-group'" in out
    assert "event='item-update'" in out


def test_json_reporter_round_trips(monkeypatch, capsys):
    monkeypatch.setitem(SUBJECTS, "scratch-fanout", _diverging_subject("scratch-fanout"))
    code, out = run_cli(["demo", "scratch-fanout", "--format", "json"], capsys)
    assert code == 1
    document = json.loads(out)
    assert document["schema"] == JSON_SCHEMA
    assert document["counts"] == {"ok": 1, "diverged": 1}
    kinds = {result["subject"]: result["ok"] for result in document["results"]}
    assert kinds == {"demo": True, "scratch-fanout": False}
    diverged = next(r for r in document["results"] if not r["ok"])
    assert diverged["divergence"]["component"] == "opc-group"


def test_list_subjects(capsys):
    code, out = run_cli(["--list-subjects"], capsys)
    assert code == 0
    for name in SUBJECTS:
        assert name in out


def test_report_helpers_cover_roundtrip_results():
    results = [SUBJECTS["roundtrip-calltrack"].check(0)]
    assert outcome_counts(results) == {"ok": 1, "diverged": 0}
    text = render_text(results)
    assert "roundtrip-calltrack" in text
    document = json.loads(render_json(results))
    assert document["results"][0]["kind"] == "roundtrip"
