"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that fully offline environments (no ``wheel`` package available) can still
do an editable install via the legacy path::

    pip install -e . --no-use-pep517 --no-build-isolation
"""

from setuptools import setup

setup()
