"""Clean twin of life004: stop() unsubscribes on the same receiver."""


class LiveView:
    def __init__(self, trace):
        self.trace = trace
        self.count = 0

    def attach(self):
        self.trace.subscribe(self._on_record)

    def stop(self):
        self.trace.unsubscribe(self._on_record)

    def _on_record(self, record):
        self.count += 1
