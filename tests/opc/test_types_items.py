"""Unit tests for OPC value types and the item namespace."""

import pytest

from repro.errors import ItemNotFound, OpcError
from repro.opc.items import READ, READ_WRITE, WRITE, ItemDef, ItemNamespace
from repro.opc.types import OpcValue, Quality, VT_BOOL, VT_BSTR, VT_I4, VT_R8, canonical_vt


# -- types -------------------------------------------------------------------


def test_canonical_vt_mapping():
    assert canonical_vt(True) == VT_BOOL
    assert canonical_vt(5) == VT_I4
    assert canonical_vt(1.5) == VT_R8
    assert canonical_vt("s") == VT_BSTR
    with pytest.raises(TypeError):
        canonical_vt([1])


def test_quality_major_status():
    assert Quality.GOOD.is_good
    assert Quality.GOOD_LOCAL_OVERRIDE.is_good
    assert Quality.BAD_DEVICE_FAILURE.is_bad
    assert not Quality.UNCERTAIN.is_good
    assert not Quality.UNCERTAIN.is_bad


def test_opcvalue_wire_roundtrip():
    value = OpcValue(3.14, Quality.UNCERTAIN_LAST_USABLE, 123.0)
    assert OpcValue.from_wire(value.as_wire()) == value


def test_opcvalue_with_quality():
    value = OpcValue(1, Quality.GOOD, 10.0)
    downgraded = value.with_quality(Quality.BAD_COMM_FAILURE)
    assert downgraded.value == 1
    assert downgraded.quality is Quality.BAD_COMM_FAILURE


# -- namespace ---------------------------------------------------------------------


def test_define_and_read_initial_quality():
    namespace = ItemNamespace()
    namespace.define(ItemDef("plant.temp", VT_R8))
    value = namespace.read("plant.temp")
    assert value.quality is Quality.BAD_NOT_CONNECTED


def test_define_simple_infers_vt_and_good_quality():
    namespace = ItemNamespace()
    item = namespace.define_simple("plant.temp", 20.0)
    assert item.vt == VT_R8
    assert namespace.read("plant.temp").quality is Quality.GOOD


def test_duplicate_definition_rejected():
    namespace = ItemNamespace()
    namespace.define_simple("a", 1)
    with pytest.raises(OpcError):
        namespace.define_simple("a", 2)


def test_unknown_item_faults():
    namespace = ItemNamespace()
    with pytest.raises(ItemNotFound):
        namespace.read("ghost")
    with pytest.raises(ItemNotFound):
        namespace.update("ghost", 1, Quality.GOOD, 0.0)


def test_update_sets_value_quality_timestamp():
    namespace = ItemNamespace()
    namespace.define_simple("a", 0)
    namespace.update("a", 7, Quality.UNCERTAIN, 55.0)
    value = namespace.read("a")
    assert (value.value, value.quality, value.timestamp) == (7, Quality.UNCERTAIN, 55.0)


def test_client_write_checks_access_rights():
    namespace = ItemNamespace()
    namespace.define_simple("ro", 1, access=READ)
    namespace.define_simple("rw", 1, access=READ_WRITE)
    with pytest.raises(OpcError):
        namespace.client_write("ro", 2)
    namespace.client_write("rw", 2)  # no handler installed: allowed no-op


def test_client_write_fires_device_hook():
    namespace = ItemNamespace()
    namespace.define_simple("setpoint", 0.0, access=READ_WRITE)
    writes = []
    namespace.on_write("setpoint", lambda item, value: writes.append((item, value)))
    namespace.client_write("setpoint", 42.0)
    assert writes == [("setpoint", 42.0)]


def test_mark_all_stamps_quality():
    namespace = ItemNamespace()
    namespace.define_simple("a", 1)
    namespace.define_simple("b", 2)
    namespace.mark_all(Quality.BAD_COMM_FAILURE, 99.0)
    assert namespace.read("a").quality is Quality.BAD_COMM_FAILURE
    assert namespace.read("b").timestamp == 99.0


def test_browse_hierarchy():
    namespace = ItemNamespace()
    for item_id in ("plant.line1.temp", "plant.line1.flow", "plant.line2.temp", "site.power"):
        namespace.define_simple(item_id, 0.0)
    assert namespace.browse() == ["plant.", "site."]
    assert namespace.browse("plant") == ["plant.line1.", "plant.line2."]
    assert namespace.browse("plant.line1") == ["plant.line1.flow", "plant.line1.temp"]


def test_item_ids_sorted():
    namespace = ItemNamespace()
    namespace.define_simple("b", 0)
    namespace.define_simple("a", 0)
    assert namespace.item_ids() == ["a", "b"]
