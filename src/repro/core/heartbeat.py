"""Heartbeat-based failure detection.

"[The engine] monitors the status of all software components that are
linked with the fault tolerance interface module on the same node and the
status of the peer node by checking the heartbeat messages from each
monitored component.  If it does not receive the message after the
pre-specified timeout, it considers the component fails and initiates a
recovery provision" (§2.2.1).

:class:`HeartbeatMonitor` is the engine-side half: components (or the
peer engine) register, somebody calls :meth:`beat` on every received
heartbeat, and a periodic sweep declares anything silent past its timeout
failed exactly once (until it beats again).

Sensitivity is tunable via *miss_threshold*: a component is only declared
failed after that many **consecutive** sweeps observe it past its
timeout.  The default of 1 is the paper's behaviour (first sweep past the
timeout fails the component); higher thresholds trade detection latency
for robustness against gray nodes and delivery jitter.  Both knobs are
surfaced through :class:`repro.core.config.OfttConfig`
(``heartbeat_timeout`` / ``heartbeat_miss_threshold``) so detector
sensitivity can be swept by chaos schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.simnet.kernel import SimKernel

# callback(component_name, silence_duration)
FailureCallback = Callable[[str, float], None]


@dataclass
class _Watch:
    """Book-keeping for one monitored component."""

    timeout: float
    last_beat: float
    suspected: bool = False
    beats_received: int = 0
    enabled: bool = True
    #: Consecutive sweeps that found this component past its timeout.
    misses: int = 0
    #: The timeout registered at watch(); ``tune`` scales from this so
    #: repeated tuning never compounds.
    base_timeout: float = 0.0
    #: Per-watch miss threshold override (None = the monitor default).
    miss_tolerance: Optional[int] = None
    #: Largest inter-arrival gap observed, and when it was observed —
    #: the latency-skew signal the adaptive classifier reads.
    last_gap: float = 0.0
    last_gap_at: float = 0.0


class HeartbeatMonitor:
    """Sweeps registered components for heartbeat silence."""

    def __init__(
        self,
        kernel: SimKernel,
        sweep_period: float,
        on_failure: FailureCallback,
        miss_threshold: int = 1,
    ) -> None:
        if miss_threshold < 1:
            raise ValueError(f"miss_threshold must be at least 1, got {miss_threshold}")
        self.kernel = kernel
        self.sweep_period = sweep_period
        self.on_failure = on_failure
        self.miss_threshold = miss_threshold
        self._watches: Dict[str, _Watch] = {}
        self._running = False
        self._timer = None

    # -- registration -----------------------------------------------------------

    def watch(self, component: str, timeout: float) -> None:
        """Start monitoring *component*; its clock starts now."""
        self._watches[component] = _Watch(
            timeout=timeout, last_beat=self.kernel.now, base_timeout=timeout
        )

    def tune(
        self,
        component: str,
        timeout_scale: Optional[float] = None,
        miss_tolerance: Optional[int] = None,
    ) -> None:
        """Adjust one watch's sensitivity at run time.

        ``timeout_scale`` multiplies the timeout registered at
        :meth:`watch` (scaling from the base, so successive tunes replace
        rather than compound).  ``miss_tolerance`` overrides the
        monitor-wide miss threshold for this watch only.  Passing ``None``
        for either restores the default.  No-op for unknown components.
        """
        watch = self._watches.get(component)
        if watch is None:
            return
        if timeout_scale is None:
            watch.timeout = watch.base_timeout
        else:
            watch.timeout = watch.base_timeout * timeout_scale
        watch.miss_tolerance = miss_tolerance

    def unwatch(self, component: str) -> None:
        """Stop monitoring (idempotent)."""
        self._watches.pop(component, None)

    def clear(self) -> None:
        """Drop every watch (full engine teardown)."""
        self._watches.clear()

    def pause(self, component: str) -> None:
        """Keep the watch but suppress failure detection (e.g. during a
        deliberate restart, so the gap is not reported as a failure)."""
        watch = self._watches.get(component)
        if watch is not None:
            watch.enabled = False

    def resume(self, component: str) -> None:
        """Re-enable detection; the silence clock restarts now."""
        watch = self._watches.get(component)
        if watch is not None:
            watch.enabled = True
            watch.last_beat = self.kernel.now
            watch.suspected = False
            watch.misses = 0

    def watched(self) -> List[str]:
        """Names currently monitored, sorted."""
        return sorted(self._watches)

    # -- beats -------------------------------------------------------------------

    def beat(self, component: str) -> None:
        """Record a heartbeat.  A beat from a suspected component clears
        the suspicion (it will be re-reported if it goes silent again)."""
        watch = self._watches.get(component)
        if watch is None:
            return
        if watch.beats_received > 0:
            gap = self.kernel.now - watch.last_beat
            if gap >= watch.last_gap or watch.last_gap_at < watch.last_beat:
                watch.last_gap = gap
                watch.last_gap_at = self.kernel.now
        watch.last_beat = self.kernel.now
        watch.beats_received += 1
        watch.suspected = False
        watch.misses = 0

    def largest_gap(self, component: str) -> Optional[float]:
        """Largest beat-to-beat gap recently observed (None if unknown).

        ``beat`` keeps the running maximum but lets a smaller gap
        replace a stale one (recorded before the previous beat), so the
        value tracks the *current* delivery regime rather than the
        worst moment of the whole run.
        """
        watch = self._watches.get(component)
        if watch is None or watch.beats_received < 2:
            return None
        return watch.last_gap

    def silence(self, component: str) -> Optional[float]:
        """How long *component* has been silent (None if unknown)."""
        watch = self._watches.get(component)
        if watch is None:
            return None
        return self.kernel.now - watch.last_beat

    def is_suspected(self, component: str) -> bool:
        """Whether the component is currently declared failed."""
        watch = self._watches.get(component)
        return watch.suspected if watch is not None else False

    # -- sweep loop ----------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic sweeps."""
        if self._running:
            return
        self._running = True
        self._cancel_timer()
        self._timer = self.kernel.schedule(self.sweep_period, self._sweep)

    def stop(self) -> None:
        """Halt sweeps (the engine is shutting down or died)."""
        self._running = False
        self._cancel_timer()

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self.kernel.cancel(self._timer)
            self._timer = None

    def _sweep(self) -> None:
        if not self._running:
            return
        now = self.kernel.now
        for component, watch in list(self._watches.items()):
            if not watch.enabled or watch.suspected:
                continue
            silence = now - watch.last_beat
            if silence > watch.timeout:
                watch.misses += 1
                threshold = (
                    watch.miss_tolerance
                    if watch.miss_tolerance is not None
                    else self.miss_threshold
                )
                if watch.misses >= threshold:
                    watch.suspected = True
                    self.on_failure(component, silence)
            else:
                watch.misses = 0
        self._timer = self.kernel.schedule(self.sweep_period, self._sweep)

    def __repr__(self) -> str:
        return f"HeartbeatMonitor(watching={self.watched()}, running={self._running})"
