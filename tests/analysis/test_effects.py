"""Self-tests for the interprocedural effects pass (RACE1xx / PURE rules)."""

from __future__ import annotations

from repro.analysis import effects
from repro.analysis.findings import Severity

from tests.analysis.util import analyze, rule_ids


def run(source: str, max_k: int = effects.DEFAULT_MAX_K, path: str = "pkg/mod.py"):
    return analyze(source, effects.make_pass(max_k), path=path)


# -- RACE101 interprocedural write/write ----------------------------------

TWO_HOP_WW = """
class Widget:
    def start(self):
        self.kernel.schedule(1.0, self.on_tick)
        self.kernel.schedule(1.0, self.on_poll)

    def on_tick(self):
        self._bump()

    def _bump(self):
        self._deep()

    def _deep(self):
        self.state += 1

    def on_poll(self):
        self.state = 2
"""


def test_write_write_through_two_hop_helper_chain():
    findings = run(TWO_HOP_WW)
    assert rule_ids(findings) == ["RACE101"]
    assert "on_tick -> _bump -> _deep" in findings[0].message
    assert findings[0].severity == Severity.WARNING


def test_max_k_bounds_the_chain_depth():
    assert run(TWO_HOP_WW, max_k=1) == []
    assert run(TWO_HOP_WW, max_k=0) == []
    assert rule_ids(run(TWO_HOP_WW, max_k=3)) == ["RACE101"]


def test_direct_direct_conflicts_are_left_to_race001():
    # Both handlers write in their own bodies: RACE001 territory, and the
    # effects pass must not double-report it.
    assert run(
        """
        class Widget:
            def start(self):
                self.kernel.schedule(1.0, self.on_tick)
                self.kernel.schedule(1.0, self.on_poll)

            def on_tick(self):
                self.state = 1

            def on_poll(self):
                self.state = 2
        """
    ) == []


def test_recursive_helpers_terminate():
    findings = run(
        """
        class Widget:
            def start(self):
                self.kernel.schedule(1.0, self.on_tick)
                self.kernel.schedule(1.0, self.on_poll)

            def on_tick(self):
                self._spin()

            def _spin(self):
                self.state = 1
                self._spin()

            def on_poll(self):
                self.state = 2
        """
    )
    assert rule_ids(findings) == ["RACE101"]


def test_suppression_slug_silences_the_anchor_line():
    findings = run(
        """
        class Widget:
            def start(self):
                self.kernel.schedule(1.0, self.on_poll)
                self.kernel.schedule(1.0, self.on_tick)

            def on_poll(self):  # oftt-lint: ok[ip-race-write-write]
                self.state = 2

            def on_tick(self):
                self._bump()

            def _bump(self):
                self.state = 1
        """
    )
    assert findings == []


# -- RACE102 interprocedural write/read -----------------------------------


def test_write_read_with_chained_writer():
    findings = run(
        """
        class Gauge:
            def start(self):
                self.kernel.schedule(1.0, self.on_update)
                self.kernel.schedule(1.0, self.on_report)

            def on_update(self):
                self._refresh()

            def _refresh(self):
                self.reading = 42

            def on_report(self):
                return self.reading
        """
    )
    assert rule_ids(findings) == ["RACE102"]
    assert "on_update -> _refresh" in findings[0].message
    assert "on_report" in findings[0].message


def test_write_read_quiet_when_both_sides_are_direct():
    assert run(
        """
        class Gauge:
            def start(self):
                self.kernel.schedule(1.0, self.on_update)
                self.kernel.schedule(1.0, self.on_report)

            def on_update(self):
                self.reading = 42

            def on_report(self):
                return self.reading
        """
    ) == []


# -- RACE103 interprocedural container conflicts ---------------------------


def test_container_mutation_through_helper_vs_direct_iteration():
    findings = run(
        """
        class Spool:
            def start(self):
                self.kernel.schedule(1.0, self.on_flush)
                self.kernel.schedule(1.0, self.on_scan)

            def on_flush(self):
                self._drain()

            def _drain(self):
                self.items.append(1)

            def on_scan(self):
                total = 0
                for item in self.items:
                    total += item
                return total
        """
    )
    # The container rule is the precise diagnosis; no RACE102 echo.
    assert rule_ids(findings) == ["RACE103"]
    assert "on_flush -> _drain" in findings[0].message


def test_handlers_in_different_classes_do_not_conflict():
    assert run(
        """
        class A:
            def start(self):
                self.kernel.schedule(1.0, self.on_a)

            def on_a(self):
                self._set()

            def _set(self):
                self.state = 1

        class B:
            def start(self):
                self.kernel.schedule(1.0, self.on_b)

            def on_b(self):
                self.state = 2
        """
    ) == []


# -- PURE001 impure task ---------------------------------------------------


def test_task_writing_module_global_is_impure():
    findings = run(
        """
        from repro.perf.executor import parallel_map

        TOTALS = []

        def record(value):
            TOTALS.append(value)
            return value

        def main(values):
            return parallel_map(record, values, jobs=2)
        """
    )
    assert rule_ids(findings) == ["PURE001"]
    assert "TOTALS" in findings[0].message
    assert findings[0].severity == Severity.ERROR


def test_task_writing_global_through_helper_reports_the_chain():
    findings = run(
        """
        from repro.perf.executor import parallel_map

        COUNTS = {}

        def bump(key):
            COUNTS[key] = COUNTS.get(key, 0) + 1

        def record(value):
            bump(value)
            return value

        def main(values):
            return parallel_map(record, values)
        """
    )
    assert rule_ids(findings) == ["PURE001"]
    assert "record -> bump" in findings[0].message


def test_pure_task_passes():
    assert run(
        """
        from repro.perf.executor import parallel_map

        def double(value):
            return value * 2

        def main(values):
            return parallel_map(double, values, jobs=4)
        """
    ) == []


# -- PURE002 unpicklable task ----------------------------------------------


def test_lambda_task_is_unpicklable():
    findings = run(
        """
        from repro.perf.executor import parallel_map

        def main(values):
            return parallel_map(lambda v: v * 2, values)
        """
    )
    assert rule_ids(findings) == ["PURE002"]


def test_bound_method_task_is_unpicklable():
    findings = run(
        """
        from repro.perf.executor import parallel_map

        class Runner:
            def work(self, value):
                return value

            def go(self, values):
                return parallel_map(self.work, values)
        """
    )
    assert rule_ids(findings) == ["PURE002"]
    assert "bound method" in findings[0].message


def test_nested_function_task_is_unpicklable():
    findings = run(
        """
        from repro.perf.executor import parallel_map

        def main(values):
            def work(value):
                return value + 1
            return parallel_map(work, values)
        """
    )
    assert rule_ids(findings) == ["PURE002"]
    assert "nested" in findings[0].message


# -- PURE003 ambient entropy ----------------------------------------------


def test_task_drawing_global_rng_without_seed_param():
    findings = run(
        """
        import random

        from repro.perf.executor import parallel_map

        def sample(value):
            return value + random.random()

        def main(values):
            return parallel_map(sample, values)
        """
    )
    assert rule_ids(findings) == ["PURE003"]
    assert "random.random" in findings[0].message


def test_seed_parameter_is_the_sanctioned_escape():
    assert run(
        """
        import random

        from repro.perf.executor import parallel_map

        def sample(value, seed=0):
            rng = random.Random(seed)
            return value + rng.random()

        def main(values):
            return parallel_map(sample, values)
        """
    ) == []


# -- PURE004 argument mutation ---------------------------------------------


def test_task_mutating_its_argument():
    findings = run(
        """
        from repro.perf.executor import parallel_map

        def consume(batch):
            batch.append("done")
            return len(batch)

        def main(batches):
            return parallel_map(consume, batches)
        """
    )
    assert rule_ids(findings) == ["PURE004"]
    assert "batch" in findings[0].message


def test_task_copying_its_argument_passes():
    assert run(
        """
        from repro.perf.executor import parallel_map

        def consume(batch):
            out = list(batch)
            out.append("done")
            return len(out)

        def main(batches):
            return parallel_map(consume, batches)
        """
    ) == []


def test_unresolved_task_is_not_judged():
    # A task imported from outside the analysed file set: nothing to
    # vouch for, nothing to accuse.
    assert run(
        """
        from somewhere.else_ import mystery
        from repro.perf.executor import parallel_map

        def main(values):
            return parallel_map(mystery, values)
        """
    ) == []
