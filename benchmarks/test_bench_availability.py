"""Headline benchmark: availability over a sustained fault campaign.

Not a single paper artifact but the quantity the whole §4 demonstration
argues for: with OFTT, a monitoring system keeps delivering service
through an arbitrary mix of the demonstrated failures.  This harness runs
the Figure 3 testbed through repeated rounds of all four §4 faults (with
repairs) while sampling service state, and reports availability, total
downtime and per-fault recovery latencies.
"""

from repro.faults import AppCrash, BlueScreen, MiddlewareCrash, NodeFailure, NodeReboot
from repro.faults.campaign import Campaign
from repro.faults.injector import FaultInjector
from repro.harness.scenario import build_demo
from repro.metrics import AvailabilitySampler, summarize

from benchmarks.conftest import print_block


def run_campaign(seed: int = 71, rounds: int = 3):
    demo = build_demo(seed=seed)
    demo.start()
    demo.run_for(10_000.0)
    campaign = Campaign(demo.kernel, demo, settle_timeout=30_000.0)
    injector = FaultInjector(demo.kernel, demo)
    sampler = AvailabilitySampler()

    def sampled_run(duration):
        for _ in range(int(duration / 100.0)):
            demo.run_for(100.0)
            sampler.sample(demo.kernel.now, demo.pair.is_stable())

    fault_makers = [
        lambda n: NodeFailure(n),
        lambda n: BlueScreen(n),
        lambda n: AppCrash(n, "calltrack"),
        lambda n: MiddlewareCrash(n),
    ]
    for _round in range(rounds):
        for make_fault in fault_makers:
            target = demo.pair.primary_node()
            campaign.run_fault(make_fault(target))
            if not demo.systems[target].is_up:
                injector.inject_now(NodeReboot(target, reinstall=True))
            elif not demo.pair.engines[target].alive:
                demo.pair.reinstall_node(target)
            sampled_run(10_000.0)

    latencies = [latency for _fault, latency in campaign.latencies()]
    app = demo.primary_app()
    # Downtime = the recovery window of every fault (the sampler only
    # observes the healthy stretches, so compute this exactly).
    downtime = sum(latencies)
    availability = 1.0 - downtime / demo.kernel.now
    return {
        "faults_injected": len(campaign.records),
        "all_recovered": campaign.all_recovered(),
        "availability": round(availability, 4),
        "total_downtime_ms": round(downtime, 1),
        "recovery_latency_mean_ms": round(summarize(latencies)["mean"], 1),
        "recovery_latency_max_ms": round(summarize(latencies)["max"], 1),
        "events_generated": demo.history.event_count,
        "events_tracked": app.events_processed() if app else 0,
        "campaign_sim_time_ms": round(demo.kernel.now, 0),
    }


def test_bench_availability_campaign(benchmark):
    result = benchmark.pedantic(lambda: run_campaign(seed=71, rounds=3), rounds=1, iterations=1)
    print_block("Availability: 12 mixed §4 faults with repairs (Figure 3 testbed)", result)
    assert result["all_recovered"]
    assert result["availability"] > 0.95
    assert result["events_generated"] - result["events_tracked"] <= 3 * 3  # demo-d windows only
