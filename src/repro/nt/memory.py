"""Process address spaces and the checkpoint "memory walkthrough".

The paper checkpoints by copying "the address space (or the selected
subset) and the stack" of the application.  We model an address space as a
set of named :class:`MemoryRegion` objects — globals, heap allocations,
and one stack region per thread — each holding named variables.  The FTIM
walks these regions to capture a checkpoint.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import AccessViolation


GLOBAL = "global"
HEAP = "heap"
STACK = "stack"

_KINDS = (GLOBAL, HEAP, STACK)

#: Exact types that are immutable and therefore safe to share between a
#: region and its snapshot.  ``type()`` identity (not isinstance) keeps
#: the check cheap and conservative: a subclass falls back to deepcopy.
_IMMUTABLE_SCALARS = frozenset((str, int, float, bool, bytes, type(None)))


def copy_variables(data: Dict[str, Any]) -> Dict[str, Any]:
    """Copy a flat variable dict, cheaply when provably safe.

    Checkpoint images are overwhelmingly flat dicts of immutable scalars
    (counters, flags, payload strings).  When every value is one, a
    shallow ``dict()`` copy is semantically identical to ``deepcopy`` —
    nothing shared is mutable.  Any container (or scalar subclass) value
    sends the whole dict down the general ``deepcopy`` path, so in-place
    mutation of a held list/dict (e.g. the SCADA alarm log) can never
    leak between a region and its snapshots.
    """
    scalars = _IMMUTABLE_SCALARS
    for value in data.values():
        if type(value) not in scalars:
            # Reviewed-benign HOT004: this *is* the slow path — a dict
            # holding mutable values has no immutable carrier to cache
            # on, and correctness requires the full deep copy.
            return copy.deepcopy(data)  # oftt-lint: ok[hot-unmemoized-heavy]
    return dict(data)


class MemoryRegion:
    """A named region of a process address space.

    Variables are stored by name; values must be plain picklable Python
    data (the checkpoint layer deep-copies them).
    """

    def __init__(self, name: str, kind: str = GLOBAL) -> None:
        if kind not in _KINDS:
            raise AccessViolation(f"unknown region kind {kind!r}")
        self.name = name
        self.kind = kind
        self.protected = False
        self._data: Dict[str, Any] = {}

    def write(self, var: str, value: Any) -> None:
        """Store *value* under *var*; fails on protected regions."""
        if self.protected:
            raise AccessViolation(f"write to protected region {self.name}")
        self._data[var] = value

    def read(self, var: str) -> Any:
        """Read *var*; missing names are an access violation."""
        if var not in self._data:
            raise AccessViolation(f"read of unmapped {self.name}:{var}")
        return self._data[var]

    def delete(self, var: str) -> None:
        """Remove *var* from the region."""
        if self.protected:
            raise AccessViolation(f"write to protected region {self.name}")
        self._data.pop(var, None)

    def variables(self) -> List[str]:
        """Names stored in this region, sorted for determinism."""
        return sorted(self._data)

    def snapshot(self) -> Dict[str, Any]:
        """Copy of the region's contents (scalar fast path, else deep)."""
        return copy_variables(self._data)

    def restore(self, data: Dict[str, Any]) -> None:
        """Replace the region's contents with a copy of *data*."""
        self._data = copy_variables(data)

    def size_bytes(self) -> int:
        """Rough size estimate used for checkpoint cost modelling."""
        return sum(_estimate_size(value) for value in self._data.values()) + 16 * len(self._data)

    def __contains__(self, var: str) -> bool:
        return var in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"MemoryRegion({self.name}, kind={self.kind}, vars={len(self._data)})"


class AddressSpace:
    """The full address space of an :class:`~repro.nt.process.NTProcess`."""

    def __init__(self, owner_name: str) -> None:
        self.owner_name = owner_name
        self._regions: Dict[str, MemoryRegion] = {}
        self.map_region("globals", GLOBAL)

    # -- region management -------------------------------------------------

    def map_region(self, name: str, kind: str = HEAP) -> MemoryRegion:
        """Create a region (error if the name already exists)."""
        if name in self._regions:
            raise AccessViolation(f"region {name} already mapped in {self.owner_name}")
        region = MemoryRegion(name, kind)
        self._regions[name] = region
        return region

    def unmap_region(self, name: str) -> None:
        """Destroy a region; subsequent access faults."""
        if name not in self._regions:
            raise AccessViolation(f"unmap of unknown region {name}")
        del self._regions[name]

    def region(self, name: str) -> MemoryRegion:
        """Fetch a region by name or fault."""
        if name not in self._regions:
            raise AccessViolation(f"no region {name} in {self.owner_name}")
        return self._regions[name]

    def has_region(self, name: str) -> bool:
        """Whether *name* is mapped."""
        return name in self._regions

    def regions(self, kind: Optional[str] = None) -> Iterator[MemoryRegion]:
        """Iterate regions (optionally of one kind), sorted by name."""
        for name in sorted(self._regions):
            region = self._regions[name]
            if kind is None or region.kind == kind:
                yield region

    # -- convenience global access ------------------------------------------

    @property
    def globals(self) -> MemoryRegion:
        """The process's global-variable region (always present)."""
        return self._regions["globals"]

    def write(self, var: str, value: Any, region: str = "globals") -> None:
        """Write a variable into *region* (default globals)."""
        self.region(region).write(var, value)

    def read(self, var: str, region: str = "globals") -> Any:
        """Read a variable from *region* (default globals)."""
        return self.region(region).read(var)

    # -- walkthrough ----------------------------------------------------------

    def walkthrough(self, kinds: Optional[List[str]] = None) -> Dict[str, Dict[str, Any]]:
        """The checkpoint "memory walkthrough": snapshot region contents.

        Parameters
        ----------
        kinds:
            Region kinds to include; defaults to all kinds.
        """
        wanted = set(kinds) if kinds is not None else set(_KINDS)
        return {
            region.name: region.snapshot()
            for region in self.regions()
            if region.kind in wanted
        }

    def restore_walkthrough(self, image: Dict[str, Dict[str, Any]]) -> None:
        """Load a walkthrough image, creating missing regions as heap."""
        for region_name, data in image.items():
            if not self.has_region(region_name):
                self.map_region(region_name, HEAP)
            self.region(region_name).restore(data)

    def size_bytes(self) -> int:
        """Estimated total footprint, for checkpoint cost modelling."""
        return sum(region.size_bytes() for region in self.regions())

    def __repr__(self) -> str:
        return f"AddressSpace({self.owner_name}, regions={sorted(self._regions)})"


def _estimate_size(value: Any) -> int:
    """Crude recursive size estimate for cost modelling (not accounting)."""
    if isinstance(value, (int, float, bool)) or value is None:
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, dict):
        return 16 + sum(_estimate_size(k) + _estimate_size(v) for k, v in value.items())
    if isinstance(value, (list, tuple, set)):
        return 16 + sum(_estimate_size(item) for item in value)
    return 64
