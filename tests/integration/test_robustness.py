"""Robustness tests: lossy links, full-pair restarts, long campaigns."""

from repro.faults import AppCrash, BlueScreen, MiddlewareCrash, NodeFailure, NodeReboot
from repro.faults.campaign import Campaign
from repro.faults.injector import FaultInjector
from repro.metrics import AvailabilitySampler

from tests.core.util import make_pair_world


def test_checkpointing_tolerates_lossy_pair_link():
    """Checkpoints are fire-and-forget per interval; on a lossy link the
    backup's mirror has gaps but stays monotone and recent enough for a
    failover to succeed with bounded staleness."""
    world = make_pair_world(seed=81)
    world.start()
    world.network.links["lan0"].loss = 0.3
    world.run_for(15_000.0)
    primary = world.primary
    backup = world.backup
    app = world.pair.apps[primary]
    local_seq = world.pair.engines[primary].local_store.latest_sequence("synthetic")
    mirror_seq = world.pair.engines[backup].peer_store.latest_sequence("synthetic")
    assert mirror_seq > 0
    assert local_seq - mirror_seq <= 6  # bounded gap even at 30 % loss
    ticks_before = app.ticks()
    world.systems[primary].power_off()
    world.run_for(5_000.0)
    survivor = world.primary
    assert survivor == backup
    restored = world.pair.apps[survivor].process.address_space.read("ticks")
    # Staleness bounded by (gap + 1) checkpoint periods of progress.
    assert restored >= ticks_before - 7 * 20 - 25


def test_full_pair_outage_and_cold_restart():
    """Both machines die; both are repaired; the pair re-forms from the
    checkpointed state that survived on neither node (fresh start)."""
    world = make_pair_world(seed=82)
    world.start()
    world.run_for(5_000.0)
    injector = FaultInjector(world.kernel, world)
    for name in list(world.pair.node_names):
        injector.inject_now(NodeFailure(name))
    world.run_for(2_000.0)
    assert world.pair.primary_node() is None
    for name in list(world.pair.node_names):
        injector.inject_now(NodeReboot(name, reinstall=True))
    world.run_for(15_000.0)
    assert world.pair.is_stable()
    roles = sorted(world.pair.engines[n].role.value for n in world.pair.node_names)
    assert roles == ["backup", "primary"]


def test_long_mixed_campaign_availability():
    """A long campaign of mixed faults with repairs: overall availability
    stays high and every fault is survived."""
    world = make_pair_world(seed=83)
    world.start()
    world.run_for(3_000.0)
    campaign = Campaign(world.kernel, world, settle_timeout=20_000.0, inter_fault_gap=4_000.0)
    injector = FaultInjector(world.kernel, world)
    sampler = AvailabilitySampler()

    def sampled_run(duration):
        steps = int(duration / 100.0)
        for _ in range(steps):
            world.run_for(100.0)
            sampler.sample(world.kernel.now, world.pair.is_stable())

    fault_makers = [
        lambda n: NodeFailure(n),
        lambda n: AppCrash(n, "synthetic"),
        lambda n: BlueScreen(n),
        lambda n: MiddlewareCrash(n),
        lambda n: AppCrash(n, "synthetic"),
        lambda n: NodeFailure(n),
    ]
    for make_fault in fault_makers:
        target = world.primary
        record = campaign.run_fault(make_fault(target))
        assert record.recovered, record
        # Repair.
        if not world.systems[target].is_up:
            injector.inject_now(NodeReboot(target, reinstall=True))
        elif not world.pair.engines[target].alive:
            world.pair.reinstall_node(target)
        sampled_run(8_000.0)

    assert campaign.all_recovered()
    assert sampler.availability > 0.95
    assert sampler.total_downtime < 3_000.0
