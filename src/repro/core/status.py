"""Component status model.

The engine "reports and updates the status of each monitored component to
the system monitor" (§2.2.1).  These are the records that flow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict


class ComponentKind(enum.Enum):
    """What kind of thing a status report describes."""

    HARDWARE = "hardware"
    OPERATING_SYSTEM = "os"
    OFTT_ENGINE = "engine"
    APPLICATION = "application"
    OPC_SERVER = "opc-server"
    WATCHDOG = "watchdog"


class ComponentStatus(enum.Enum):
    """Health states a monitored component moves through."""

    STARTING = "starting"
    RUNNING = "running"
    SUSPECTED = "suspected"
    FAILED = "failed"
    RECOVERING = "recovering"
    STOPPED = "stopped"

    @property
    def is_healthy(self) -> bool:
        """RUNNING or on its way there."""
        return self in (ComponentStatus.STARTING, ComponentStatus.RUNNING, ComponentStatus.RECOVERING)


@dataclass(frozen=True)
class StatusReport:
    """One status update about one component."""

    node: str
    component: str
    kind: ComponentKind
    status: ComponentStatus
    role: str = ""
    time: float = 0.0
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_wire(self) -> dict:
        """Marshalable form for the monitor link."""
        return {
            "node": self.node,
            "component": self.component,
            "kind": self.kind.value,
            "status": self.status.value,
            "role": self.role,
            "time": self.time,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_wire(cls, data: dict) -> "StatusReport":
        """Inverse of :meth:`as_wire`."""
        return cls(
            node=data["node"],
            component=data["component"],
            kind=ComponentKind(data["kind"]),
            status=ComponentStatus(data["status"]),
            role=data["role"],
            time=data["time"],
            detail=dict(data["detail"]),
        )

    def __str__(self) -> str:
        role = f" [{self.role}]" if self.role else ""
        return f"{self.node}/{self.component}{role}: {self.status.value}"
