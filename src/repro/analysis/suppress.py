"""Suppression comments: silencing a finding where it is deliberate.

Three forms, all anchored on ``# oftt-lint:``:

* ``# oftt-lint: ok[slug]`` — trailing on a line: suppress the named
  rules (comma-separated slugs or rule ids) for findings on that line.
  On a line of its own, it covers the *next* source line instead, which
  keeps long statements readable.  ``ok`` with no bracket suppresses
  every rule on the line (use sparingly).
* ``# oftt-lint: file-ok[slug,...]`` — anywhere in the file: suppress the
  named rules for the whole file (e.g. the experiment harness is allowed
  ``ambient-io``).
* ``# oftt-lint: skip-file`` — exclude the file from analysis entirely.

Unknown rule names in a suppression are themselves reported (GEN002), so
stale annotations cannot silently rot.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity, is_known, rule

BAD_SUPPRESS_RULE = rule(
    "GEN002",
    "bad-suppression",
    Severity.ERROR,
    "gen",
    "Suppression comment names a rule that does not exist.",
)

#: Matches the directive payload after "oftt-lint:".
_DIRECTIVE = re.compile(
    r"#\s*oftt-lint:\s*(?P<verb>ok|file-ok|skip-file)\s*(?:\[(?P<rules>[^\]]*)\])?"
)

#: Sentinel meaning "all rules" in a per-line suppression.
ALL = "*"


@dataclass
class Suppressions:
    """Parsed suppression state for one file."""

    skip_file: bool = False
    file_rules: Set[str] = field(default_factory=set)  # slugs/ids silenced file-wide
    line_rules: Dict[int, Set[str]] = field(default_factory=dict)
    errors: List[Finding] = field(default_factory=list)  # GEN002 findings

    def allows(self, finding: Finding) -> bool:
        """Whether *finding* survives this file's suppressions."""
        if self.skip_file:
            return False
        tokens = {finding.rule.rule_id, finding.rule.slug}
        if self.file_rules & tokens:
            return False
        line = self.line_rules.get(finding.line, ())
        return not (ALL in line or set(line) & tokens)


def parse_suppressions(path: str, source: str) -> Suppressions:
    """Extract suppression directives from *source* via the tokenizer.

    Using :mod:`tokenize` (not a regex over raw lines) means directives
    inside string literals are ignored, so fixture snippets embedded in
    test files do not suppress anything in the host file.
    """
    result = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return result  # the walker reports the parse failure separately
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if match is None:
            continue
        verb = match.group("verb")
        had_bracket = match.group("rules") is not None
        names = [name.strip() for name in (match.group("rules") or "").split(",") if name.strip()]
        row, col = token.start
        for name in names:
            if not is_known(name):
                result.errors.append(
                    Finding(BAD_SUPPRESS_RULE, path, row, col, f"unknown rule {name!r} in suppression")
                )
        names = [name for name in names if is_known(name)]
        if verb == "skip-file":
            result.skip_file = True
        elif verb == "file-ok":
            result.file_rules.update(names)
        else:  # ok
            # Trailing comment covers its own line; a standalone comment
            # line covers the next line of code.
            lines = source.splitlines()
            prefix = lines[row - 1][:col].strip() if row - 1 < len(lines) else ""
            target = row + 1 if prefix == "" else row
            bucket = result.line_rules.setdefault(target, set())
            if had_bracket:
                # A bracket whose rules were all unknown suppresses nothing
                # (the GEN002 report above is the only effect).
                bucket.update(names)
            else:
                bucket.add(ALL)
    return result
