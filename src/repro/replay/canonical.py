"""Trace canonicalization: TraceLog -> comparable event stream.

Two runs of the same scenario are "identical" iff their canonical event
streams are equal.  Canonicalization applies three rules (documented in
REPLAY.md):

1. **Stable detail keys** — detail dicts are re-emitted with sorted keys
   so construction order never shows up as a diff.
2. **Float quantization** — every float is rounded to
   :data:`repro.simnet.trace.QUANTIZE_DECIMALS` places, absorbing
   representation noise while staying far below scheduling granularity.
3. **Per-component sequence numbers** — each event carries its ordinal
   within its component's own stream, so a divergence report can say
   "the 14th event of node2/oftt-engine" even when global interleaving
   has already drifted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

from repro.simnet.trace import TraceLog, canonical_detail, quantize


@dataclass(frozen=True)
class CanonicalEvent:
    """One trace record in canonical, comparison-ready form."""

    index: int  #: position in the full (global) stream
    time: float  #: quantized sim time
    category: str
    component: str
    event: str
    component_seq: int  #: ordinal within this component's own stream
    detail: Dict[str, Any]  #: sorted keys, quantized floats

    def key(self) -> tuple:
        """The comparison identity (everything except the global index)."""
        return (self.time, self.category, self.component, self.event, self.component_seq, self.detail)

    def as_wire(self) -> Dict[str, Any]:
        """JSON-ready form (used by the ``repro.replay/v1`` reporter)."""
        return {
            "index": self.index,
            "time": self.time,
            "category": self.category,
            "component": self.component,
            "event": self.event,
            "component_seq": self.component_seq,
            "detail": self.detail,
        }

    def render(self) -> str:
        """One-line human rendering, mirroring ``TraceRecord.__str__``."""
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return (
            f"#{self.index:<6d} [{self.time:12.3f}] {self.category:<10} "
            f"{self.component:<24} (seq {self.component_seq}) {self.event} {extras}"
        ).rstrip()


def canonicalize_trace(trace: TraceLog) -> List[CanonicalEvent]:
    """Convert a :class:`TraceLog` into its canonical event stream."""
    events: List[CanonicalEvent] = []
    component_counts: Dict[str, int] = {}
    for index, record in enumerate(trace.records):
        seq = component_counts.get(record.component, 0) + 1
        component_counts[record.component] = seq
        events.append(
            CanonicalEvent(
                index=index,
                time=quantize(record.time),
                category=record.category,
                component=record.component,
                event=record.event,
                component_seq=seq,
                detail=canonical_detail(record.detail),
            )
        )
    return events
