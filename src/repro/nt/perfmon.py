"""NT performance monitor counters.

The paper (§3.1) singles the performance monitor out as "not completely
specified and in some cases ... just misleading": the thread start address
counter "is always the pointer to a routine in NTDLL.DLL and thus can not
be used as the start address of a thread created dynamically".

We reproduce that defect on purpose: :meth:`PerfMon.thread_start_address`
returns :data:`NTDLL_STUB_ADDRESS` for every thread, so any component that
tries to identify dynamic threads via perfmon (instead of the IAT hook)
fails — exactly the dead end the OFTT authors hit.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.nt.system import NTSystem

#: The NTDLL thread-start thunk every perfmon thread entry points at.
NTDLL_STUB_ADDRESS = 0x77F0_5000


class PerfMon:
    """Read-only performance counters over an :class:`NTSystem`."""

    def __init__(self, system: "NTSystem") -> None:
        self.system = system

    def process_count(self) -> int:
        """Number of live processes."""
        return sum(1 for process in self.system.processes.values() if process.alive)

    def thread_count(self) -> int:
        """Number of live threads across all processes."""
        return sum(len(process.live_threads()) for process in self.system.processes.values() if process.alive)

    def process_names(self) -> List[str]:
        """Names of live processes, sorted."""
        return sorted(process.name for process in self.system.processes.values() if process.alive)

    def thread_ids(self, process_name: str) -> List[int]:
        """TIDs of live threads in *process_name* (all of them — perfmon
        does see dynamic threads exist, it just misreports their start)."""
        process = self.system.find_process(process_name)
        if process is None:
            return []
        return sorted(thread.tid for thread in process.live_threads())

    def thread_start_address(self, _tid: int) -> int:
        """The *misleading* counter: always the NTDLL stub (see module doc)."""
        return NTDLL_STUB_ADDRESS

    def snapshot(self) -> Dict[str, int]:
        """A coarse counter set, like one perfmon sampling pass."""
        return {
            "processes": self.process_count(),
            "threads": self.thread_count(),
            "uptime_ms": int(self.system.uptime()),
        }
