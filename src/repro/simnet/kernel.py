"""The discrete-event simulation kernel.

:class:`SimKernel` maintains a priority queue of timestamped events and a
monotonically increasing simulated clock.  Work is expressed either as a
plain scheduled callback (:meth:`SimKernel.schedule`) or as a cooperative
:class:`Process` wrapping a generator that yields
:mod:`repro.simnet.events` waitables.

Determinism: events at equal timestamps run in insertion order (a strictly
increasing sequence number breaks ties), and all randomness flows through
:class:`repro.simnet.random.RngStreams`.  Two runs with the same seed
produce identical traces.

Hot-path notes (``SimKernel.run``/``step``/``schedule``/``cancel`` are hot
roots in ``repro/analysis/hotpath.manifest``): the event queue is a
struct-of-arrays layout, not a heap of per-call handle objects.  Each
scheduled call occupies a *slot* — an index into parallel columns
(``array('d')`` times, ``array('q')`` sequence numbers, plain lists for
the callable and its argument tuple, a ``bytearray`` of cancelled flags)
— and slots are recycled through a free list, so steady-state scheduling
allocates no Python objects beyond the argument tuple the call protocol
builds anyway.

Ordering is delegated to a *calendar* structure instead of a per-event
heap: slots scheduled for the same timestamp share one bucket (a plain
list of slot indices), and a ``heapq`` of the distinct timestamps orders
the buckets.  Two facts make this both fast and exactly equivalent to
the old ``(time, seq, call)`` tuple heap:

* within a bucket, list append order *is* sequence-number order, so the
  bucket itself encodes the equal-timestamp tie-break — no comparisons
  needed at all;
* across buckets, the heap compares raw floats in C, and holds one entry
  per *distinct* timestamp rather than one per event.  Sim workloads are
  heavily collisional (periodic heartbeats, sweeps, retries), so the
  heap shrinks by an order of magnitude; even the all-unique worst case
  just degrades to a float heap, still cheaper than tuple entries.

An earlier struct-of-arrays draft kept a per-event index heap with the
sift loops in Python; it measured ~3x *slower* per comparison than C
tuple compares and was discarded — the calendar layout is what lets the
struct-of-arrays columns win (see PERF.md round 3).
"""

from __future__ import annotations

import heapq
from array import array
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import SimError
from repro.simnet.events import Timeout, Waitable

# Bound once at import so the per-event loops skip the module-attribute
# lookup (HOT006 dogfood; see ANALYSIS.md "Hot-path rules").
_heappush = heapq.heappush
_heappop = heapq.heappop

#: A schedule handle is an opaque int: the low bits address the slot, the
#: high bits carry the call's unique sequence number.  ``cancel`` checks
#: the sequence column before acting, so a handle kept past its call's
#: execution (or past compaction) can never cancel an unrelated call that
#: reused the slot — the stale-handle no-op the old per-call objects gave
#: for free.
ScheduleHandle = int

_SLOT_BITS = 28
_SLOT_MASK = (1 << _SLOT_BITS) - 1


class Interrupt(Exception):
    """Raised inside a process generator when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class Process(Waitable):
    """A cooperative process driving a generator.

    The process is itself a :class:`Waitable`: it fires with the
    generator's return value when the generator finishes, so processes can
    ``yield`` other processes to join them.
    """

    def __init__(self, kernel: "SimKernel", generator: Generator[Waitable, Any, Any], name: str = "") -> None:
        super().__init__()
        self.kernel = kernel
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.alive = True
        self.error: Optional[BaseException] = None
        self._waiting_on: Optional[Waitable] = None
        self._pending_interrupt: Optional[Interrupt] = None

    # -- lifecycle -------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the generator at its next step.

        Interrupting a finished process is a no-op, matching the semantics
        of signalling a dead thread.
        """
        if not self.alive:
            return
        self._pending_interrupt = Interrupt(cause)
        # Detach from whatever we were waiting on and resume immediately.
        self._waiting_on = None
        self.kernel.schedule(0.0, self._step, None)

    def kill(self) -> None:
        """Terminate the process without running any more of its body.

        Unlike :meth:`interrupt`, the generator gets no chance to clean up
        via ``except Interrupt`` — this models an OS-level kill.  The
        process fires with value ``None``.  A process may kill itself (a
        thread tearing down its own process): the generator is then
        abandoned at its next yield instead of closed in place.
        """
        if not self.alive:
            return
        self.alive = False
        self._waiting_on = None
        try:
            self.generator.close()
        except ValueError:
            # "generator already executing": self-kill from inside the
            # body.  _step() checks `alive` after each resume and will
            # drop the generator at its next yield.
            pass
        if not self.fired:
            self._fire(None)

    # -- stepping --------------------------------------------------------

    def _start(self) -> None:
        self.kernel.schedule(0.0, self._step, None)

    # The _waiting_on handshake with _step IS the stale-resume guard;
    # the same-tick write/read below is the designed protocol.
    # The interprocedural write-writes (alive/error/_value/... via
    # _step -> _fire from both entry points) are the same protocol:
    # _step is re-entered only through the _waiting_on guard.
    def _on_wait_fired(self, waitable: Waitable) -> None:  # oftt-lint: ok[race-write-read,ip-race-write-write]
        if self._waiting_on is waitable:
            self._waiting_on = None
            self._step(waitable.value)

    def _step(self, send_value: Any) -> None:
        if not self.alive:
            return
        if self._waiting_on is not None:
            # A stale scheduled resume (e.g. cancelled interrupt path).
            return
        try:
            if self._pending_interrupt is not None:
                interrupt, self._pending_interrupt = self._pending_interrupt, None
                target = self.generator.throw(interrupt)
            else:
                target = self.generator.send(send_value)
        except StopIteration as stop:
            self.alive = False
            self._fire(stop.value)
            return
        except Interrupt:
            # Generator chose not to handle the interrupt: it dies quietly.
            self.alive = False
            self._fire(None)
            return
        except BaseException as exc:  # noqa: BLE001 - surfaced via kernel policy
            self.alive = False
            self.error = exc
            self.kernel._on_process_error(self, exc)
            if not self.fired:
                self._fire(None)
            return
        if not self.alive:
            return  # killed itself (or was killed) while executing
        self._wait_on(target)

    def _wait_on(self, target: Waitable) -> None:
        if not isinstance(target, Waitable):
            raise SimError(f"process {self.name} yielded non-waitable {target!r}")
        target._arm(self.kernel)
        self._waiting_on = target
        target.add_callback(self._on_wait_fired)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"Process({self.name}, {state})"


class SimKernel:
    """Event loop and simulated clock.

    Parameters
    ----------
    on_error:
        Policy for uncaught exceptions inside processes: ``"raise"``
        (default; the exception propagates out of :meth:`run`) or
        ``"record"`` (stored on :attr:`process_errors`, simulation
        continues — used by fault-injection campaigns where application
        crashes are the point).
    """

    #: Compaction only kicks in past this queue size (small queues are
    #: cheap to scan; rebuilding them would cost more than it saves).
    COMPACT_MIN_SIZE = 512

    def __init__(self, on_error: str = "raise") -> None:
        if on_error not in ("raise", "record"):
            raise SimError(f"unknown error policy {on_error!r}")
        self.now: float = 0.0
        self.on_error = on_error
        self.process_errors: List[Tuple[Process, BaseException]] = []
        # Struct-of-arrays slot columns.  A slot is live while its seq
        # column entry is positive, *cancelled* while it is negative
        # (the sign bit doubles as the cancelled flag, saving a separate
        # column), and free once it is zero — so stale handles, whose
        # positive seq can no longer match, are harmless by construction.
        self._slot_times = array("d")
        self._slot_seqs = array("q")
        self._slot_callbacks: List[Optional[Callable[..., None]]] = []
        self._slot_args: List[Optional[Tuple[Any, ...]]] = []
        self._free_slots: List[int] = []
        # Calendar: one bucket (list of slots, in insertion == seq order)
        # per distinct timestamp, ordered by a heap of the raw floats.
        self._buckets: Dict[float, List[int]] = {}
        self._times_heap: List[float] = []
        # The bucket currently being drained (already popped from
        # ``_buckets``) plus the resume cursor, persisted on the kernel so
        # an exception escaping ``run`` leaves the remaining same-tick
        # events intact for the next ``run``/``step``.
        self._active_bucket: Optional[List[int]] = None
        self._active_index = 0
        self._active_time = 0.0
        self._seq = 0
        self._queued = 0
        self._cancelled_count = 0
        self._raised: Optional[BaseException] = None
        self._running = False

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> ScheduleHandle:
        """Run *callback(*args)* after *delay* simulated time units.

        Returns an opaque :data:`ScheduleHandle` accepted by
        :meth:`cancel`.  Handles stay harmless forever: cancelling an
        already-executed (or already-cancelled) call is a no-op even if
        its slot has been recycled for a newer call.
        """
        if not delay >= 0.0:
            # Also rejects NaN, which would silently corrupt the time heap.
            raise SimError(f"negative delay: {delay}")
        seq = self._seq + 1
        self._seq = seq
        time = self.now + delay
        free_slots = self._free_slots
        if free_slots:
            slot = free_slots.pop()
            self._slot_times[slot] = time
            self._slot_seqs[slot] = seq
            self._slot_callbacks[slot] = callback
            self._slot_args[slot] = args
        else:
            slot = len(self._slot_seqs)
            self._slot_times.append(time)
            self._slot_seqs.append(seq)
            self._slot_callbacks.append(callback)
            self._slot_args.append(args)
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            buckets[time] = [slot]
            _heappush(self._times_heap, time)
        else:
            bucket.append(slot)
        self._queued += 1
        return slot | (seq << _SLOT_BITS)

    def cancel(self, handle: ScheduleHandle) -> None:
        """Prevent a scheduled call from running (idempotent, stale-safe).

        Cancellation is lazy — the slot stays in its bucket and is
        skipped on drain — but the kernel counts cancelled entries so it
        can compact the calendar when they dominate (see
        :meth:`_maybe_compact`).
        """
        slot = handle & _SLOT_MASK
        seq = handle >> _SLOT_BITS
        seqs = self._slot_seqs
        if slot >= len(seqs) or seqs[slot] != seq:
            return  # already ran, cancelled, compacted, or never ours
        seqs[slot] = -seq
        cancelled = self._cancelled_count + 1
        self._cancelled_count = cancelled
        if cancelled * 2 >= self._queued >= self.COMPACT_MIN_SIZE:
            self._maybe_compact()

    def scheduled_time(self, handle: ScheduleHandle) -> Optional[float]:
        """The absolute time a live handle is armed for (None if spent).

        Debug/introspection helper: a handle is *spent* once its call has
        run, been cancelled, or been compacted away.
        """
        slot = handle & _SLOT_MASK
        seqs = self._slot_seqs
        if slot >= len(seqs) or seqs[slot] != handle >> _SLOT_BITS:
            return None
        return self._slot_times[slot]

    def _maybe_compact(self) -> None:
        """Drop lazily-cancelled slots once they are half the queue.

        Rebuilding is O(queue) and resets the cancelled fraction to
        (nearly) zero, so the amortized cost per cancellation is O(1).
        Execution order is unaffected: filtering a bucket preserves the
        insertion order of its survivors, and bucket times never move.
        The bucket currently being drained lives outside ``_buckets``
        (popped by the drain loop) and is deliberately left alone — its
        cancelled slots are skipped on drain like any others.  Buckets
        emptied by compaction stay in the calendar (their heap entry is
        still live) and are discarded when their time is reached.
        """
        if self._queued < self.COMPACT_MIN_SIZE or self._cancelled_count * 2 < self._queued:
            return
        seqs = self._slot_seqs
        callbacks = self._slot_callbacks
        args_list = self._slot_args
        free_append = self._free_slots.append
        freed = 0
        for bucket in self._buckets.values():
            survivors = [slot for slot in bucket if seqs[slot] > 0]
            if len(survivors) != len(bucket):
                for slot in bucket:
                    if seqs[slot] < 0:
                        seqs[slot] = 0
                        callbacks[slot] = None
                        args_list[slot] = None
                        free_append(slot)
                        freed += 1
                bucket[:] = survivors
        self._queued -= freed
        self._cancelled_count -= freed

    def spawn(self, generator: Generator[Waitable, Any, Any], name: str = "") -> Process:
        """Create and start a :class:`Process` around *generator*."""
        process = Process(self, generator, name=name)
        process._start()
        return process

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Convenience constructor for a :class:`Timeout` yieldable."""
        return Timeout(delay, value)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or the clock passes *until*.

        Returns the final simulated time.  With ``until`` set, the clock is
        advanced exactly to ``until`` even if the last event fired earlier,
        so back-to-back ``run`` calls tile the timeline predictably.
        """
        if self._running:
            raise SimError("kernel is not reentrant")
        self._running = True
        try:
            self._drain(until)
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
        return self.now

    def _drain(self, until: Optional[float]) -> None:
        """The hot drain loop: pop buckets in time order, fire their slots.

        A callback scheduling at the *current* time cannot touch the
        active bucket (it was popped from the calendar before draining),
        so it opens a fresh bucket at the same timestamp which the outer
        loop reaches right after — preserving strict ``(time, seq)``
        execution order without re-checking the bucket length per event.
        """
        times_heap = self._times_heap
        buckets = self._buckets
        callbacks = self._slot_callbacks
        args_list = self._slot_args
        seqs = self._slot_seqs
        free_extend = self._free_slots.extend
        while True:
            bucket = self._active_bucket
            if bucket is None:
                if not times_heap:
                    return
                time = times_heap[0]
                if until is not None and time > until:
                    return
                _heappop(times_heap)
                bucket = buckets.pop(time, None)
                if not bucket:
                    continue  # emptied by compaction; calendar entry expired
                if time < self.now:
                    raise SimError("time went backwards")
                self._active_bucket = bucket
                self._active_index = 0
                self._active_time = time
            index = self._active_index
            size = len(bucket)
            active_time = self._active_time
            cancelled_seen = 0
            # The resume cursor, queued/cancelled counts, and the free
            # list are reconciled once per bucket (or on the exception
            # path) instead of once per event; the finally block keeps
            # mid-bucket aborts resumable.  Consumed slots keep their
            # stale callback/args references until reuse — __getstate__
            # prunes them so pickled kernels stay clean.
            try:
                while index < size:
                    slot = bucket[index]
                    index += 1
                    seq = seqs[slot]
                    seqs[slot] = 0
                    if seq < 0:
                        cancelled_seen += 1
                        continue
                    self.now = active_time
                    args = args_list[slot]
                    if args:
                        callbacks[slot](*args)
                    else:
                        callbacks[slot]()
                    if self._raised is not None:
                        error, self._raised = self._raised, None
                        raise error
            finally:
                start = self._active_index
                self._queued -= index - start
                self._cancelled_count -= cancelled_seen
                self._active_index = index
                free_extend(bucket[start:index])
            self._active_bucket = None

    def step(self) -> bool:
        """Execute the single next event.  Returns False if queue is empty."""
        times_heap = self._times_heap
        buckets = self._buckets
        callbacks = self._slot_callbacks
        args_list = self._slot_args
        seqs = self._slot_seqs
        free_append = self._free_slots.append
        while True:
            bucket = self._active_bucket
            if bucket is None:
                if not times_heap:
                    return False
                time = _heappop(times_heap)
                bucket = buckets.pop(time, None)
                if not bucket:
                    continue
                if time < self.now:
                    raise SimError("time went backwards")
                self._active_bucket = bucket
                self._active_index = 0
                self._active_time = time
            index = self._active_index
            size = len(bucket)
            while index < size:
                slot = bucket[index]
                index += 1
                self._active_index = index
                seq = seqs[slot]
                seqs[slot] = 0
                free_append(slot)
                self._queued -= 1
                callback = callbacks[slot]
                args = args_list[slot]
                callbacks[slot] = None
                args_list[slot] = None
                if seq < 0:
                    self._cancelled_count -= 1
                    continue
                self.now = self._active_time
                if index >= size:
                    self._active_bucket = None
                if args:
                    callback(*args)
                else:
                    callback()
                if self._raised is not None:
                    error, self._raised = self._raised, None
                    raise error
                return True
            self._active_bucket = None

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) calls still queued.

        O(1): the kernel counts queued and cancelled slots instead of
        scanning the calendar.
        """
        return self._queued - self._cancelled_count

    # -- error policy ----------------------------------------------------

    def _on_process_error(self, process: Process, error: BaseException) -> None:
        # Post-mortem diagnostic log: grows only on process failures,
        # which either raise immediately or end the run under test.
        self.process_errors.append((process, error))  # oftt-lint: ok[unbounded-growth]
        if self.on_error == "raise":
            self._raised = error

    # -- copy/pickle -----------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Prune stale callback/args references from free slots.

        The drain loop leaves consumed slots' references in place (they
        are overwritten on reuse), which is fine in memory but would drag
        dead — possibly unpicklable — callables into a pickle.
        """
        state = dict(self.__dict__)
        seqs = state["_slot_seqs"]
        callbacks = list(state["_slot_callbacks"])
        args_list = list(state["_slot_args"])
        for slot, seq in enumerate(seqs):
            if seq == 0:
                callbacks[slot] = None
                args_list[slot] = None
        state["_slot_callbacks"] = callbacks
        state["_slot_args"] = args_list
        return state

    def __repr__(self) -> str:
        return f"SimKernel(now={self.now}, pending={self.pending})"
