"""OPC client helper.

Wraps the difference between an in-proc server (direct COM calls) and a
remote one (DCOM proxies) behind one API.  All potentially-remote
operations are written as generators to be driven with ``yield from``
inside a simulation process; in local mode they return without suspending.

Usage sketch (inside a process generator)::

    client = OpcClient(runtime, "monitor")
    yield from client.connect_remote(server_objref)
    group = yield from client.add_group("fast", update_rate=100.0)
    handles = yield from group.add_items(["plant.line1.temp"])
    group.set_callback(lambda name, batch: ...)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.com.interfaces import declare_interface
from repro.com.marshal import ObjRef
from repro.com.object import ComObject
from repro.com.runtime import ComRuntime
from repro.errors import OpcError, RpcError
from repro.nt.process import NTProcess
from repro.opc.group import IOPC_DATA_CALLBACK, OpcGroup
from repro.opc.server import OpcServer
from repro.opc.types import OpcValue

# callback(group_name, [(handle, item_id, OpcValue), ...])
ChangeCallback = Callable[[str, List[Tuple[int, str, OpcValue]]], None]


class DataCallbackSink(ComObject):
    """The client-side IOPCDataCallback implementation.

    One sink per client; it fans incoming ``OnDataChange`` batches out to
    the per-group Python callbacks.
    """

    IMPLEMENTS = (IOPC_DATA_CALLBACK,)

    def __init__(self) -> None:
        super().__init__()
        self._routes: Dict[str, ChangeCallback] = {}
        self._read_waiters: Dict[Tuple[str, int], Callable] = {}
        self._write_waiters: Dict[Tuple[str, int], Callable] = {}
        self.batches_received = 0

    def route(self, group_name: str, callback: ChangeCallback) -> None:
        """Register the handler for one group's notifications."""
        self._routes[group_name] = callback

    def unroute(self, group_name: str) -> None:
        """Drop a group's handler (idempotent)."""
        self._routes.pop(group_name, None)

    def await_read(self, group_name: str, transaction_id: int, callback: Callable) -> None:
        """Register a one-shot completion handler for an async read."""
        self._read_waiters[(group_name, transaction_id)] = callback

    def await_write(self, group_name: str, transaction_id: int, callback: Callable) -> None:
        """Register a one-shot completion handler for an async write."""
        self._write_waiters[(group_name, transaction_id)] = callback

    def OnDataChange(self, group_name: str, batch: List[Any]) -> None:
        """DCOM entry point: decode the wire batch and dispatch."""
        self.batches_received += 1
        callback = self._routes.get(group_name)
        if callback is None:
            return
        decoded = [(handle, item_id, OpcValue.from_wire(wire)) for handle, item_id, wire in batch]
        callback(group_name, decoded)

    def OnReadComplete(self, group_name: str, transaction_id: int, batch: List[Any]) -> None:
        """DCOM entry point: async read finished."""
        callback = self._read_waiters.pop((group_name, transaction_id), None)
        if callback is None:
            return
        decoded = [(handle, item_id, OpcValue.from_wire(wire)) for handle, item_id, wire in batch]
        callback(transaction_id, decoded)

    def OnWriteComplete(self, group_name: str, transaction_id: int, outcomes: List[Any]) -> None:
        """DCOM entry point: async write finished."""
        callback = self._write_waiters.pop((group_name, transaction_id), None)
        if callback is not None:
            callback(transaction_id, [(handle, bool(ok)) for handle, ok in outcomes])


class GroupHandle:
    """Uniform client-side handle to a local or remote OPC group."""

    def __init__(self, client: "OpcClient", name: str, local: Optional[OpcGroup], remote: Optional[ObjRef]) -> None:
        self._client = client
        self.name = name
        self._local = local
        self._remote_proxy = client.runtime.proxy_for(remote) if remote is not None else None
        self.handles: Dict[int, str] = {}

    @property
    def is_remote(self) -> bool:
        """Whether calls travel over DCOM."""
        return self._remote_proxy is not None

    def add_items(self, item_ids: List[str]):
        """Register items; returns (yields) the list of client handles."""
        if self._local is not None:
            handles = self._local.AddItems(item_ids)
        else:
            result = yield self._remote_proxy.AddItems(item_ids)
            handles = result.unwrap()
        for handle, item_id in zip(handles, item_ids):
            self.handles[handle] = item_id
        return handles

    def remove_items(self, handles: List[int]):
        """Unregister items."""
        if self._local is not None:
            self._local.RemoveItems(handles)
        else:
            result = yield self._remote_proxy.RemoveItems(handles)
            result.unwrap()
        for handle in handles:
            self.handles.pop(handle, None)
        return None

    def sync_read(self, handles: List[int]):
        """Read current values; returns a list of :class:`OpcValue`."""
        if self._local is not None:
            wires = self._local.SyncRead(handles)
        else:
            result = yield self._remote_proxy.SyncRead(handles)
            wires = result.unwrap()
        return [OpcValue.from_wire(wire) for wire in wires]

    def sync_write(self, writes: List[Tuple[int, Any]]):
        """Write values through the group."""
        if self._local is not None:
            self._local.SyncWrite(writes)
            return None
        result = yield self._remote_proxy.SyncWrite([list(pair) for pair in writes])
        result.unwrap()
        return None

    def set_callback(self, callback: ChangeCallback) -> None:
        """Subscribe to data changes (synchronous in both modes)."""
        self._client.sink.route(self.name, callback)
        if self._local is not None:
            self._local.SetDataCallback(self._client.sink.OnDataChange)
        else:
            self._client._ensure_sink_exported()
            # One-way registration: fire and forget, like Advise.
            self._remote_proxy.call_oneway("SetDataCallback", self._client.sink_ref)

    def async_read(self, handles: List[int], callback: Callable):
        """Start an async read; *callback(transaction_id, values)* fires
        on completion.  Returns (yields) the transaction id.

        A data callback must be set first (the completion arrives through
        the same sink, as in OPC's IOPCAsyncIO2 contract).
        """
        if self._local is not None:
            transaction_id = self._local.AsyncRead(handles)
        else:
            self._client._ensure_sink_exported()
            result = yield self._remote_proxy.AsyncRead(handles)
            transaction_id = result.unwrap()
        self._client.sink.await_read(self.name, transaction_id, callback)
        return transaction_id

    def async_write(self, writes: List[Tuple[int, Any]], callback: Callable):
        """Start an async write; *callback(transaction_id, outcomes)*
        fires on completion with per-handle success flags."""
        if self._local is not None:
            transaction_id = self._local.AsyncWrite(list(writes))
        else:
            self._client._ensure_sink_exported()
            result = yield self._remote_proxy.AsyncWrite([list(pair) for pair in writes])
            transaction_id = result.unwrap()
        self._client.sink.await_write(self.name, transaction_id, callback)
        return transaction_id

    def set_active(self, active: bool):
        """Enable/disable notifications."""
        if self._local is not None:
            self._local.SetActive(active)
            return None
        result = yield self._remote_proxy.SetActive(active)
        result.unwrap()
        return None

    def __repr__(self) -> str:
        mode = "remote" if self.is_remote else "local"
        return f"GroupHandle({self.name}, {mode}, items={len(self.handles)})"


class OpcClient:
    """An OPC client application's connection to one server."""

    def __init__(self, runtime: ComRuntime, name: str, process: Optional[NTProcess] = None) -> None:
        self.runtime = runtime
        self.name = name
        self.process = process
        self.sink = DataCallbackSink()
        self.sink_ref: Optional[ObjRef] = None
        self._server_local: Optional[OpcServer] = None
        self._server_proxy = None
        self.groups: Dict[str, GroupHandle] = {}

    # -- connection -----------------------------------------------------------

    def connect_local(self, server: OpcServer) -> None:
        """Attach to an in-proc server."""
        self._server_local = server
        self._server_proxy = None

    def connect_remote(self, server_ref: ObjRef):
        """Attach to a remote server; verifies it answers GetStatus."""
        self._server_local = None
        self._server_proxy = self.runtime.proxy_for(server_ref)
        result = yield self._server_proxy.GetStatus()
        return result.unwrap()

    @property
    def connected(self) -> bool:
        """Whether a server is attached."""
        return self._server_local is not None or self._server_proxy is not None

    def _require_connection(self) -> None:
        if not self.connected:
            raise OpcError(f"client {self.name} is not connected")

    def _ensure_sink_exported(self) -> None:
        if self.sink_ref is None:
            self.sink_ref = self.runtime.export(self.sink, label=f"{self.name}.sink", process=self.process)

    # -- server operations ---------------------------------------------------------

    def add_group(self, name: str, update_rate: float = 100.0, deadband: float = 0.0):
        """Create a group on the server; returns (yields) a GroupHandle."""
        self._require_connection()
        if self._server_local is not None:
            group = self._server_local.AddGroup(name, update_rate=update_rate, deadband=deadband)
            handle = GroupHandle(self, name, local=group, remote=None)
        else:
            result = yield self._server_proxy.AddGroupRemote(name, update_rate, deadband)
            handle = GroupHandle(self, name, local=None, remote=result.unwrap())
        self.groups[name] = handle
        return handle

    def read_items(self, item_ids: List[str]):
        """Group-less read (IOPCItemIO::Read)."""
        self._require_connection()
        if self._server_local is not None:
            wires = self._server_local.Read(item_ids)
        else:
            result = yield self._server_proxy.Read(item_ids)
            wires = result.unwrap()
        return [OpcValue.from_wire(wire) for wire in wires]

    def write_items(self, writes: List[Tuple[str, Any]]):
        """Group-less write (IOPCItemIO::WriteVQT)."""
        self._require_connection()
        if self._server_local is not None:
            self._server_local.WriteVQT(list(writes))
            return None
        result = yield self._server_proxy.WriteVQT([list(pair) for pair in writes])
        result.unwrap()
        return None

    def server_status(self):
        """GetStatus through either path."""
        self._require_connection()
        if self._server_local is not None:
            return self._server_local.GetStatus()
        result = yield self._server_proxy.GetStatus()
        return result.unwrap()

    def __repr__(self) -> str:
        mode = "local" if self._server_local is not None else ("remote" if self._server_proxy else "disconnected")
        return f"OpcClient({self.name}, {mode}, groups={sorted(self.groups)})"
