"""Win32-like API surface, dispatched through the process IAT.

The subset modelled is the one OFTT's checkpointing depends on:

* ``CreateThread`` / ``ExitThread`` / ``TerminateThread``
* ``GetThreadContext`` / ``SetThreadContext``
* ``EnumProcessThreads`` — which, matching the paper's complaint, only
  reports *statically created* threads.  Dynamically created threads can
  only be learned by patching the ``CreateThread`` IAT slot
  (:meth:`Kernel32.install_thread_tracker`).
* Watchdog-ish timer helpers built on the simulation kernel.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import NTError, ThreadDead
from repro.nt.process import NTProcess
from repro.nt.thread import NTThread, ThreadBody, ThreadContext, ThreadState


class ThreadHandle:
    """An opaque handle to a thread, as returned by ``CreateThread``."""

    def __init__(self, thread: NTThread) -> None:
        self._thread = thread
        self.closed = False

    @property
    def tid(self) -> int:
        """Thread id of the referenced thread."""
        return self._thread.tid

    def deref(self) -> NTThread:
        """Resolve the handle; closed handles fault."""
        if self.closed:
            raise ThreadDead(f"use of closed handle for tid {self._thread.tid}")
        return self._thread

    def close(self) -> None:
        """Close the handle (CloseHandle)."""
        self.closed = True

    def __repr__(self) -> str:
        return f"ThreadHandle(tid={self._thread.tid}, closed={self.closed})"


class Kernel32:
    """Per-process Win32 API facade.

    Every call is routed through the process's IAT, so hooks installed
    with :meth:`ImportAddressTable.patch` observe arguments and results.
    """

    APIS = (
        "CreateThread",
        "ExitThread",
        "TerminateThread",
        "GetThreadContext",
        "SetThreadContext",
        "EnumProcessThreads",
        "OpenThread",
        "CloseHandle",
        "GetCurrentProcessId",
    )

    def __init__(self, process: NTProcess) -> None:
        self.process = process
        implementations: Dict[str, Callable[..., Any]] = {
            "CreateThread": self._create_thread,
            "ExitThread": self._exit_thread,
            "TerminateThread": self._terminate_thread,
            "GetThreadContext": self._get_thread_context,
            "SetThreadContext": self._set_thread_context,
            "EnumProcessThreads": self._enum_process_threads,
            "OpenThread": self._open_thread,
            "CloseHandle": self._close_handle,
            "GetCurrentProcessId": self._get_current_process_id,
        }
        for api_name in self.APIS:
            process.iat.register(api_name, implementations[api_name])

    # -- public call interface ---------------------------------------------

    def call(self, api_name: str, *args: Any) -> Any:
        """Invoke an API through the IAT (the only supported entry path)."""
        return self.process.iat.call(api_name, *args)

    # Convenience wrappers used by application code.

    def CreateThread(self, name: str, body: Optional[ThreadBody] = None) -> ThreadHandle:
        """Create a *dynamic* thread (invisible to EnumProcessThreads)."""
        return self.call("CreateThread", name, body)

    def GetThreadContext(self, handle: ThreadHandle) -> ThreadContext:
        """Capture a thread's register context."""
        return self.call("GetThreadContext", handle)

    def EnumProcessThreads(self) -> List[ThreadHandle]:
        """Handles of statically created, still-live threads only."""
        return self.call("EnumProcessThreads")

    # -- helper for OFTT: the IAT interception trick -------------------------

    def install_thread_tracker(self) -> List[ThreadHandle]:
        """Patch ``CreateThread`` and return a live list of tracked handles.

        This is the paper's mechanism for learning dynamically created
        thread handles: the returned list grows as the application creates
        threads after the patch is installed.
        """
        tracked: List[ThreadHandle] = []

        def hook(_api: str, _args: Tuple[Any, ...], result: Any) -> None:
            tracked.append(result)

        self.process.iat.patch("CreateThread", hook)
        return tracked

    # -- implementations -------------------------------------------------------

    def _create_thread(self, name: str, body: Optional[ThreadBody]) -> ThreadHandle:
        thread = self.process.create_thread(name, body=body, dynamic=True)
        return ThreadHandle(thread)

    def _exit_thread(self, handle: ThreadHandle, code: int = 0) -> None:
        handle.deref().terminate(code)

    def _terminate_thread(self, handle: ThreadHandle, code: int = 1) -> None:
        handle.deref().terminate(code)

    def _get_thread_context(self, handle: ThreadHandle) -> ThreadContext:
        return handle.deref().capture_context()

    def _set_thread_context(self, handle: ThreadHandle, context: ThreadContext) -> None:
        thread = handle.deref()
        thread.context = context.snapshot()

    def _enum_process_threads(self) -> List[ThreadHandle]:
        handles = []
        for tid in self.process.static_thread_tids:
            thread = self.process.threads.get(tid)
            if thread is not None and thread.state is not ThreadState.TERMINATED:
                handles.append(ThreadHandle(thread))
        return handles

    def _open_thread(self, tid: int) -> ThreadHandle:
        thread = self.process.threads.get(tid)
        if thread is None:
            raise NTError(f"OpenThread: no thread {tid} in {self.process.name}")
        if thread.dynamic:
            # Matching the paper: the handle of a dynamically created
            # thread "can not be accessed directly through the standard
            # Win32 APIs".
            raise NTError(f"OpenThread: tid {tid} was created dynamically; use the IAT hook")
        return ThreadHandle(thread)

    def _close_handle(self, handle: ThreadHandle) -> None:
        handle.close()

    def _get_current_process_id(self) -> int:
        return self.process.pid
