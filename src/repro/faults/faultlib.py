"""The fault catalogue.

Every fault targets an :class:`~repro.faults.injector.Environment` — a
duck-typed bundle exposing ``systems`` (name → NTSystem), ``network``,
optionally ``pair`` (the OfttPair) and ``fieldbuses``.  Faults are
idempotent-ish: applying one to an already-failed target is a no-op
rather than an error, so randomized campaigns compose safely.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import FaultInjectionError
from repro.nt.system import SystemState


class Fault:
    """Base fault: subclasses implement :meth:`apply`."""

    #: §4 demo letter this fault reproduces ("" for extensions).
    demo_id = ""

    def apply(self, env: Any) -> None:
        """Inject the fault into *env* now."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner."""
        return type(self).__name__

    def _system(self, env: Any, node: str):
        if node not in env.systems:
            raise FaultInjectionError(f"no such node {node}")
        return env.systems[node]

    def __repr__(self) -> str:
        return self.describe()


class NodeFailure(Fault):
    """§4 demo (a): the machine loses power."""

    demo_id = "a"

    def __init__(self, node: str) -> None:
        self.node = node

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        if system.state is not SystemState.OFF:
            system.power_off()

    def describe(self) -> str:
        return f"node failure (power-off) on {self.node}"


class BlueScreen(Fault):
    """§4 demo (b): NT crash — the blue screen of death."""

    demo_id = "b"

    def __init__(self, node: str) -> None:
        self.node = node

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        if system.state is SystemState.UP:
            system.bluescreen()

    def describe(self) -> str:
        return f"NT crash (bluescreen) on {self.node}"


class AppCrash(Fault):
    """§4 demo (c): the application process dies."""

    demo_id = "c"

    def __init__(self, node: str, process_name: str) -> None:
        self.node = node
        self.process_name = process_name

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        process = system.find_process(self.process_name)
        if process is not None and process.alive:
            process.kill(code=-9)

    def describe(self) -> str:
        return f"application failure: {self.process_name} on {self.node}"


class TransientAppCrash(AppCrash):
    """A crash expected to be transient (exercises LOCAL_RESTART rules)."""

    demo_id = ""

    def describe(self) -> str:
        return f"transient application failure: {self.process_name} on {self.node}"


class StickyAppCrash(AppCrash):
    """A crash that re-kills the process for *duration* ms.

    Models a persistent software fault (corrupt install, poison input
    replayed from the checkpoint): every relaunch on the same node dies
    again until the fault expires.  Local-restart-only policies burn
    the whole duration; escalating policies move the app to the peer,
    where the fault does not follow.  A stomp loop re-checks every
    *recheck* ms via the system kernel; it disarms itself when the
    duration elapses or the machine goes down.
    """

    def __init__(
        self, node: str, process_name: str, duration: float = 3_000.0, recheck: float = 50.0
    ) -> None:
        if duration <= 0.0:
            raise FaultInjectionError(f"sticky-crash duration must be positive, got {duration}")
        if recheck <= 0.0:
            raise FaultInjectionError(f"sticky-crash recheck must be positive, got {recheck}")
        super().__init__(node, process_name)
        self.duration = duration
        self.recheck = recheck
        self._armed = False

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        if self._armed:
            return
        self._armed = True
        kernel = system.kernel
        expires_at = kernel.now + self.duration

        def stomp() -> None:
            if kernel.now >= expires_at or system.state is not SystemState.UP:
                return
            process = system.find_process(self.process_name)
            if process is not None and process.alive:
                process.kill(code=-9)
            kernel.schedule(self.recheck, stomp)

        stomp()

    def describe(self) -> str:
        return f"sticky application failure: {self.process_name} on {self.node} for {self.duration}ms"


class AppHang(Fault):
    """The application wedges: process alive, threads stuck (heartbeats stop)."""

    def __init__(self, node: str, process_name: str) -> None:
        self.node = node
        self.process_name = process_name

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        process = system.find_process(self.process_name)
        if process is not None and process.alive:
            process.hang()

    def describe(self) -> str:
        return f"application hang: {self.process_name} on {self.node}"


class MiddlewareCrash(Fault):
    """§4 demo (d): the OFTT engine process dies."""

    demo_id = "d"

    def __init__(self, node: str) -> None:
        self.node = node

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        process = system.find_process("oftt-engine")
        if process is not None and process.alive:
            process.kill(code=-9)

    def describe(self) -> str:
        return f"OFTT middleware failure on {self.node}"


class LinkDown(Fault):
    """An entire Ethernet segment goes down."""

    def __init__(self, link: str) -> None:
        self.link = link

    def apply(self, env: Any) -> None:
        if self.link not in env.network.links:
            raise FaultInjectionError(f"no such link {self.link}")
        env.network.links[self.link].up = False

    def describe(self) -> str:
        return f"link down: {self.link}"


class NicDown(Fault):
    """One node's NIC on one segment fails (dual-network experiments)."""

    def __init__(self, node: str, link: str) -> None:
        self.node = node
        self.link = link

    def apply(self, env: Any) -> None:
        env.network.nodes[self.node].nic_down(self.link)

    def describe(self) -> str:
        return f"NIC down: {self.node} on {self.link}"


class NetworkPartition(Fault):
    """Partition every segment between two node groups."""

    def __init__(self, side_a: List[str], side_b: List[str]) -> None:
        self.side_a = list(side_a)
        self.side_b = list(side_b)

    def apply(self, env: Any) -> None:
        env.partitions.split_all(self.side_a, self.side_b)

    def describe(self) -> str:
        return f"network partition: {self.side_a} | {self.side_b}"


class FieldbusFailure(Fault):
    """The industrial network to the PLC devices fails."""

    def __init__(self, bus_name: str) -> None:
        self.bus_name = bus_name

    def apply(self, env: Any) -> None:
        buses = getattr(env, "fieldbuses", {})
        if self.bus_name not in buses:
            raise FaultInjectionError(f"no such fieldbus {self.bus_name}")
        buses[self.bus_name].fail()

    def describe(self) -> str:
        return f"fieldbus failure: {self.bus_name}"


class NodeReboot(Fault):
    """Power-cycle a node and (optionally) reinstall its OFTT stack.

    Models the repair action after demos (a)/(b): the machine comes back,
    the NT services restart, and the node rejoins the pair as backup.
    """

    def __init__(self, node: str, reinstall: bool = True, extra_delay: float = 0.0) -> None:
        self.node = node
        self.reinstall = reinstall
        self.extra_delay = extra_delay

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        if system.state is SystemState.BOOTING:
            # Already power-cycling; a second reboot while the machine is
            # coming up is a no-op (double-apply safety for campaigns).
            return
        if system.state is SystemState.UP:
            system.power_off()
        system.reboot(extra_delay=self.extra_delay)
        if self.reinstall and getattr(env, "pair", None) is not None:
            node = self.node

            def rejoin(booted_system) -> None:
                # One-shot: boot callbacks persist across reboots, and a
                # second reinstall on the same boot would collide.
                booted_system.on_boot.remove(rejoin)
                env.pair.reinstall_node(node)

            system.on_boot.append(rejoin)

    def describe(self) -> str:
        return f"reboot {self.node} (reinstall={self.reinstall})"


class ReinstallMiddleware(Fault):
    """Restart the OFTT stack on a node whose machine stayed up.

    The repair action after :class:`MiddlewareCrash`: the NT service
    manager relaunches the engine, which rejoins the pair.  No-op when
    the machine is down (a reboot will reinstall via its boot hook) or
    when the engine is already alive.
    """

    def __init__(self, node: str) -> None:
        self.node = node

    def apply(self, env: Any) -> None:
        pair = getattr(env, "pair", None)
        if pair is None:
            return
        system = self._system(env, self.node)
        if system.state is not SystemState.UP:
            return
        engine = pair.engines.get(self.node)
        if engine is not None and engine.alive:
            return
        pair.reinstall_node(self.node)

    def describe(self) -> str:
        return f"reinstall OFTT middleware on {self.node}"


class AsymmetricPartition(Fault):
    """One-way connectivity loss: *sources* can no longer reach *dests*.

    Unlike :class:`NetworkPartition` the reverse direction keeps working,
    so A hears B's heartbeats while B declares A dead — the classic
    asymmetric-partition split-brain recipe.
    """

    def __init__(self, sources: List[str], dests: List[str]) -> None:
        self.sources = list(sources)
        self.dests = list(dests)

    def apply(self, env: Any) -> None:
        for source in self.sources:
            for dest in self.dests:
                if source != dest:
                    env.network.block_direction(source, dest)

    def describe(self) -> str:
        return f"asymmetric partition: {self.sources} -/-> {self.dests}"


class HealNetwork(Fault):
    """Repair action: heal all partitions and lift directional blocks.

    Restores two-way reachability on every segment.  Link-quality
    degradations (corruption, duplication, gray delay, clock skew) have
    their own paired repair faults and are left alone.
    """

    def apply(self, env: Any) -> None:
        env.partitions.heal_all()
        env.network.clear_blocks()

    def describe(self) -> str:
        return "heal network (partitions + directional blocks)"


class MessageCorruption(Fault):
    """Frames on one segment fail their checksum with some probability.

    Detected corruption: the receiver discards the frame, so the effect
    is loss that MSMQ/DCOM retry layers must absorb.  Probability 0
    repairs the link.
    """

    def __init__(self, link: str, probability: float) -> None:
        if probability < 0.0 or probability > 1.0:
            raise FaultInjectionError(f"corruption probability must be in [0, 1], got {probability}")
        self.link = link
        self.probability = probability

    def apply(self, env: Any) -> None:
        if self.link not in env.network.links:
            raise FaultInjectionError(f"no such link {self.link}")
        env.network.set_corruption(self.link, self.probability)

    def describe(self) -> str:
        return f"message corruption on {self.link} (p={self.probability})"


class MessageDuplication(Fault):
    """Frames on one segment are delivered twice with some probability.

    Exercises receiver-side dedup (MSMQ seen-ids) and idempotency of
    heartbeat/checkpoint handlers.  Probability 0 repairs the link.
    """

    def __init__(self, link: str, probability: float) -> None:
        if probability < 0.0 or probability > 1.0:
            raise FaultInjectionError(f"duplication probability must be in [0, 1], got {probability}")
        self.link = link
        self.probability = probability

    def apply(self, env: Any) -> None:
        if self.link not in env.network.links:
            raise FaultInjectionError(f"no such link {self.link}")
        env.network.set_duplication(self.link, self.probability)

    def describe(self) -> str:
        return f"message duplication on {self.link} (p={self.probability})"


class GrayNode(Fault):
    """Fail-slow host: every frame the node sends is delayed by *delay* ms.

    The machine is up and its software runs, but its traffic straggles —
    the gray-failure mode that trips naive timeout-based detectors.
    Delay 0 repairs the node.
    """

    def __init__(self, node: str, delay: float) -> None:
        if delay < 0.0:
            raise FaultInjectionError(f"gray-node delay must be non-negative, got {delay}")
        self.node = node
        self.delay = delay

    def apply(self, env: Any) -> None:
        self._system(env, self.node)  # validate the node exists
        env.network.set_egress_delay(self.node, self.delay)

    def describe(self) -> str:
        return f"gray node: {self.node} egress +{self.delay}ms"


class ClockSkew(Fault):
    """Stretch one node's OFTT timer periods by *scale*.

    scale > 1 models a slow clock: heartbeats and status reports leave
    the node late relative to the peer's (true-time) timeouts.  Scale 1
    repairs the node.
    """

    def __init__(self, node: str, scale: float) -> None:
        if scale <= 0.0:
            raise FaultInjectionError(f"clock-skew scale must be positive, got {scale}")
        self.node = node
        self.scale = scale

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        system.clock_scale = self.scale

    def describe(self) -> str:
        return f"clock skew on {self.node} (x{self.scale})"


class CrashDuringCheckpoint(Fault):
    """Bluescreen a node the instant its engine next submits a checkpoint.

    Exercises the §2.2.2 recovery window: the checkpoint is on the wire
    (or lost to a concurrent partition) when the primary dies, and the
    backup must resume from whichever sequence number it last stored.
    Arms a one-shot hook; re-applying while armed (or after the engine
    died) is a no-op.
    """

    def __init__(self, node: str) -> None:
        self.node = node
        self._armed = False

    def apply(self, env: Any) -> None:
        pair = getattr(env, "pair", None)
        if pair is None or self._armed:
            return
        engine = pair.engines.get(self.node)
        if engine is None or not engine.alive:
            return
        system = self._system(env, self.node)
        self._armed = True

        def crash(eng, checkpoint) -> None:
            if crash in engine.on_checkpoint_submit:
                engine.on_checkpoint_submit.remove(crash)
            if system.state is SystemState.UP:
                system.bluescreen()

        # One-shot: the crash closure removes itself from the hook list
        # on first fire (see above), a release the static search cannot
        # attribute to a teardown method.
        engine.on_checkpoint_submit.append(crash)  # oftt-lint: ok[leaked-subscription]

    def describe(self) -> str:
        return f"crash during checkpoint on {self.node}"
