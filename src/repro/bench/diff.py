"""``oftt-bench diff`` — compare two saved ``repro.bench/v1`` reports.

The report schema splits every bench into a deterministic ``work`` half
and a run-varying ``measured`` half (see :mod:`repro.bench.report`), and
the diff treats them accordingly:

* **work** halves must be byte-identical.  Any difference — a bench
  added or removed, a count changed, a profile/jobs mismatch — means the
  two reports did not execute the same workload, so their measurements
  are not comparable and the diff fails regardless of the numbers.
* **measured** halves are compared metric by metric against a relative
  noise threshold (default ``--threshold 0.25``: a metric must move 25 %
  in the bad direction to count).  Keys ending in ``_per_s`` and the
  ``speedup`` key are higher-is-better; other keys ending in ``_s`` are
  wall-clock style lower-is-better; anything else is reported but never
  gates.

Exit codes follow the analyzer's convention: ``0`` clean, ``1`` at
least one regression or work mismatch, ``2`` usage error (missing file,
wrong schema).
"""

from __future__ import annotations

# oftt-lint: file-ok[ambient-io] -- the diff driver reads saved reports
# from disk; that is its job.

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.report import SCHEMA, deterministic_view, render_json

#: A metric must move this far (relative) in the bad direction to gate.
DEFAULT_THRESHOLD = 0.25


class BenchDiffError(Exception):
    """Usage-level failure: unreadable report, wrong schema."""


@dataclass(frozen=True)
class MetricDelta:
    """One measured metric compared across the two reports."""

    bench: str
    key: str
    old: float
    new: float
    direction: str  # "higher", "lower", or "neutral"

    @property
    def change(self) -> Optional[float]:
        """Relative change (new - old) / old, None when old == 0."""
        if self.old == 0:
            return None
        return (self.new - self.old) / self.old

    def regressed(self, threshold: float) -> bool:
        change = self.change
        if change is None or self.direction == "neutral":
            return False
        if self.direction == "higher":
            return change < -threshold
        return change > threshold

    def improved(self, threshold: float) -> bool:
        change = self.change
        if change is None or self.direction == "neutral":
            return False
        if self.direction == "higher":
            return change > threshold
        return change < -threshold


@dataclass
class DiffResult:
    work_mismatches: List[str] = field(default_factory=list)
    deltas: List[MetricDelta] = field(default_factory=list)

    def regressions(self, threshold: float) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed(threshold)]

    def improvements(self, threshold: float) -> List[MetricDelta]:
        return [d for d in self.deltas if d.improved(threshold)]


def metric_direction(key: str) -> str:
    """Which way is good for a measured key (see module docstring)."""
    if key.endswith("_per_s") or key == "speedup":
        return "higher"
    if key.endswith("_s"):
        return "lower"
    return "neutral"


def load_report(path: str) -> Dict[str, Any]:
    """Read and schema-check one saved report."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as exc:
        raise BenchDiffError(f"cannot read {path}: {exc.strerror or exc}") from exc
    except ValueError as exc:
        raise BenchDiffError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(report, dict) or report.get("schema") != SCHEMA:
        raise BenchDiffError(
            f"{path} is not a {SCHEMA} report (schema={report.get('schema')!r})"
            if isinstance(report, dict) else f"{path} is not a {SCHEMA} report"
        )
    return report


def _work_mismatches(old: Dict[str, Any], new: Dict[str, Any]) -> List[str]:
    """Itemized reasons the deterministic halves differ (empty if none)."""
    if render_json(deterministic_view(old)) == render_json(deterministic_view(new)):
        return []
    mismatches: List[str] = []
    for key in ("profile", "jobs"):
        if old.get(key) != new.get(key):
            mismatches.append(f"{key}: {old.get(key)!r} != {new.get(key)!r}")
    old_work = {bench["name"]: bench.get("work", {}) for bench in old["benches"]}
    new_work = {bench["name"]: bench.get("work", {}) for bench in new["benches"]}
    for name in sorted(set(old_work) | set(new_work)):
        if name not in new_work:
            mismatches.append(f"bench {name}: only in old report")
        elif name not in old_work:
            mismatches.append(f"bench {name}: only in new report")
        elif old_work[name] != new_work[name]:
            keys = sorted(
                key for key in set(old_work[name]) | set(new_work[name])
                if old_work[name].get(key) != new_work[name].get(key)
            )
            mismatches.append(f"bench {name}: work differs ({', '.join(keys)})")
    if not mismatches:  # differs somewhere the itemizer does not model
        mismatches.append("deterministic views differ")
    return mismatches


def diff_reports(old: Dict[str, Any], new: Dict[str, Any]) -> DiffResult:
    """Compare two loaded reports; thresholds are applied by the caller."""
    result = DiffResult(work_mismatches=_work_mismatches(old, new))
    old_measured = {bench["name"]: bench.get("measured", {}) for bench in old["benches"]}
    new_measured = {bench["name"]: bench.get("measured", {}) for bench in new["benches"]}
    for name in sorted(set(old_measured) & set(new_measured)):
        shared = set(old_measured[name]) & set(new_measured[name])
        for key in sorted(shared):
            old_value, new_value = old_measured[name][key], new_measured[name][key]
            if isinstance(old_value, (int, float)) and isinstance(new_value, (int, float)):
                result.deltas.append(MetricDelta(
                    name, key, float(old_value), float(new_value), metric_direction(key),
                ))
    return result


def _format_delta(delta: MetricDelta, threshold: float) -> str:
    change = delta.change
    moved = "  ?   " if change is None else f"{change:+6.1%}"
    tag = "ok        "
    if delta.regressed(threshold):
        tag = "REGRESSION"
    elif delta.improved(threshold):
        tag = "improved  "
    elif delta.direction == "neutral":
        tag = "info      "
    return (
        f"  {tag} {delta.bench}.{delta.key}: "
        f"{delta.old:g} -> {delta.new:g}  ({moved})"
    )


def render_diff(
    old_path: str, new_path: str, result: DiffResult, threshold: float
) -> Tuple[str, int]:
    """(report text, exit code) for a computed diff."""
    lines = [f"bench diff: {old_path} -> {new_path} (threshold {threshold:.0%})"]
    if result.work_mismatches:
        lines.append("work: MISMATCH — reports did not run the same workload")
        lines.extend(f"  {reason}" for reason in result.work_mismatches)
    else:
        lines.append("work: identical")
    regressions = result.regressions(threshold)
    improvements = result.improvements(threshold)
    if result.deltas:
        lines.append("measured:")
        lines.extend(_format_delta(delta, threshold) for delta in result.deltas)
    lines.append(
        f"{len(regressions)} regression(s), {len(improvements)} improvement(s), "
        f"{len(result.deltas) - len(regressions) - len(improvements)} within noise"
    )
    failed = bool(result.work_mismatches) or bool(regressions)
    return "\n".join(lines), 1 if failed else 0


def latest_pair(root: str) -> Optional[Tuple[str, str]]:
    """The two highest-numbered ``BENCH_<n>.json`` in *root*, oldest first.

    None when fewer than two exist — a fresh clone carries a single
    baseline, and ``make bench-diff`` must not fail there.
    """
    numbered: List[Tuple[int, str]] = []
    for name in sorted(os.listdir(root)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            digits = name[len("BENCH_"):-len(".json")]
            if digits.isdigit():
                numbered.append((int(digits), os.path.join(root, name)))
    if len(numbered) < 2:
        return None
    numbered.sort()
    return numbered[-2][1], numbered[-1][1]
