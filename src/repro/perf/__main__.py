"""Entry point for ``python -m repro.perf``."""

import sys

from repro.perf.cli import main

if __name__ == "__main__":
    sys.exit(main())
