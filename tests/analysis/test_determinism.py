"""Self-tests for the determinism pass: each rule fires on its fixture
and stays quiet on the sanctioned equivalent."""

from __future__ import annotations

from repro.analysis import determinism

from tests.analysis.util import analyze, rule_ids


def det(source: str):
    return analyze(source, determinism.run)


# -- DET001 wall-clock ---------------------------------------------------


def test_wall_clock_fires_on_time_time():
    findings = det(
        """
        import time

        def stamp(kernel):
            return time.time()
        """
    )
    assert rule_ids(findings) == ["DET001"]
    assert "time.time" in findings[0].message


def test_wall_clock_fires_on_datetime_now_and_monotonic():
    findings = det(
        """
        import time
        from datetime import datetime

        def stamps():
            return datetime.now(), time.monotonic()
        """
    )
    assert rule_ids(findings) == ["DET001", "DET001"]


def test_wall_clock_quiet_on_kernel_now():
    assert det(
        """
        def stamp(kernel):
            return kernel.now
        """
    ) == []


# -- DET002 unseeded randomness ------------------------------------------


def test_unseeded_random_fires_on_module_level_draws():
    findings = det(
        """
        import random

        def pick(options):
            random.shuffle(options)
            return random.choice(options)
        """
    )
    assert rule_ids(findings) == ["DET002", "DET002"]


def test_unseeded_random_fires_on_numpy_global_rng():
    findings = det(
        """
        import numpy.random as npr

        def noise():
            return npr.normal()
        """
    )
    assert rule_ids(findings) == ["DET002"]


def test_unseeded_random_fires_on_seedless_random_instance():
    findings = det(
        """
        import random

        def fresh():
            return random.Random()
        """
    )
    assert rule_ids(findings) == ["DET002"]


def test_unseeded_random_quiet_on_rng_streams_and_seeded_instance():
    assert det(
        """
        import random

        def draws(rng):
            stream = rng.stream("network")
            backup = random.Random(rng.seed)
            return stream.random(), backup.random()
        """
    ) == []


# -- DET003 entropy ------------------------------------------------------


def test_entropy_fires_on_urandom_uuid4_secrets():
    findings = det(
        """
        import os
        import secrets
        import uuid

        def token():
            return os.urandom(8), uuid.uuid4(), secrets.token_hex(4)
        """
    )
    assert rule_ids(findings) == ["DET003", "DET003", "DET003"]


def test_entropy_quiet_on_deterministic_guid():
    assert det(
        """
        from repro.com.guids import guid_from_name

        def make_id(name):
            return guid_from_name(name)
        """
    ) == []


# -- DET004 unordered fan-out --------------------------------------------


def test_unordered_fanout_fires_on_set_literal_loop():
    findings = det(
        """
        def fan_out(kernel, tick):
            for name in {"a", "b"}:
                kernel.schedule(1.0, tick, name)
        """
    )
    assert rule_ids(findings) == ["DET004"]


def test_unordered_fanout_fires_on_set_typed_attribute():
    findings = det(
        """
        class Hub:
            def __init__(self):
                self.members = set()

            def fan_out(self):
                for member in self.members:
                    self.kernel.schedule(0.0, member.poke)
        """
    )
    assert rule_ids(findings) == ["DET004"]


def test_unordered_fanout_fires_on_keys_of_set_expression():
    findings = det(
        """
        def fan_out(kernel, tick, nodes):
            for name in set(nodes) | {"spare"}:
                kernel.schedule(1.0, tick, name)
        """
    )
    assert rule_ids(findings) == ["DET004"]


def test_unordered_fanout_quiet_when_sorted_or_no_scheduling():
    assert det(
        """
        def fan_out(kernel, tick, nodes):
            for name in sorted(set(nodes)):
                kernel.schedule(1.0, tick, name)

        def tally(nodes):
            total = 0
            for name in {"a", "b"}:
                total += len(name)
            return total
        """
    ) == []


# -- DET005 id ordering --------------------------------------------------


def test_id_ordering_fires_on_sort_key_and_comparison():
    findings = det(
        """
        def order(objects, a, b):
            ranked = sorted(objects, key=id)
            return ranked if id(a) < id(b) else ranked[::-1]
        """
    )
    assert rule_ids(findings) == ["DET005", "DET005"]


def test_id_ordering_quiet_on_name_keys():
    assert det(
        """
        def order(objects):
            return sorted(objects, key=lambda o: o.name)
        """
    ) == []


# -- DET006 ambient io ---------------------------------------------------


def test_ambient_io_fires_on_environ_getenv_open():
    findings = det(
        """
        import os

        def load():
            flag = os.environ["MODE"]
            alt = os.getenv("ALT")
            with open("config.ini") as handle:
                return flag, alt, handle.read()
        """
    )
    assert rule_ids(findings) == ["DET006", "DET006", "DET006"]


def test_ambient_io_quiet_on_config_objects():
    assert det(
        """
        def load(config):
            return config.mode, config.alt
        """
    ) == []
