"""Fault Tolerance Interface Modules (FTIMs).

"Fault tolerance interface modules are responsible for checkpointing the
application state, monitoring the status of the application, and
communicating with the OFTT engine.  It is implemented as a client-side
COM server in the form of [a] DLL and is linked to an application ...  In
the OFTT design, the application and the FTIM run as two separate threads
within the same address space" (§2.2.2).

Two variants, as in the paper:

* :class:`ClientFtim` — for OPC clients (stateful): heartbeats **and**
  periodic/explicit checkpoints.
* :class:`ServerFtim` — for OPC servers (stateless): heartbeats only,
  avoiding checkpoint overhead.

Checkpoint capture follows the paper's mechanics: thread contexts come
from ``GetThreadContext`` — statically created threads via the standard
enumeration API, dynamically created ones via the IAT interception hook —
and the data image comes from the address-space memory walkthrough
(optionally restricted to ``OFTTSelSave``-designated variables).

The FTIM also watches the engine: if the engine process dies (§4 demo d,
middleware failure), the FTIM fail-stops its application so that the peer
node can take over without risking two primaries.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.com.interfaces import declare_interface
from repro.com.object import ComObject
from repro.errors import CheckpointError, OfttError
from repro.core.checkpoint import Checkpoint
from repro.core.status import ComponentKind
from repro.nt.kernel32 import Kernel32, ThreadHandle
from repro.nt.process import NTProcess
from repro.simnet.events import Timeout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import OfttEngine

IFTIM = declare_interface("IOFTTFtim", ("Heartbeat", "TakeCheckpoint", "GetStats"))


class ServerFtim(ComObject):
    """The stateless FTIM variant: heartbeat thread only."""

    IMPLEMENTS = (IFTIM,)
    kind = ComponentKind.OPC_SERVER
    takes_checkpoints = False

    def __init__(self, engine: "OfttEngine", app_name: str, process: NTProcess) -> None:
        super().__init__()
        self.engine = engine
        self.app_name = app_name
        self.process = process
        self.kernel = process.system.kernel
        self.heartbeats_sent = 0
        self.engine_lost = False
        # create_thread starts the thread itself when the process runs;
        # on a not-yet-started process it runs at process.start().
        self._thread = process.create_thread(f"ftim:{app_name}", body=self._thread_body, dynamic=False)

    # -- the FTIM thread ---------------------------------------------------------

    def _thread_body(self, _thread):
        def loop():
            while True:
                self._periodic_work()
                yield Timeout(self.engine.config.heartbeat_period)

        return loop()

    def _periodic_work(self) -> None:
        if not self.engine.alive:
            self._on_engine_lost()
            return
        self.Heartbeat()

    def _on_engine_lost(self) -> None:
        """§4 demo (d): the middleware died under us.  Fail-stop the app so
        the peer can promote without a dual-primary risk."""
        if self.engine_lost:
            return
        self.engine_lost = True
        self.engine.context.trace.emit(
            "ftim", f"{self.process.system.node.name}/{self.app_name}", "engine-lost-failstop"
        )
        self.process.kill(code=-3)

    # -- COM surface ------------------------------------------------------------------

    def Heartbeat(self) -> None:
        """Send one heartbeat to the local engine."""
        self.heartbeats_sent += 1
        self.engine.heartbeat_from(self.app_name)

    def TakeCheckpoint(self) -> Optional[int]:
        """Stateless variant: nothing to capture."""
        return None

    def GetStats(self) -> dict:
        """FTIM statistics (exposed for the System Monitor)."""
        return {
            "app": self.app_name,
            "heartbeats": self.heartbeats_sent,
            "checkpoints": 0,
            "kind": "server",
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.app_name} on {self.process.system.node.name})"


class ClientFtim(ServerFtim):
    """The stateful FTIM variant: heartbeats plus checkpointing."""

    kind = ComponentKind.APPLICATION
    takes_checkpoints = True

    def __init__(
        self,
        engine: "OfttEngine",
        app_name: str,
        process: NTProcess,
        checkpoint_period: Optional[float] = None,
    ) -> None:
        super().__init__(engine, app_name, process)
        # Sequence numbers must keep climbing across relaunches of the
        # same application (CheckpointStore rejects stale sequences), so
        # a fresh FTIM resumes after whatever the engine already holds —
        # locally or mirrored from the peer.  A class-level counter would
        # satisfy monotonicity but leak across scenarios in one Python
        # process, making identical-seed runs emit different sequences.
        resume_from = max(
            engine.local_store.latest_sequence(app_name),
            engine.peer_store.latest_sequence(app_name),
        )
        self._sequence = itertools.count(resume_from + 1)
        # The replication strategy owns the checkpoint policy: period and
        # whether captures are incremental deltas (leader-follower's
        # per-update stream) or the paper's periodic full images.
        # The caller's request is kept so a runtime strategy switch can
        # re-derive the policy from the same inputs.
        self.requested_period = checkpoint_period
        self.checkpoint_period, policy_incremental = engine.strategy.checkpoint_policy(
            app_name, checkpoint_period
        )
        self.kernel32 = Kernel32(process)
        # The IAT trick: observe CreateThread so dynamically created
        # threads can be checkpointed too (§2.2.2, §3.1).
        self._dynamic_handles: List[ThreadHandle] = self.kernel32.install_thread_tracker()
        # OFTTSelSave designations: region -> variable names (None = all
        # variables in that region).
        self._selected: Dict[str, Optional[Set[str]]] = {}
        self.checkpoints_taken = 0
        self.capture_failures = 0
        self.last_sequence = 0
        self._last_image: Dict[str, Dict] = {}
        self.incremental = policy_incremental
        self._next_checkpoint_at = self.kernel.now + self.checkpoint_period

    # -- designation (OFTTSelSave) ----------------------------------------------------

    def select_variables(self, region: str, variables: Optional[List[str]] = None) -> None:
        """Designate checkpoint content: *variables* of *region*.

        ``variables=None`` selects the whole region.  Once anything is
        designated, captures are *selective* — only designated data is
        saved (the paper's user-directed checkpointing optimisation).
        """
        if variables is None:
            self._selected[region] = None
        else:
            existing = self._selected.setdefault(region, set())
            if existing is not None:
                existing.update(variables)

    def clear_selection(self) -> None:
        """Return to full-address-space captures."""
        self._selected.clear()

    def force_full_capture(self) -> None:
        """Make the next capture a full image (incremental re-base).

        Called when the peer reports it cannot merge our delta stream
        (``ckpt-resync``): its store lost the base — e.g. a node
        reinstall — so deltas are unusable until re-anchored.
        """
        self._last_image = {}

    def apply_checkpoint_policy(self, strategy) -> None:
        """Adopt a new strategy's checkpoint policy (runtime switch).

        Re-derives period and incremental mode from the original
        request, re-bases via :meth:`force_full_capture` (a delta taken
        under the new strategy must not reference a base the peer
        merged under the old one's rules), and re-anchors the periodic
        schedule so the first capture under the new policy happens one
        fresh period from now.
        """
        self.checkpoint_period, self.incremental = strategy.checkpoint_policy(
            self.app_name, self.requested_period
        )
        self.force_full_capture()
        self._next_checkpoint_at = self.kernel.now + self.checkpoint_period

    @property
    def selective(self) -> bool:
        """Whether OFTTSelSave designations are active."""
        return bool(self._selected)

    # -- periodic work ------------------------------------------------------------------

    def _periodic_work(self) -> None:
        if not self.engine.alive:
            self._on_engine_lost()
            return
        self.Heartbeat()
        if self.kernel.now >= self._next_checkpoint_at:
            self._next_checkpoint_at = self.kernel.now + self.checkpoint_period
            try:
                self.TakeCheckpoint()
            except CheckpointError:
                self.capture_failures += 1

    # -- capture ------------------------------------------------------------------------

    def TakeCheckpoint(self) -> Optional[int]:
        """Capture state now and hand it to the engine (OFTTSave path).

        Returns the checkpoint sequence number.
        """
        checkpoint = self.capture()
        self.engine.submit_checkpoint(checkpoint)
        self.checkpoints_taken += 1
        self.last_sequence = checkpoint.sequence
        return checkpoint.sequence

    def capture(self) -> Checkpoint:
        """Build a :class:`Checkpoint` from the live process."""
        if not self.process.alive:
            raise CheckpointError(f"capture on dead process {self.app_name}")
        full_image = self._capture_image()
        contexts = self._capture_contexts()
        is_incremental = self.incremental and bool(self._last_image)
        image = _image_delta(self._last_image, full_image) if is_incremental else full_image
        self._last_image = full_image
        return Checkpoint(
            app_name=self.app_name,
            sequence=next(self._sequence),
            captured_at=self.kernel.now,
            image=image,
            thread_contexts=contexts,
            selective=self.selective,
            incremental=is_incremental,
        )

    def _capture_image(self) -> Dict[str, Dict]:
        space = self.process.address_space
        if not self.selective:
            return space.walkthrough()
        image: Dict[str, Dict] = {}
        # Sorted to match walkthrough(): every image — full or selective —
        # lists regions in name order, so serialized checkpoint bytes do
        # not depend on the order OFTTSelSave designations were made.
        for region_name, variables in sorted(self._selected.items()):
            if not space.has_region(region_name):
                continue
            region = space.region(region_name)
            snapshot = region.snapshot()
            if variables is None:
                image[region_name] = snapshot
            else:
                image[region_name] = {var: snapshot[var] for var in sorted(variables) if var in snapshot}
        return image

    def _capture_contexts(self) -> Dict[str, Dict]:
        contexts: Dict[str, Dict] = {}
        for handle in self.kernel32.EnumProcessThreads():
            thread = handle.deref()
            contexts[thread.name] = self.kernel32.GetThreadContext(handle).as_dict()
        for handle in self._dynamic_handles:
            thread = handle.deref()
            if thread.state.value != "terminated":
                contexts[thread.name] = self.kernel32.GetThreadContext(handle).as_dict()
        return contexts

    def GetStats(self) -> dict:
        """FTIM statistics (exposed for the System Monitor)."""
        return {
            "app": self.app_name,
            "heartbeats": self.heartbeats_sent,
            "checkpoints": self.checkpoints_taken,
            "capture_failures": self.capture_failures,
            "selective": self.selective,
            "kind": "client",
        }


def _image_delta(old: Dict[str, Dict], new: Dict[str, Dict]) -> Dict[str, Dict]:
    """Regions/variables in *new* that differ from *old* (incremental mode)."""
    delta: Dict[str, Dict] = {}
    for region, variables in new.items():
        old_region = old.get(region, {})
        changed = {var: value for var, value in variables.items() if old_region.get(var, _MISSING) != value}
        if changed or region not in old:
            delta[region] = changed
    return delta


class _Missing:
    """Sentinel distinguishing absent variables from None values."""


_MISSING = _Missing()
