"""Unit tests for DCOM remoting: proxies, ORPC, failure semantics."""

import pytest

from repro.com.hresult import E_NOINTERFACE, RPC_E_DISCONNECTED, RPC_E_TIMEOUT
from repro.com.interfaces import declare_interface
from repro.com.object import ComObject
from repro.com.runtime import ComRuntime
from repro.errors import RpcError

from tests.conftest import make_world

ICALC = declare_interface("ICalcT", ("Add", "Boom", "Notify"))


class Calc(ComObject):
    IMPLEMENTS = (ICALC,)

    def __init__(self):
        super().__init__()
        self.notifications = []

    def Add(self, a, b):
        return a + b

    def Boom(self):
        raise ValueError("kaput")  # oftt-lint: ok[com-bare-raise] -- exercises the bare-E_FAIL marshalling path

    def Notify(self, payload):
        self.notifications.append(payload)


def make_pair():
    world = make_world()
    server_sys = world.add_machine("server")
    client_sys = world.add_machine("client")
    server_rt = ComRuntime(server_sys, world.network)
    client_rt = ComRuntime(client_sys, world.network)
    return world, server_sys, client_sys, server_rt, client_rt


def call(world, proxy, method, *args, **kwargs):
    """Drive one remote call to completion; returns the RpcResult.

    The call's duration in simulated ms is recorded on the result as
    ``elapsed`` (the kernel keeps running afterwards, so callers cannot
    use the post-run clock).
    """
    outcome = {}
    started = world.kernel.now

    def caller():
        result = yield proxy.call(method, *args, **kwargs)
        result.elapsed = world.kernel.now - started
        outcome["result"] = result

    world.kernel.spawn(caller())
    world.run_for(10_000.0)
    return outcome["result"]


def test_remote_call_returns_value():
    world, _ss, _cs, server_rt, client_rt = make_pair()
    objref = server_rt.export(Calc(), label="calc")
    proxy = client_rt.proxy_for(objref)
    assert call(world, proxy, "Add", 2, 3).unwrap() == 5


def test_server_exception_marshaled_as_failure():
    world, _ss, _cs, server_rt, client_rt = make_pair()
    proxy = client_rt.proxy_for(server_rt.export(Calc()))
    result = call(world, proxy, "Boom")
    assert not result.ok
    assert "kaput" in result.detail
    with pytest.raises(RpcError):
        result.unwrap()


def test_unknown_method_is_e_nointerface():
    world, _ss, _cs, server_rt, client_rt = make_pair()
    proxy = client_rt.proxy_for(server_rt.export(Calc()))
    result = call(world, proxy, "Subtract", 1, 2)
    assert result.hresult == E_NOINTERFACE


def test_dead_node_call_burns_full_rpc_timeout():
    """§3.3: DCOM's RPC 'does not behave well in the presence of
    failures' — a dead machine means silence until the long timeout."""
    world, server_sys, _cs, server_rt, client_rt = make_pair()
    proxy = client_rt.proxy_for(server_rt.export(Calc()))
    server_sys.power_off()
    result = call(world, proxy, "Add", 1, 1)
    assert result.hresult == RPC_E_TIMEOUT
    assert result.elapsed >= client_rt.exporter.rpc_timeout


def test_dead_process_answers_disconnected_quickly():
    world, server_sys, _cs, server_rt, client_rt = make_pair()
    host = server_sys.create_process("host")
    host.create_thread("main", dynamic=False)
    host.start()
    proxy = client_rt.proxy_for(server_rt.export(Calc(), process=host))
    host.kill()
    result = call(world, proxy, "Add", 1, 1)
    assert result.hresult == RPC_E_DISCONNECTED
    assert result.elapsed < 100.0  # answered, not timed out


def test_revoked_export_is_disconnected():
    world, _ss, _cs, server_rt, client_rt = make_pair()
    objref = server_rt.export(Calc())
    proxy = client_rt.proxy_for(objref)
    server_rt.exporter.revoke(objref)
    result = call(world, proxy, "Add", 1, 1)
    assert result.hresult == RPC_E_DISCONNECTED


def test_custom_short_timeout():
    world, server_sys, _cs, server_rt, client_rt = make_pair()
    proxy = client_rt.proxy_for(server_rt.export(Calc()))
    server_sys.power_off()
    result = call(world, proxy, "Add", 1, 1, timeout=250.0)
    assert result.hresult == RPC_E_TIMEOUT
    assert result.elapsed < 1_000.0


def test_oneway_call_delivers_without_reply():
    world, _ss, _cs, server_rt, client_rt = make_pair()
    calc = Calc()
    proxy = client_rt.proxy_for(server_rt.export(calc))
    assert proxy.call_oneway("Notify", {"event": 1})
    world.run_for(100.0)
    assert calc.notifications == [{"event": 1}]


def test_proxy_attribute_sugar():
    world, _ss, _cs, server_rt, client_rt = make_pair()
    proxy = client_rt.proxy_for(server_rt.export(Calc()))
    outcome = {}

    def caller():
        result = yield proxy.Add(4, 5)
        outcome["value"] = result.unwrap()

    world.kernel.spawn(caller())
    world.run_for(1_000.0)
    assert outcome["value"] == 9


def test_remote_activation_creates_and_exports():
    world, _ss, _cs, server_rt, client_rt = make_pair()
    server_rt.register_class("Test.Calc", Calc)
    outcome = {}

    def caller():
        activation = yield client_rt.remote_activate("server", "Test.Calc")
        objref = activation.unwrap()
        proxy = client_rt.proxy_for(objref)
        result = yield proxy.Add(10, 20)
        outcome["value"] = result.unwrap()

    world.kernel.spawn(caller())
    world.run_for(5_000.0)
    assert outcome["value"] == 30


def test_remote_activation_of_unregistered_class_fails():
    world, _ss, _cs, _server_rt, client_rt = make_pair()
    outcome = {}

    def caller():
        activation = yield client_rt.remote_activate("server", "No.Such")
        outcome["result"] = activation

    world.kernel.spawn(caller())
    world.run_for(5_000.0)
    assert not outcome["result"].ok


def test_late_reply_after_timeout_is_dropped():
    """A reply landing after the client gave up must not crash or refire."""
    world, server_sys, _cs, server_rt, client_rt = make_pair()
    # Slow the link so the reply arrives after a very short timeout.
    world.network.links["lan0"].latency = 300.0
    proxy = client_rt.proxy_for(server_rt.export(Calc()))
    result = call(world, proxy, "Add", 1, 1, timeout=100.0)
    assert result.hresult == RPC_E_TIMEOUT
    world.run_for(5_000.0)  # late reply arrives; nothing should explode


def test_calls_served_counter():
    world, _ss, _cs, server_rt, client_rt = make_pair()
    proxy = client_rt.proxy_for(server_rt.export(Calc()))
    call(world, proxy, "Add", 1, 1)
    call(world, proxy, "Add", 2, 2)
    assert server_rt.exporter.calls_served == 2
