"""Unit tests for chaos schedule generation and serialization."""

from repro.chaos.schedule import FAULT_BUILDERS, ChaosSchedule, FaultEntry, ScheduleGenerator
from repro.simnet.random import RngStreams


def make_generator(seed=0):
    return ScheduleGenerator(
        nodes=["alpha", "beta"],
        links=["lan0"],
        process="synthetic",
        rng=RngStreams(seed).stream("chaos.schedule"),
    )


def test_generation_is_seed_deterministic():
    first = [make_generator(7).generate() for _ in range(1)][0]
    second = make_generator(7).generate()
    assert first.as_wire() == second.as_wire()


def test_different_seeds_differ():
    schedules_a = [make_generator(0).generate().as_wire() for _ in range(1)]
    schedules_b = [make_generator(1).generate().as_wire() for _ in range(1)]
    assert schedules_a != schedules_b


def test_every_generated_kind_is_buildable():
    generator = make_generator(3)
    for _ in range(20):
        schedule = generator.generate()
        for entry in schedule.entries:
            assert entry.kind in FAULT_BUILDERS
            entry.build()  # must materialize without an environment


def test_horizon_leaves_recovery_tail():
    generator = make_generator(1)
    for _ in range(10):
        schedule = generator.generate()
        last = max(entry.at for entry in schedule.entries)
        assert schedule.horizon - last >= 12_000.0


def test_wire_round_trip():
    schedule = make_generator(5).generate()
    wire = schedule.as_wire()
    assert ChaosSchedule.from_wire(wire).as_wire() == wire


def test_entry_wire_round_trip():
    entry = FaultEntry(1_500.0, "gray-node", {"node": "alpha", "delay": 120.0})
    assert FaultEntry.from_wire(entry.as_wire()) == entry


def test_subset_keeps_indices_and_horizon():
    entries = [
        FaultEntry(1_000.0, "heal-network", {}),
        FaultEntry(2_000.0, "node-failure", {"node": "alpha"}),
        FaultEntry(3_000.0, "node-reboot", {"node": "alpha"}),
    ]
    schedule = ChaosSchedule(entries=entries, horizon=9_000.0)
    subset = schedule.subset([0, 2])
    assert [e.kind for e in subset.entries] == ["heal-network", "node-reboot"]
    assert subset.horizon == 9_000.0


def test_sorted_entries_stable_ties():
    entries = [
        FaultEntry(1_000.0, "node-failure", {"node": "beta"}),
        FaultEntry(1_000.0, "heal-network", {}),
    ]
    schedule = ChaosSchedule(entries=entries)
    assert [e.kind for e in schedule.sorted_entries()] == ["heal-network", "node-failure"]


def test_destructive_faults_come_with_repairs():
    generator = make_generator(11)
    repair_for = {
        "bluescreen": "node-reboot",
        "node-failure": "node-reboot",
        "middleware-crash": "reinstall-middleware",
        "partition": "heal-network",
        "asym-partition": "heal-network",
    }
    for _ in range(15):
        schedule = generator.generate()
        kinds = [entry.kind for entry in schedule.sorted_entries()]
        for index, kind in enumerate(kinds):
            if kind in repair_for:
                assert repair_for[kind] in kinds[index + 1 :]
