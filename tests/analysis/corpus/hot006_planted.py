"""Planted HOT006: module attribute re-resolved on every hot call."""

import math


class Hot:
    def run(self, values):
        total = 0.0
        for value in values:
            total += math.sqrt(value)  # expect: HOT006
        return total
