"""Role management: the primary/backup negotiation state machine.

"[The engine] determines the role of a node in the primary/backup pair
... during the startup and switchover by negotiating with the peer node"
(§2.2.1).  §3.2 describes how the original startup logic — come up as
backup, wait for the peer's periodic time stamp, shut down on timeout —
interacted badly with NT's non-deterministic boot times, and how retry
logic fixed it.  Both behaviours are implemented; the give-up policy and
retry count are configuration.

Dual-primary resolution: when two primaries meet (e.g. after a partition
heals), the one with the *higher* incarnation — the most recent
legitimate promotion — keeps the role; ties break towards the preferred
node name.  The loser demotes.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Optional

from repro.core.config import GiveUpPolicy, OfttConfig
from repro.errors import RoleError
from repro.simnet.kernel import SimKernel
from repro.simnet.trace import TraceLog


class Role(enum.Enum):
    """Node role within the pair."""

    UNDECIDED = "undecided"
    PRIMARY = "primary"
    BACKUP = "backup"
    SHUTDOWN = "shutdown"


class RoleNegotiator:
    """Per-engine role state machine.

    The owning engine feeds it peer messages (:meth:`on_peer_announce`)
    and it drives outcomes through callbacks:

    * ``send(payload)`` — transmit a negotiation message to the peer.
    * ``on_decided(role)`` — the node committed to PRIMARY or BACKUP.
    * ``on_shutdown()`` — startup gave up (original §3.2 logic).
    * ``on_demoted()`` — lost a dual-primary resolution.
    """

    def __init__(
        self,
        kernel: SimKernel,
        node_name: str,
        peer_name: str,
        config: OfttConfig,
        send: Callable[[Dict[str, Any]], None],
        on_decided: Callable[[Role], None],
        on_shutdown: Callable[[], None],
        on_demoted: Callable[[], None],
        preferred_primary: str = "",
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.kernel = kernel
        self.node_name = node_name
        self.peer_name = peer_name
        self.config = config
        self.send = send
        self.on_decided = on_decided
        self.on_shutdown = on_shutdown
        self.on_demoted = on_demoted
        self.preferred_primary = preferred_primary
        self.trace = trace if trace is not None else TraceLog(clock=lambda: kernel.now)
        self.role = Role.UNDECIDED
        self.incarnation = 0
        self.retries_used = 0
        self._negotiating = False
        self._started = False
        self._wait_timer = None
        self.decided_at: Optional[float] = None

    # -- startup ---------------------------------------------------------------

    def begin(self) -> None:
        """Enter negotiation: announce and wait for the peer."""
        if self.role is not Role.UNDECIDED:
            raise RoleError(f"{self.node_name}: begin() in role {self.role.value}")
        self._started = True
        self._negotiating = True
        self.retries_used = 0
        self._announce()
        self._arm_wait()

    def _announce(self) -> None:
        self.send(
            {
                "kind": "role-announce",
                "node": self.node_name,
                "role": self.role.value,
                "incarnation": self.incarnation,
            }
        )

    def _arm_wait(self) -> None:
        # Defensive: a stale handle here is either None or already fired
        # (cancel of a fired handle is a no-op), so re-arming can never
        # stack two live wait timers.
        self._cancel_wait()
        self._wait_timer = self.kernel.schedule(self.config.startup_wait, self._on_wait_expired)

    def _cancel_wait(self) -> None:
        if self._wait_timer is not None:
            self.kernel.cancel(self._wait_timer)
            self._wait_timer = None

    def stop(self) -> None:
        """Abandon negotiation and release the wait timer (node teardown)."""
        self._negotiating = False
        self._cancel_wait()

    def _on_wait_expired(self) -> None:
        if not self._negotiating:
            return
        if self.retries_used < self.config.startup_retries:
            # §3.2: "additional logic was added to initiate retries several
            # times before it shuts down."
            self.retries_used += 1
            self.trace.emit("role", self.node_name, "negotiation-retry", attempt=self.retries_used)
            self._announce()
            self._arm_wait()
            return
        if self.config.give_up_policy is GiveUpPolicy.SHUTDOWN:
            self._negotiating = False
            self.role = Role.SHUTDOWN
            self.trace.emit("role", self.node_name, "startup-shutdown", retries=self.retries_used)
            self.on_shutdown()
        else:
            self.trace.emit("role", self.node_name, "lone-primary", retries=self.retries_used)
            self._decide(Role.PRIMARY)

    # -- peer messages -------------------------------------------------------------

    def on_peer_announce(self, payload: Dict[str, Any]) -> None:
        """Handle a role announcement (or role-carrying heartbeat)."""
        if not self._started:
            # The engine (and with it, this negotiator) is not up yet; a
            # real node's port would not even be bound.
            return
        if self.role is Role.SHUTDOWN:
            # Startup gave up and powered the stack down (§3.2): the same
            # unbound-port contract applies — a shut-down node must not
            # keep answering announcements (it used to, via the
            # rebooted-peer branch below).
            return
        peer_role = Role(payload["role"])
        peer_incarnation = int(payload.get("incarnation", 0))
        if self.role is Role.UNDECIDED:
            self._resolve_against(peer_role, peer_incarnation)
        elif self.role is Role.PRIMARY and peer_role is Role.PRIMARY:
            self._resolve_dual_primary(peer_incarnation)
        elif self.role is Role.BACKUP and peer_role is Role.PRIMARY:
            # Track the pair's epoch so a later promotion outranks the
            # primary we are following.
            self.incarnation = max(self.incarnation, peer_incarnation)
        elif peer_role is Role.UNDECIDED and self._negotiating is False:
            # Rebooted peer asking around: tell it where things stand.
            self._announce()

    def _resolve_against(self, peer_role: Role, peer_incarnation: int) -> None:
        if peer_role is Role.PRIMARY:
            self.incarnation = peer_incarnation  # adopt the pair's epoch
            self._decide(Role.BACKUP)
        elif peer_role is Role.BACKUP:
            # Outrank whatever epoch the waiting backup last followed.
            self.incarnation = max(self.incarnation, peer_incarnation + 1)
            self._decide(Role.PRIMARY)
        elif peer_role is Role.UNDECIDED:
            # Both undecided: deterministic tie-break.
            if self._wins_tiebreak():
                self._decide(Role.PRIMARY)
            else:
                self._decide(Role.BACKUP)

    def _wins_tiebreak(self) -> bool:
        if self.preferred_primary:
            return self.node_name == self.preferred_primary
        return self.node_name < self.peer_name

    def _resolve_dual_primary(self, peer_incarnation: int) -> None:
        keep = (self.incarnation, self._wins_tiebreak()) > (peer_incarnation, not self._wins_tiebreak())
        if keep:
            self._announce()  # push the loser to demote
            return
        self.trace.emit("role", self.node_name, "dual-primary-demote", peer_incarnation=peer_incarnation)
        self.role = Role.BACKUP
        self.incarnation = peer_incarnation
        self.decided_at = self.kernel.now
        self.on_demoted()

    def _decide(self, role: Role) -> None:
        self._negotiating = False
        self._cancel_wait()
        self.role = role
        if role is Role.PRIMARY and self.incarnation == 0:
            self.incarnation = 1
        self.decided_at = self.kernel.now
        self.trace.emit("role", self.node_name, "role-decided", role=role.value, incarnation=self.incarnation)
        self._announce()
        self.on_decided(role)

    # -- runtime transitions -----------------------------------------------------------

    def promote(self) -> None:
        """Backup takes over (peer loss or explicit handoff)."""
        if self.role is not Role.BACKUP:
            raise RoleError(f"{self.node_name}: promote from {self.role.value}")
        self.incarnation += 1
        self.role = Role.PRIMARY
        self.decided_at = self.kernel.now
        self.trace.emit("role", self.node_name, "promoted", incarnation=self.incarnation)
        self._announce()

    def demote(self) -> None:
        """Primary steps down (explicit switchback)."""
        if self.role is not Role.PRIMARY:
            raise RoleError(f"{self.node_name}: demote from {self.role.value}")
        self.role = Role.BACKUP
        # Every role change stamps decided_at (promote()/_decide() do),
        # so demotion-driven transitions account their latency too.
        self.decided_at = self.kernel.now
        self.trace.emit("role", self.node_name, "demoted")
        self._announce()

    def __repr__(self) -> str:
        return f"RoleNegotiator({self.node_name}, {self.role.value}, inc={self.incarnation})"
