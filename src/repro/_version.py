"""Version of the OFTT reproduction library."""

__version__ = "1.0.0"
