"""Structured trace log for simulation runs.

Every layer appends :class:`TraceRecord` entries (timestamped, categorised,
keyed by component).  Tests and benchmarks query the trace to assert on
*sequences* of behaviour (e.g. "backup promoted exactly once, after the
heartbeat timeout elapsed") rather than only on final state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """A single trace entry."""

    time: float
    category: str
    component: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:12.3f}] {self.category:<10} {self.component:<24} {self.event} {extras}".rstrip()


class TraceLog:
    """Append-only log of :class:`TraceRecord` entries with query helpers."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.records: List[TraceRecord] = []
        self._clock = clock
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated clock used to timestamp records."""
        self._clock = clock

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke *callback* for every future record (live monitoring)."""
        self._subscribers.append(callback)

    def emit(self, category: str, component: str, event: str, **detail: Any) -> TraceRecord:
        """Append a record stamped with the current simulated time."""
        time = self._clock() if self._clock is not None else 0.0
        record = TraceRecord(time=time, category=category, component=component, event=event, detail=dict(detail))
        self.records.append(record)
        for callback in self._subscribers:
            callback(record)
        return record

    # -- queries ---------------------------------------------------------

    def select(
        self,
        category: Optional[str] = None,
        component: Optional[str] = None,
        event: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[TraceRecord]:
        """Filter records by any combination of fields and a time window."""
        return [
            record
            for record in self.records
            if (category is None or record.category == category)
            and (component is None or record.component == component)
            and (event is None or record.event == event)
            and since <= record.time <= until
        ]

    def first(self, **kwargs: Any) -> Optional[TraceRecord]:
        """First record matching :meth:`select` filters, or None."""
        matches = self.select(**kwargs)
        return matches[0] if matches else None

    def last(self, **kwargs: Any) -> Optional[TraceRecord]:
        """Last record matching :meth:`select` filters, or None."""
        matches = self.select(**kwargs)
        return matches[-1] if matches else None

    def count(self, **kwargs: Any) -> int:
        """Number of records matching :meth:`select` filters."""
        return len(self.select(**kwargs))

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of (the tail of) the trace."""
        records = self.records if limit is None else self.records[-limit:]
        return "\n".join(str(record) for record in records)
