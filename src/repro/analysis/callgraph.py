"""Module-level call graph over the analysed file set.

The intraprocedural passes stop at a function body; the effects pass
(:mod:`repro.analysis.effects`) needs to know *who calls whom* so effect
summaries can flow bottom-up.  This module builds that graph with the
resolution rules the toolkit's own code actually exercises:

* ``self.helper()`` / ``cls.helper()`` — a method of the same class, or
  of a base class whose definition is in the analysed set (single level
  of bases, resolved by name).
* ``helper()`` — a module-level function of the same module, or one
  imported by name (``from repro.x import helper``) from an analysed
  module.
* ``mod.helper()`` — a function of module ``mod`` when the import alias
  resolves to an analysed module.
* ``ClassName(...)`` — the class's ``__init__`` when the class is in the
  analysed set (locally defined or imported by name).
* ``ClassName.method(...)`` — the unbound method.

Anything else (computed callees, methods on locals, duck-typed
attributes) produces no edge — the analysis is deliberately
under-approximate and ANALYSIS.md documents the blind spots.  Every edge
records whether the call went through the instance receiver
(``self.``/``cls.``) and how bare-name/``self.attr`` arguments map onto
the callee's positional parameters; the summary propagation needs both.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.walker import SourceFile, dotted_name, import_aliases

#: An argument "slot" in the caller's frame: ("param", name) when the
#: argument is a bare parameter name, ("self", attr) when it is exactly
#: ``self.attr``.  Anything else is not tracked.
Slot = Tuple[str, str]


@dataclass(frozen=True)
class Edge:
    """One call edge, annotated for summary propagation."""

    callee: str  # FunctionInfo key of the target
    line: int  # first call-site line
    via_self: bool  # receiver is self/cls (same-instance dispatch)
    #: callee positional-parameter name -> caller slot, for the bare-name
    #: and ``self.attr`` arguments of the first call site.
    arg_slots: Tuple[Tuple[str, Slot], ...] = ()


@dataclass
class FunctionInfo:
    """One function or method in the graph."""

    key: str  # "module:qualname", e.g. "repro.opc.group:OpcGroup._flush"
    module: str
    qualname: str  # "Class.method" or "func"
    class_name: Optional[str]
    path: str
    node: ast.FunctionDef

    @property
    def short_name(self) -> str:
        """The trailing name, for call-chain messages."""
        return self.qualname.split(".")[-1]


@dataclass
class CallGraph:
    """Functions, resolved call edges, and the lookup tables behind them.

    All iteration orders are deterministic (sorted keys, file order) so
    downstream findings are byte-stable across runs.
    """

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    edges: Dict[str, List[Edge]] = field(default_factory=dict)
    #: (module, function-name) -> key, for module-level functions.
    module_functions: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: (module, class-name, method-name) -> key.
    methods: Dict[Tuple[str, str, str], str] = field(default_factory=dict)
    #: class name -> [(defining module, {method: key})] in file order.
    classes: Dict[str, List[Tuple[str, Dict[str, str]]]] = field(default_factory=dict)
    #: (module, class-name) -> base-class trailing names, as written.
    bases: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)
    #: module -> import aliases (local name -> dotted path).
    aliases: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def callees(self, key: str) -> List[Edge]:
        return self.edges.get(key, [])

    # -- resolution --------------------------------------------------------

    def resolve_method(self, module: str, class_name: str, method: str) -> Optional[str]:
        """``class_name.method`` in *module*, walking one level of bases."""
        key = self.methods.get((module, class_name, method))
        if key is not None:
            return key
        for base in self.bases.get((module, class_name), []):
            scopes = self.classes.get(base, [])
            # Prefer a base defined in the same module, else first match
            # by module name — deterministic either way.
            for scope_module, scope_methods in sorted(scopes, key=lambda s: (s[0] != module, s[0])):
                if method in scope_methods:
                    return scope_methods[method]
        return None

    def resolve_callable(
        self, expr: ast.AST, module: str, class_name: Optional[str]
    ) -> Optional[str]:
        """Resolve a callable *reference* (not a call) to a function key.

        Handles ``name``, ``self.name``, ``mod.name``, ``Class.name``.
        Returns None for anything it cannot attribute.
        """
        if isinstance(expr, ast.Name):
            name = expr.id
            key = self.module_functions.get((module, name))
            if key is not None:
                return key
            imported = self.aliases.get(module, {}).get(name)
            if imported and "." in imported:
                src_module, _, src_name = imported.rpartition(".")
                key = self.module_functions.get((src_module, src_name))
                if key is not None:
                    return key
                # `from x import ClassName` used as a constructor.
                key = self.methods.get((src_module, src_name, "__init__"))
                if key is not None:
                    return key
            # Locally-defined class used as a constructor.
            return self.methods.get((module, name, "__init__"))
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            owner = expr.value.id
            if owner in ("self", "cls") and class_name:
                return self.resolve_method(module, class_name, expr.attr)
            # ClassName.method in this module.
            key = self.methods.get((module, owner, expr.attr))
            if key is not None:
                return key
            imported = self.aliases.get(module, {}).get(owner)
            if imported:
                src_module, _, src_name = imported.rpartition(".")
                if src_name:  # from pkg import ClassName
                    key = self.methods.get((src_module, src_name, expr.attr))
                    if key is not None:
                        return key
                # import pkg.mod as alias — function or constructor.
                key = self.module_functions.get((imported, expr.attr))
                if key is not None:
                    return key
                key = self.methods.get((imported, expr.attr, "__init__"))
                if key is not None:
                    return key
        return None


def _function_defs(tree: ast.Module) -> List[Tuple[Optional[ast.ClassDef], ast.FunctionDef]]:
    """Top-level functions and first-level methods (nested defs excluded)."""
    out: List[Tuple[Optional[ast.ClassDef], ast.FunctionDef]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append((None, node))  # type: ignore[arg-type]
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.append((node, stmt))  # type: ignore[arg-type]
    return out


def positional_params(node: ast.FunctionDef, *, drop_self: bool) -> List[str]:
    """Positional parameter names, minus the receiver for methods."""
    params = [arg.arg for arg in node.args.posonlyargs + node.args.args]
    if drop_self and params and params[0] in ("self", "cls"):
        params = params[1:]
    return params


def _arg_slot(node: ast.AST) -> Optional[Slot]:
    if isinstance(node, ast.Name):
        return ("param", node.id)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return ("self", node.attr)
    return None


def _collect(files: Sequence[SourceFile], graph: CallGraph) -> None:
    for source_file in files:
        if source_file.tree is None:
            continue
        module = source_file.module_name
        graph.aliases[module] = import_aliases(source_file.tree)
        for class_node, func in _function_defs(source_file.tree):
            class_name = class_node.name if class_node is not None else None
            qualname = f"{class_name}.{func.name}" if class_name else func.name
            key = f"{module}:{qualname}"
            graph.functions[key] = FunctionInfo(key, module, qualname, class_name, source_file.path, func)
            if class_name is None:
                graph.module_functions[(module, func.name)] = key
            else:
                graph.methods[(module, class_name, func.name)] = key
        for node in source_file.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                stmt.name: f"{module}:{node.name}.{stmt.name}"
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            graph.classes.setdefault(node.name, []).append((module, methods))
            base_names = [dotted_name(base) or "" for base in node.bases]
            graph.bases[(module, node.name)] = [b.split(".")[-1] for b in base_names if b]


def _build_edges(graph: CallGraph) -> None:
    for key in sorted(graph.functions):
        info = graph.functions[key]
        by_callee: Dict[str, Edge] = {}
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            target = graph.resolve_callable(node.func, info.module, info.class_name)
            if target is None or target == key or target in by_callee:
                continue
            via_self = (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("self", "cls")
            )
            callee_info = graph.functions[target]
            params = positional_params(callee_info.node, drop_self=callee_info.class_name is not None)
            slots: List[Tuple[str, Slot]] = []
            for position, arg in enumerate(node.args):
                if position >= len(params) or isinstance(arg, ast.Starred):
                    break
                slot = _arg_slot(arg)
                if slot is not None:
                    slots.append((params[position], slot))
            for keyword in node.keywords:
                if keyword.arg is not None and keyword.arg in params:
                    slot = _arg_slot(keyword.value)
                    if slot is not None:
                        slots.append((keyword.arg, slot))
            by_callee[target] = Edge(target, node.lineno, via_self, tuple(slots))
        graph.edges[key] = [by_callee[t] for t in sorted(by_callee)]


def build_call_graph(files: Sequence[SourceFile]) -> CallGraph:
    """Construct the call graph for *files*."""
    graph = CallGraph()
    _collect(files, graph)
    _build_edges(graph)
    return graph
