"""Multiparameter patient monitoring — the paper's closing use case.

"In addition to industrial applications, the OFTT toolkit can be used in
other environments where high availability is a benefit.  These include
continuous environmental monitoring, laboratory automation, and
multiparameter patient monitoring" (§5).

A bedside device bus carries heart-rate, SpO2 and blood-pressure sensors,
scanned by a bedside controller (the PLC model) and exposed over OPC.
The monitoring-station pair runs an OFTT-protected client that records
vitals trends and raises alarms on threshold breaches.  A station power
failure must not lose the alarm record or interrupt monitoring.

Run:  python examples/patient_monitoring.py
"""

from repro.apps.scada import AlarmRule, ScadaMonitorApp
from repro.core.cluster import OfttPair
from repro.core.config import OfttConfig
from repro.com.runtime import ComRuntime
from repro.devices.device import Sensor
from repro.devices.fieldbus import Fieldbus
from repro.devices.plc import PLC, PlcOpcBridge
from repro.devices.signals import RandomWalk, Sine
from repro.nt import NTSystem
from repro.opc.server import OpcServer
from repro.simnet import Network, RngStreams, SimKernel, TraceLog

VITALS = ["bed1.heart_rate", "bed1.spo2", "bed1.systolic"]
ALARMS = [
    AlarmRule("bed1.heart_rate", high_limit=120.0),
    AlarmRule("bed1.systolic", high_limit=150.0),
]


def build(seed=99):
    kernel = SimKernel()
    rngs = RngStreams(seed)
    trace = TraceLog(clock=lambda: kernel.now)
    network = Network(kernel, rngs, trace)
    network.add_link("ward-lan", latency=0.5, jitter=0.1)

    systems = {}
    for name in ("bedside-pc", "station1", "station2"):
        network.add_node(name)
        network.attach(name, "ward-lan")
        systems[name] = NTSystem(kernel, network.nodes[name], rngs, trace)
        systems[name].boot_immediately()

    # The patient: vitals as signal models (a tachycardia episode is the
    # sine peak pushing heart rate above the alarm limit periodically).
    bus = Fieldbus("bedside-bus")
    bus.attach(Sensor("heart_rate", Sine(offset=95.0, amplitude=35.0, period=60_000.0), noise=2.0))
    bus.attach(Sensor("spo2", RandomWalk(start=97.0, step=0.2, mean=97.0, minimum=85.0, maximum=100.0)))
    bus.attach(Sensor("systolic", RandomWalk(start=125.0, step=1.5, mean=125.0, minimum=80.0, maximum=200.0)))
    controller = PLC(kernel, "bed1", bus, rngs.stream("bedside"), scan_period=250.0)

    runtime = ComRuntime(systems["bedside-pc"], network)
    server = OpcServer(runtime, "OPC.Bedside.1", vendor="Simulated Medical Devices")
    bridge = PlcOpcBridge(kernel, controller, server, poll_period=500.0)
    server_ref = runtime.export(server, label="bedside")

    pair = OfttPair(
        network=network,
        systems={"station1": systems["station1"], "station2": systems["station2"]},
        config=OfttConfig(checkpoint_period=500.0),
        app_factory=lambda: ScadaMonitorApp(
            server_ref=server_ref, items=VITALS, alarms=ALARMS, update_rate=500.0
        ),
        unit="patient-monitor",
        trace=trace,
    )
    return kernel, systems, controller, bridge, pair


def main() -> None:
    kernel, systems, controller, bridge, pair = build()
    controller.start()
    bridge.start()
    pair.start()
    pair.settle()
    print(f"monitoring pair formed: primary={pair.primary_node()}\n")

    kernel.run(until=120_000.0)
    primary = pair.primary_node()
    app = pair.apps[primary]
    print(f"t=2min  station {primary}:")
    print(f"  vitals updates: {app.updates_seen()}")
    print(f"  tachycardia alarms: {app.alarm_count('bed1.heart_rate')}")
    print(f"  hypertension alarms: {app.alarm_count('bed1.systolic')}")

    alarms_before = app.alarm_count("bed1.heart_rate")
    print(f"\n>>> power failure at station {primary}\n")
    systems[primary].power_off()
    kernel.run(until=140_000.0)

    survivor = pair.primary_node()
    surviving_app = pair.apps[survivor]
    print(f"t=2min20s  station {survivor} took over:")
    print(f"  tachycardia alarms (preserved): {surviving_app.alarm_count('bed1.heart_rate')}")
    print(f"  monitoring continues: updates={surviving_app.updates_seen()}")
    assert survivor != primary
    assert surviving_app.alarm_count("bed1.heart_rate") >= alarms_before - 1
    assert surviving_app.updates_seen() > 0

    kernel.run(until=240_000.0)
    print(f"\nt=4min  alarms on {survivor}: "
          f"HR={surviving_app.alarm_count('bed1.heart_rate')}, "
          f"BP={surviving_app.alarm_count('bed1.systolic')} — no monitoring gap.")


if __name__ == "__main__":
    main()
