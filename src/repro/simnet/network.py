"""Simulated Ethernet / TCP-IP network.

The paper's reference configurations pair redundant computers "via one or
dual Ethernet networks" (Figure 1).  This module models:

* :class:`Network` — the whole fabric: segments, nodes, delivery.
* :class:`Link` — a LAN segment with latency, jitter and loss.
* :class:`NetNode` — a host with one NIC per attached segment and
  port-based receive dispatch (a tiny UDP-like service model).

Failure realism: a powered-off node neither sends nor receives; a NIC can
be taken down individually (dual-network experiments); segments can be
partitioned via :class:`repro.simnet.partitions.PartitionController`; and
messages may be dropped by per-segment loss probability.

Chaos extensions (used by :mod:`repro.faults` / :mod:`repro.chaos`):

* *asymmetric partitions* — per-direction ``(source, dest)`` blocks, so
  A can reach B while B cannot reach A;
* *frame corruption* — per-link probability that a frame fails its
  checksum on delivery and is discarded (detected corruption);
* *frame duplication* — per-link probability that a frame is delivered
  twice (retry races at the switch level);
* *egress delay* — per-node extra latency on every outgoing frame,
  modelling fail-slow ("gray") hosts and inter-node clock skew as seen
  from the wire.

All of these draw randomness lazily from the network RNG stream only
while enabled, so runs that never inject them keep their exact
pre-existing draw sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import SimError
from repro.simnet.kernel import SimKernel
from repro.simnet.random import RngStreams
from repro.simnet.trace import TraceLog

Handler = Callable[["Message"], None]


@dataclass(slots=True)
class Message:
    """A datagram on the simulated network.

    ``slots=True``: one instance per simulated datagram on the
    ``Network.send`` hot path (HOT005 dogfood).
    """

    source: str
    dest: str
    port: str
    payload: Any
    size: int = 128
    link: str = ""
    sent_at: float = 0.0
    delivered_at: float = 0.0


class Link:
    """A LAN segment.  All attached NICs can reach each other through it."""

    def __init__(
        self,
        name: str,
        latency: float = 0.5,
        jitter: float = 0.1,
        loss: float = 0.0,
        bandwidth: float = 0.0,
    ) -> None:
        """
        Parameters
        ----------
        latency:
            Base one-way delay (simulated ms).
        jitter:
            Uniform extra delay in ``[0, jitter]``.
        loss:
            Probability a frame is silently dropped.
        bandwidth:
            Bytes per simulated ms; 0 means infinite (no serialisation
            delay).  When set, delay grows by ``size / bandwidth``.
        """
        self.name = name
        self.latency = latency
        self.jitter = jitter
        self.loss = loss
        self.bandwidth = bandwidth
        self.up = True
        self.members: List[str] = []

    def delay_for(self, size: int, rng) -> float:
        """Sample the one-way delay for a frame of *size* bytes."""
        delay = self.latency
        if self.jitter > 0:
            delay += rng.uniform(0.0, self.jitter)
        if self.bandwidth > 0:
            delay += size / self.bandwidth
        return delay

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"Link({self.name}, {state}, members={self.members})"


class NetNode:
    """A host on the network.

    Receive dispatch is by *port* (a string naming a service, e.g.
    ``"oftt.heartbeat"`` or ``"msq.transport"``).
    """

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.name = name
        self.powered = True
        self.nics: Dict[str, bool] = {}  # link name -> nic up?
        self._handlers: Dict[str, Handler] = {}

    # -- service registration ---------------------------------------------

    def bind(self, port: str, handler: Handler) -> None:
        """Register *handler* for datagrams addressed to *port*."""
        self._handlers[port] = handler

    def unbind(self, port: str) -> None:
        """Remove the handler for *port* (idempotent)."""
        self._handlers.pop(port, None)

    def handler_for(self, port: str) -> Optional[Handler]:
        """The bound handler, or None if the port is closed."""
        return self._handlers.get(port)

    # -- NIC control --------------------------------------------------------

    def nic_up(self, link_name: str) -> None:
        """Re-enable the NIC attached to *link_name*."""
        if link_name not in self.nics:
            raise SimError(f"{self.name} has no NIC on {link_name}")
        self.nics[link_name] = True

    def nic_down(self, link_name: str) -> None:
        """Disable the NIC attached to *link_name*."""
        if link_name not in self.nics:
            raise SimError(f"{self.name} has no NIC on {link_name}")
        self.nics[link_name] = False

    def reachable_links(self) -> List[str]:
        """Names of links this node can currently use."""
        if not self.powered:
            return []
        return [name for name, up in self.nics.items() if up]

    def send(self, dest: str, port: str, payload: Any, size: int = 128) -> bool:
        """Convenience wrapper over :meth:`Network.send`."""
        return self.network.send(self.name, dest, port, payload, size=size)

    def __repr__(self) -> str:
        state = "on" if self.powered else "off"
        return f"NetNode({self.name}, {state}, nics={self.nics})"


class Network:
    """The network fabric: creates nodes/links and routes datagrams.

    Redundant paths: when source and destination share several usable
    segments, the message travels the first healthy one (deterministic
    order by link name), which models the paper's dual-Ethernet pairing —
    taking one NIC or segment down leaves connectivity intact.
    """

    def __init__(self, kernel: SimKernel, rng: Optional[RngStreams] = None, trace: Optional[TraceLog] = None) -> None:
        self.kernel = kernel
        self.rng = (rng or RngStreams(0)).stream("network")
        self.trace = trace if trace is not None else TraceLog(clock=lambda: kernel.now)
        self.nodes: Dict[str, NetNode] = {}
        self.links: Dict[str, Link] = {}
        self.partition_of: Dict[str, Dict[str, int]] = {}  # link -> node -> group
        # -- chaos state (see module docstring) --
        self.blocked_pairs: Set[Tuple[str, str]] = set()  # (source, dest) directional blocks
        self.corrupt_prob: Dict[str, float] = {}  # link -> P(frame corrupted)
        self.dup_prob: Dict[str, float] = {}  # link -> P(frame duplicated)
        self.egress_delay: Dict[str, float] = {}  # node -> extra outgoing latency
        self.delivered_count = 0
        self.dropped_count = 0
        self.corrupted_count = 0
        self.duplicated_count = 0
        # TCP-like per-channel ordering: frames between the same
        # (source, dest, port) never overtake each other, even under
        # jitter.  Loss still re-orders *content* at higher layers.
        self._channel_clock: Dict[Any, float] = {}

    # -- topology -----------------------------------------------------------

    def add_node(self, name: str) -> NetNode:
        """Create a node (error if the name is taken)."""
        if name in self.nodes:
            raise SimError(f"duplicate node {name}")
        node = NetNode(self, name)
        self.nodes[name] = node
        return node

    def add_link(self, name: str, **kwargs: Any) -> Link:
        """Create a LAN segment (error if the name is taken)."""
        if name in self.links:
            raise SimError(f"duplicate link {name}")
        link = Link(name, **kwargs)
        self.links[name] = link
        return link

    def attach(self, node_name: str, link_name: str) -> None:
        """Plug a node's NIC into a segment."""
        node = self.nodes[node_name]
        link = self.links[link_name]
        if link_name in node.nics:
            raise SimError(f"{node_name} already attached to {link_name}")
        node.nics[link_name] = True
        link.members.append(node_name)

    # -- partitions (used by PartitionController) ----------------------------

    def set_partition(self, link_name: str, groups: Dict[str, int]) -> None:
        """Assign nodes on *link_name* to partition groups.

        Nodes in different groups cannot exchange frames on that segment.
        An empty mapping heals the partition.
        """
        if link_name not in self.links:
            raise SimError(f"no such link {link_name}")
        self.partition_of[link_name] = dict(groups)

    def _partitioned(self, link_name: str, a: str, b: str) -> bool:
        groups = self.partition_of.get(link_name)
        if not groups:
            return False
        return groups.get(a, 0) != groups.get(b, 0)

    # -- chaos controls (asymmetric blocks, corruption, duplication, delay) ---

    def block_direction(self, source: str, dest: str) -> None:
        """Drop every frame travelling *source* -> *dest* (one-way)."""
        self.blocked_pairs.add((source, dest))

    def unblock_direction(self, source: str, dest: str) -> None:
        """Lift a directional block (idempotent)."""
        self.blocked_pairs.discard((source, dest))

    def clear_blocks(self) -> None:
        """Lift every directional block."""
        self.blocked_pairs.clear()

    def set_corruption(self, link_name: str, probability: float) -> None:
        """Corrupt frames on *link_name* with *probability* (0 disables).

        Corruption is *detected*: the frame fails its checksum at the
        receiver and is discarded (traced as ``frame-corrupted``), so the
        effect is loss that reliability layers must absorb via retry.
        """
        if link_name not in self.links:
            raise SimError(f"no such link {link_name}")
        if probability <= 0.0:
            self.corrupt_prob.pop(link_name, None)
        else:
            self.corrupt_prob[link_name] = min(1.0, probability)

    def set_duplication(self, link_name: str, probability: float) -> None:
        """Duplicate frames on *link_name* with *probability* (0 disables)."""
        if link_name not in self.links:
            raise SimError(f"no such link {link_name}")
        if probability <= 0.0:
            self.dup_prob.pop(link_name, None)
        else:
            self.dup_prob[link_name] = min(1.0, probability)

    def set_egress_delay(self, node_name: str, delay: float) -> None:
        """Add *delay* to every frame *node_name* sends (0 removes).

        Models a fail-slow host (gray failure) or a node whose skewed
        clock makes its periodic traffic arrive late relative to peer
        timeouts.
        """
        if node_name not in self.nodes:
            raise SimError(f"no such node {node_name}")
        if delay <= 0.0:
            self.egress_delay.pop(node_name, None)
        else:
            self.egress_delay[node_name] = delay

    def path_ok(self, source: str, dest: str) -> bool:
        """Whether a frame sent now from *source* would reach *dest*.

        Combines :meth:`usable_path` with the directional block table —
        the check invariant monitors use to decide whether connectivity
        between two nodes is nominally healthy.
        """
        if (source, dest) in self.blocked_pairs:
            return False
        return self.usable_path(source, dest) is not None

    # -- delivery -------------------------------------------------------------

    def usable_path(self, source: str, dest: str) -> Optional[Link]:
        """First healthy segment shared by *source* and *dest*, else None."""
        src = self.nodes.get(source)
        dst = self.nodes.get(dest)
        if src is None or dst is None or not src.powered or not dst.powered:
            return None
        src_links = set(src.reachable_links())
        dst_links = set(dst.reachable_links())
        for link_name in sorted(src_links & dst_links):
            link = self.links[link_name]
            if link.up and not self._partitioned(link_name, source, dest):
                return link
        return None

    def send(self, source: str, dest: str, port: str, payload: Any, size: int = 128) -> bool:
        """Transmit a datagram.

        Returns True if the frame was put on the wire (it may still be
        lost), False if no usable path exists right now.  Delivery is
        best-effort datagram semantics; reliability is built above (MSMQ,
        DCOM RPC retries).
        """
        link = self.usable_path(source, dest)
        if link is None:
            self.dropped_count += 1
            self.trace.emit("net", source, "send-failed", dest=dest, port=port)
            return False
        if (source, dest) in self.blocked_pairs:
            # Asymmetric partition: the frame leaves the NIC but never
            # arrives; the sender cannot tell (datagram semantics).
            self.dropped_count += 1
            self.trace.emit("net", source, "frame-blocked", dest=dest, port=port, link=link.name)
            return True
        if link.loss > 0 and self.rng.random() < link.loss:
            self.dropped_count += 1
            self.trace.emit("net", source, "frame-lost", dest=dest, port=port, link=link.name)
            return True
        corrupt_prob = self.corrupt_prob.get(link.name, 0.0)
        if corrupt_prob > 0 and self.rng.random() < corrupt_prob:
            # Detected corruption: the checksum fails at the receiver and
            # the frame is discarded there, one latency later.
            self.corrupted_count += 1
            self.dropped_count += 1
            self.trace.emit("net", source, "frame-corrupted", dest=dest, port=port, link=link.name)
            return True
        message = Message(
            source=source,
            dest=dest,
            port=port,
            payload=payload,
            size=size,
            link=link.name,
            sent_at=self.kernel.now,
        )
        delay = link.delay_for(size, self.rng) + self.egress_delay.get(source, 0.0)
        channel = (source, dest, port)
        deliver_at = max(self.kernel.now + delay, self._channel_clock.get(channel, 0.0))
        self._channel_clock[channel] = deliver_at
        self.kernel.schedule(deliver_at - self.kernel.now, self._deliver, message)
        dup_prob = self.dup_prob.get(link.name, 0.0)
        if dup_prob > 0 and self.rng.random() < dup_prob:
            # The duplicate is a distinct frame with its own delay draw,
            # clamped to the channel clock so per-channel FIFO still holds.
            self.duplicated_count += 1
            self.trace.emit("net", source, "frame-duplicated", dest=dest, port=port, link=link.name)
            dup_delay = link.delay_for(size, self.rng) + self.egress_delay.get(source, 0.0)
            dup_at = max(self.kernel.now + dup_delay, self._channel_clock[channel])
            self._channel_clock[channel] = dup_at
            duplicate = Message(
                source=source,
                dest=dest,
                port=port,
                payload=payload,
                size=size,
                link=link.name,
                sent_at=self.kernel.now,
            )
            self.kernel.schedule(dup_at - self.kernel.now, self._deliver, duplicate)
        return True

    def _deliver(self, message: Message) -> None:
        node = self.nodes.get(message.dest)
        if node is None or not node.powered:
            self.dropped_count += 1
            self.trace.emit("net", message.dest, "deliver-failed", port=message.port, reason="node-down")
            return
        # Receiver NIC may have gone down in flight.
        if not node.nics.get(message.link, False):
            self.dropped_count += 1
            self.trace.emit("net", message.dest, "deliver-failed", port=message.port, reason="nic-down")
            return
        if self._partitioned(message.link, message.source, message.dest):
            self.dropped_count += 1
            self.trace.emit("net", message.dest, "deliver-failed", port=message.port, reason="partition")
            return
        if (message.source, message.dest) in self.blocked_pairs:
            # Directional block raised while the frame was in flight.
            self.dropped_count += 1
            self.trace.emit("net", message.dest, "deliver-failed", port=message.port, reason="asym-block")
            return
        handler = node.handler_for(message.port)
        if handler is None:
            self.dropped_count += 1
            self.trace.emit("net", message.dest, "deliver-failed", port=message.port, reason="port-closed")
            return
        message.delivered_at = self.kernel.now
        self.delivered_count += 1
        handler(message)

    def __repr__(self) -> str:
        return f"Network(nodes={sorted(self.nodes)}, links={sorted(self.links)})"
